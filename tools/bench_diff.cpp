// Perf-regression comparator over two bench result files (the CI gate
// behind the perf-smoke job).
//
// Usage:
//   bench_diff <baseline.json> <current.json>
//              [--time-threshold R] [--time-floor SECONDS]
//
// Policy (see src/mrlr/bench/diff.hpp): deterministic metrics (rounds,
// space, quality, determinism hash, failure flags) must match exactly;
// wall time may grow up to R x over max(baseline, floor); scenarios
// missing from the current file are regressions; new scenarios are
// noted. Exit codes: 0 = no regressions, 1 = regressions found,
// 2 = usage error or malformed/incompatible input.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "mrlr/bench/diff.hpp"

namespace {

void usage() {
  std::cerr << "usage: bench_diff <baseline.json> <current.json> "
               "[--time-threshold R] [--time-floor SECONDS]\n"
               "exit codes: 0 ok, 1 regressions, 2 usage/malformed "
               "input\n";
}

double parse_positive_double(const char* flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(v > 0.0)) {
    std::cerr << "bench_diff: bad value for " << flag << ": '" << value
              << "'\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  mrlr::bench::DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--time-threshold") {
      options.time_threshold = parse_positive_double(arg.c_str(), value());
    } else if (arg == "--time-floor") {
      options.time_floor_seconds =
          parse_positive_double(arg.c_str(), value());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bench_diff: unknown flag " << arg << "\n";
      usage();
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::cerr << "bench_diff: unexpected argument " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    usage();
    return 2;
  }

  try {
    const auto baseline = mrlr::bench::read_bench_file(baseline_path);
    const auto current = mrlr::bench::read_bench_file(current_path);
    const auto report =
        mrlr::bench::diff_bench_files(baseline, current, options);
    std::cout << mrlr::bench::render_diff_report(report);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    // JsonError (malformed/incompatible files) and I/O failures.
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
