// Command-line driver: run any algorithm in the library on a generated
// or user-provided instance and print the solution summary plus the
// Figure-1 cost metrics (rounds, space, communication).
//
// Usage:
//   mrlr_cli <algorithm> [--n N] [--c C] [--mu MU] [--seed S]
//            [--eps E] [--b B] [--dist uniform|exp|int|polarized]
//            [--threads T] [--graph FILE] [--sets FILE] [--trace]
//
// Algorithms:
//   matching | vertex-cover | set-cover-f | set-cover-greedy |
//   b-matching | mis | mis-simple | clique | colour-vertex |
//   colour-edge | filtering-matching | filtering-weighted |
//   luby-mis | luby-colouring | coreset-matching
//
// Examples:
//   mrlr_cli matching --n 5000 --c 0.4 --mu 0.2
//   mrlr_cli set-cover-greedy --sets instance.txt --eps 0.2
//   mrlr_cli colour-vertex --graph mygraph.txt --trace

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "mrlr/baselines/coreset_matching.hpp"
#include "mrlr/baselines/filtering_matching.hpp"
#include "mrlr/baselines/luby_colouring_mr.hpp"
#include "mrlr/baselines/luby_mr.hpp"
#include "mrlr/core/colouring.hpp"
#include "mrlr/core/greedy_setcover_mr.hpp"
#include "mrlr/core/hungry_clique.hpp"
#include "mrlr/core/hungry_mis.hpp"
#include "mrlr/core/rlr_bmatching.hpp"
#include "mrlr/core/rlr_matching.hpp"
#include "mrlr/core/rlr_setcover.hpp"
#include "mrlr/graph/generators.hpp"
#include "mrlr/graph/io.hpp"
#include "mrlr/graph/stats.hpp"
#include "mrlr/graph/validate.hpp"
#include "mrlr/setcover/generators.hpp"
#include "mrlr/setcover/io.hpp"
#include "mrlr/setcover/validate.hpp"

namespace {

struct Options {
  std::string algorithm;
  std::uint64_t n = 2000;
  double c = 0.4;
  double mu = 0.2;
  std::uint64_t seed = 1;
  double eps = 0.2;
  std::uint32_t b = 2;
  std::uint64_t threads = 1;
  mrlr::graph::WeightDist dist = mrlr::graph::WeightDist::kUniform;
  std::optional<std::string> graph_file;
  std::optional<std::string> sets_file;
  bool trace = false;
};

void usage() {
  std::cerr
      << "usage: mrlr_cli <algorithm> [--n N] [--c C] [--mu MU] "
         "[--seed S] [--eps E] [--b B] [--dist D] [--threads T] "
         "[--graph FILE] [--sets FILE] [--trace]\n"
         "algorithms: matching vertex-cover set-cover-f "
         "set-cover-greedy b-matching mis mis-simple clique "
         "colour-vertex colour-edge filtering-matching "
         "filtering-weighted luby-mis luby-colouring coreset-matching\n"
         "--threads T: simulate machines on T threads (1 = serial, "
         "0 = all hardware threads); results are identical at any T, "
         "only wall-clock changes\n";
}

std::optional<Options> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options o;
  o.algorithm = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--n") {
      o.n = std::stoull(value());
    } else if (flag == "--c") {
      o.c = std::stod(value());
    } else if (flag == "--mu") {
      o.mu = std::stod(value());
    } else if (flag == "--seed") {
      o.seed = std::stoull(value());
    } else if (flag == "--eps") {
      o.eps = std::stod(value());
    } else if (flag == "--b") {
      o.b = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--threads") {
      o.threads = std::stoull(value());
    } else if (flag == "--dist") {
      const std::string d = value();
      if (d == "uniform") {
        o.dist = mrlr::graph::WeightDist::kUniform;
      } else if (d == "exp") {
        o.dist = mrlr::graph::WeightDist::kExponential;
      } else if (d == "int") {
        o.dist = mrlr::graph::WeightDist::kIntegral;
      } else if (d == "polarized") {
        o.dist = mrlr::graph::WeightDist::kPolarized;
      } else {
        std::cerr << "unknown dist " << d << "\n";
        return std::nullopt;
      }
    } else if (flag == "--graph") {
      o.graph_file = value();
    } else if (flag == "--sets") {
      o.sets_file = value();
    } else if (flag == "--trace") {
      o.trace = true;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return std::nullopt;
    }
  }
  return o;
}

mrlr::graph::Graph load_graph(const Options& o, bool weighted) {
  if (o.graph_file) {
    std::ifstream in(*o.graph_file);
    if (!in) {
      std::cerr << "cannot open " << *o.graph_file << "\n";
      std::exit(2);
    }
    return mrlr::graph::read_edge_list(in);
  }
  mrlr::Rng rng(o.seed ^ 0xFEEDFACEull);
  mrlr::graph::Graph g = mrlr::graph::gnm_density(o.n, o.c, rng);
  if (weighted) {
    return g.with_weights(
        mrlr::graph::random_edge_weights(g, o.dist, rng));
  }
  return g;
}

mrlr::setcover::SetSystem load_sets(const Options& o, bool many_regime) {
  if (o.sets_file) {
    std::ifstream in(*o.sets_file);
    if (!in) {
      std::cerr << "cannot open " << *o.sets_file << "\n";
      std::exit(2);
    }
    return mrlr::setcover::read_set_system(in);
  }
  mrlr::Rng rng(o.seed ^ 0xFEEDFACEull);
  if (many_regime) {
    return mrlr::setcover::many_sets(o.n, o.n / 8 + 2, 12, o.dist, rng);
  }
  return mrlr::setcover::bounded_frequency(o.n, 8 * o.n, 3, o.dist, rng);
}

void report(const mrlr::core::MrOutcome& outcome) {
  std::cout << "cost: rounds=" << outcome.rounds
            << " iterations=" << outcome.iterations
            << " max_words/machine=" << outcome.max_machine_words
            << " central_inbox=" << outcome.max_central_inbox
            << " total_comm=" << outcome.total_communication
            << " violations=" << outcome.space_violations
            << (outcome.failed ? "  ** FAILED **" : "") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) {
    usage();
    return 2;
  }
  const Options& o = *opts;
  mrlr::core::MrParams params;
  params.mu = o.mu;
  params.c = o.c;
  params.seed = o.seed;
  params.num_threads = o.threads;

  using namespace mrlr;
  const std::string& a = o.algorithm;

  if (a == "matching" || a == "filtering-matching" ||
      a == "filtering-weighted" || a == "coreset-matching") {
    const graph::Graph g = load_graph(o, /*weighted=*/true);
    const auto st = graph::compute_stats(g);
    std::cout << "instance: n=" << st.n << " m=" << st.m
              << " c=" << st.density_exponent << "\n";
    if (a == "matching") {
      const auto r = core::rlr_matching(g, params);
      std::cout << "matching: " << r.matching.size() << " edges, weight "
                << r.weight << ", valid="
                << graph::is_matching(g, r.matching) << "\n";
      report(r.outcome);
    } else if (a == "filtering-matching") {
      const auto r = baselines::filtering_matching(g, params);
      std::cout << "matching: " << r.matching.size() << " edges, weight "
                << r.weight << ", maximal="
                << graph::is_maximal_matching(g, r.matching) << "\n";
      report(r.outcome);
    } else if (a == "filtering-weighted") {
      const auto r = baselines::filtering_weighted_matching(g, params);
      std::cout << "matching: " << r.matching.size() << " edges, weight "
                << r.weight << ", valid="
                << graph::is_matching(g, r.matching) << "\n";
      report(r.outcome);
    } else {
      const auto r = baselines::coreset_matching(g, params);
      std::cout << "matching: " << r.matching.size() << " edges, weight "
                << r.weight << ", coreset union "
                << r.coreset_union_size << " edges, valid="
                << graph::is_matching(g, r.matching) << "\n";
      report(r.outcome);
    }
  } else if (a == "b-matching") {
    const graph::Graph g = load_graph(o, /*weighted=*/true);
    std::vector<std::uint32_t> b(g.num_vertices(), o.b);
    const auto r = core::rlr_b_matching(g, b, o.eps, params);
    std::cout << "b-matching (b=" << o.b << ", eps=" << o.eps
              << "): " << r.matching.size() << " edges, weight "
              << r.weight << ", valid="
              << graph::is_b_matching(g, r.matching, b) << "\n";
    report(r.outcome);
  } else if (a == "vertex-cover") {
    const graph::Graph g = load_graph(o, /*weighted=*/false);
    Rng rng(o.seed ^ 0xC0FFEEull);
    const auto w =
        graph::random_vertex_weights(g.num_vertices(), o.dist, rng);
    const auto r = core::rlr_vertex_cover(g, w, params);
    std::cout << "vertex cover: " << r.cover.size() << " vertices, weight "
              << r.weight << " (certified OPT >= " << r.lower_bound
              << "), valid=" << graph::is_vertex_cover(g, r.cover) << "\n";
    report(r.outcome);
  } else if (a == "set-cover-f") {
    const auto sys = load_sets(o, /*many_regime=*/false);
    const auto r = core::rlr_set_cover(sys, params);
    std::cout << "set cover (f=" << sys.max_frequency()
              << "): " << r.cover.size() << " sets, weight " << r.weight
              << " (certified OPT >= " << r.lower_bound << "), valid="
              << setcover::is_cover(sys, r.cover) << "\n";
    report(r.outcome);
  } else if (a == "set-cover-greedy") {
    const auto sys = load_sets(o, /*many_regime=*/true);
    const auto r = core::greedy_set_cover_mr(sys, o.eps, params);
    std::cout << "set cover (greedy, eps=" << o.eps
              << "): " << r.cover.size() << " sets, weight " << r.weight
              << ", valid=" << setcover::is_cover(sys, r.cover) << "\n";
    report(r.outcome);
  } else if (a == "mis" || a == "mis-simple" || a == "luby-mis") {
    const graph::Graph g = load_graph(o, /*weighted=*/false);
    if (a == "luby-mis") {
      const auto r = baselines::luby_mis_mr(g, params);
      std::cout << "MIS (Luby): " << r.independent_set.size()
                << " vertices, maximal="
                << graph::is_maximal_independent_set(g, r.independent_set)
                << "\n";
      report(r.outcome);
    } else {
      const auto r = (a == "mis") ? core::hungry_mis_improved(g, params)
                                  : core::hungry_mis_simple(g, params);
      std::cout << "MIS (" << (a == "mis" ? "Alg 6" : "Alg 2")
                << "): " << r.independent_set.size()
                << " vertices, maximal="
                << graph::is_maximal_independent_set(g, r.independent_set)
                << "\n";
      report(r.outcome);
    }
  } else if (a == "clique") {
    const graph::Graph g = load_graph(o, /*weighted=*/false);
    const auto r = core::hungry_clique(g, params);
    std::cout << "clique: " << r.clique.size() << " vertices, maximal="
              << graph::is_maximal_clique(g, r.clique) << "\n";
    report(r.outcome);
  } else if (a == "colour-vertex" || a == "luby-colouring") {
    const graph::Graph g = load_graph(o, /*weighted=*/false);
    if (a == "colour-vertex") {
      const auto r = core::mr_vertex_colouring(g, params);
      std::cout << "vertex colouring: " << r.colours_used
                << " colours (Delta=" << g.max_degree() << "), proper="
                << graph::is_proper_vertex_colouring(g, r.colour) << "\n";
      report(r.outcome);
    } else {
      const auto r = baselines::luby_colouring_mr(g, params);
      std::cout << "vertex colouring (Luby): " << r.colours_used
                << " colours (Delta=" << g.max_degree() << "), proper="
                << graph::is_proper_vertex_colouring(g, r.colour) << "\n";
      report(r.outcome);
    }
  } else if (a == "colour-edge") {
    const graph::Graph g = load_graph(o, /*weighted=*/false);
    const auto r = core::mr_edge_colouring(g, params);
    std::cout << "edge colouring: " << r.colours_used
              << " colours (Delta=" << g.max_degree() << "), proper="
              << graph::is_proper_edge_colouring(g, r.colour) << "\n";
    report(r.outcome);
  } else {
    usage();
    return 2;
  }
  return 0;
}
