// Command-line driver: run any algorithm in the library on a generated
// or user-provided instance and print the solution summary plus the
// Figure-1 cost metrics (rounds, space, communication); or generate and
// convert instances on disk.
//
// Usage:
//   mrlr_cli <algorithm> [--n N] [--c C] [--mu MU] [--seed S]
//            [--eps E] [--b B] [--dist uniform|exp|int|polarized]
//            [--threads T] [--backend serial|threads|process]
//            [--shards K] [--workers HOST:PORT,...]
//            [--graph FILE] [--sets FILE] [--trace]
//            [--telemetry-out FILE] [--telemetry-format jsonl|chrome]
//   mrlr_cli worker --listen [HOST:]PORT [--max-jobs N]
//   mrlr_cli serve --listen [HOST:]PORT [--budget-words W]
//            [--max-running N] [--max-conns N]
//   mrlr_cli submit <algorithm> [run flags] --connect HOST:PORT
//   mrlr_cli submit --shutdown|--stats|--health --connect HOST:PORT
//   mrlr_cli gen <family> --out FILE [family options]
//   mrlr_cli convert --in FILE --out FILE
//   mrlr_cli bench [--group G]... [--scenario NAME]... [--out FILE]
//            [--threads T] [--backend serial|threads|process]
//            [--shards K] [--list]
//            [--telemetry-out FILE] [--telemetry-format jsonl|chrome]
//
// `serve` runs the long-lived job daemon (docs/ARCHITECTURE.md,
// "Service mode"): clients submit encoded JobSpecs, the daemon admits
// them against a projected per-machine space budget, runs each in its
// own process, and streams back the JobResult. `submit` builds the same
// instance and spec `run` would, ships it, and prints byte-identical
// output.
//
// --threads and --shards compose: `--backend process --shards K
// --threads T` runs K process shards, each executing its machine range
// on a shard-local pool of T threads (docs/ARCHITECTURE.md).
//
// Graph files (--graph, gen/convert --in/--out) are read and written in
// the binary .mgb container when the path ends in ".mgb", and as plain
// text edge lists otherwise.
//
// `bench` runs named scenario groups from the registry in
// src/mrlr/bench/ (paper-f1, rounds-vs-mu, space-vs-c, shuffle, io,
// threads, smoke, all) and writes a schema-versioned JSON result file
// that tools/bench_diff can compare against bench/baseline.json.
//
// Algorithms: whatever jobs::known_algorithms() registers — the usage
// text, the worker registry, and the serve daemon's admission check all
// read that one vocabulary, so they cannot drift.
//
// Generator families (gen):
//   graph: gnm (--n --m) | gnm-density (--n --c) | gnp (--n --p) |
//          chung-lu (--n --m --beta [--strict]) |
//          bipartite (--left --right --m) | circulant (--n --d) |
//          complete | star | path | cycle (--n) |
//          planted-clique (--n --m --k)
//          any of these plus --weights uniform|exp|int|polarized
//   set systems (text only): sc-bounded-frequency (--sets --universe
//          --f) | sc-many-sets (--sets --universe --set-size) |
//          sc-planted (--sets --universe --decoys)
//
// Examples:
//   mrlr_cli matching --n 5000 --c 0.4 --mu 0.2
//   mrlr_cli gen gnm-density --n 100000 --c 0.5 --out big.mgb
//   mrlr_cli convert --in big.mgb --out big.txt
//   mrlr_cli colour-vertex --graph big.mgb --trace

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include <signal.h>

#include "mrlr/bench/emit.hpp"
#include "mrlr/bench/runner.hpp"
#include "mrlr/core/params.hpp"
#include "mrlr/exec/shard_channel.hpp"
#include "mrlr/exec/worker_launcher.hpp"
#include "mrlr/graph/generators.hpp"
#include "mrlr/graph/io.hpp"
#include "mrlr/graph/io_binary.hpp"
#include "mrlr/graph/stats.hpp"
#include "mrlr/jobs/job_result.hpp"
#include "mrlr/jobs/job_spec.hpp"
#include "mrlr/jobs/report.hpp"
#include "mrlr/jobs/worker.hpp"
#include "mrlr/obs/export.hpp"
#include "mrlr/obs/telemetry.hpp"
#include "mrlr/serve/client.hpp"
#include "mrlr/serve/protocol.hpp"
#include "mrlr/serve/server.hpp"
#include "mrlr/setcover/generators.hpp"
#include "mrlr/setcover/io.hpp"

namespace {

struct Options {
  std::string algorithm;
  std::uint64_t n = 2000;
  double c = 0.4;
  double mu = 0.2;
  std::uint64_t seed = 1;
  double eps = 0.2;
  std::uint32_t b = 2;
  std::uint64_t threads = 1;
  std::uint64_t shards = 1;
  std::optional<std::string> backend;
  std::string workers;  ///< --workers host:port,... (empty = fork locally)
  std::string connect;  ///< submit only: the daemon's host:port
  mrlr::graph::WeightDist dist = mrlr::graph::WeightDist::kUniform;
  std::optional<std::string> graph_file;
  std::optional<std::string> sets_file;
  bool trace = false;
  std::string telemetry_out;  ///< empty = telemetry stays off
  mrlr::obs::ExportFormat telemetry_format = mrlr::obs::ExportFormat::kJsonl;
};

/// Parses a --telemetry-format value; messages and returns false on an
/// unknown name.
bool parse_telemetry_format(const std::string& name,
                            mrlr::obs::ExportFormat& format) {
  if (const auto f = mrlr::obs::export_format_from_name(name)) {
    format = *f;
    return true;
  }
  std::cerr << "unknown telemetry format " << name
            << " (expected jsonl|chrome)\n";
  return false;
}

/// Writes the accumulated telemetry snapshot when --telemetry-out was
/// given. Call after the work completes (the snapshot is cumulative).
void write_telemetry_if_requested(const std::string& out,
                                  mrlr::obs::ExportFormat format) {
  if (out.empty()) return;
  mrlr::obs::write_telemetry_file(
      mrlr::obs::Telemetry::instance().snapshot(), format, out);
  // stderr, so enabling telemetry never perturbs stdout byte-identity
  // checks (CI diffs serial vs process algorithm output verbatim).
  std::cerr << "[telemetry written: " << out << "]\n";
}

/// Resolves --backend into the two primitive knobs (--threads /
/// --shards). Returns false (after a message) on an unknown backend.
bool apply_backend(const std::string& backend, std::uint64_t& threads,
                   std::uint64_t& shards) {
  if (backend == "serial") {
    threads = 1;
    shards = 1;
  } else if (backend == "threads") {
    if (threads <= 1) threads = 0;  // 0 = all hardware threads
    shards = 1;
  } else if (backend == "process") {
    // --threads passes through: the knobs compose (each shard runs its
    // machine range on a shard-local pool of T threads).
    if (shards <= 1) shards = 2;
  } else {
    std::cerr << "unknown backend " << backend
              << " (expected serial|threads|process)\n";
    return false;
  }
  return true;
}

/// The algorithm vocabulary, straight from the worker registry — the
/// same list `find_algorithm` accepts and the serve daemon admits, so
/// the help text can never drift from what actually runs.
std::string algorithm_list() {
  std::string out;
  for (const mrlr::jobs::AlgorithmInfo& a : mrlr::jobs::known_algorithms()) {
    if (!out.empty()) out += " ";
    out += a.name;
  }
  return out;
}

/// Bench group tags, straight from the scenario registry for the same
/// no-drift reason.
std::string bench_group_list() {
  std::string out;
  for (const std::string& g : mrlr::bench::builtin_registry().group_names()) {
    if (!out.empty()) out += " ";
    out += g;
  }
  return out;
}

void usage() {
  std::cerr
      << "usage: mrlr_cli <algorithm> [--n N] [--c C] [--mu MU] "
         "[--seed S] [--eps E] [--b B] [--dist D] [--threads T] "
         "[--backend serial|threads|process] [--shards K] "
         "[--workers HOST:PORT,...] "
         "[--graph FILE] [--sets FILE] [--trace] "
         "[--telemetry-out FILE] [--telemetry-format jsonl|chrome]\n"
         "       mrlr_cli worker --listen [HOST:]PORT [--max-jobs N]\n"
         "       mrlr_cli serve --listen [HOST:]PORT [--budget-words W] "
         "[--max-running N] [--max-conns N]\n"
         "       mrlr_cli submit <algorithm> [run flags] "
         "--connect HOST:PORT\n"
         "       mrlr_cli submit --shutdown|--stats|--health "
         "--connect HOST:PORT\n"
         "       mrlr_cli gen <family> --out FILE [family options]\n"
         "       mrlr_cli convert --in FILE --out FILE\n"
         "       mrlr_cli bench [--group G]... [--scenario NAME]... "
         "[--out FILE] [--threads T] "
         "[--backend serial|threads|process] [--shards K] [--list] "
         "[--telemetry-out FILE] [--telemetry-format jsonl|chrome]\n"
      << "algorithms: " << algorithm_list() << "\n"
      << "gen families: gnm gnm-density gnp chung-lu bipartite "
         "circulant complete star path cycle planted-clique "
         "sc-bounded-frequency sc-many-sets sc-planted\n"
         "bench groups: "
      << bench_group_list()
      << " (mrlr_cli bench --list shows scenarios)\n"
         "--threads T: simulate machines on T threads (1 = serial, "
         "0 = all hardware threads); --backend process [--shards K]: "
         "partition machines over K persistent worker processes (every "
         "algorithm supports this; see README). The knobs compose: "
         "--shards K --threads T runs each shard's machines on a "
         "shard-local pool of T threads. Results are identical "
         "under every backend, only wall-clock changes\n"
         "--workers HOST:PORT,...: run the process backend over TCP "
         "against pre-started `mrlr_cli worker --listen` processes "
         "(one endpoint per shard beyond the coordinator's own); the "
         "full job is shipped over the wire, so workers need no shared "
         "filesystem or fork ancestry\n"
         "serve: run the long-lived job daemon — clients submit specs, "
         "the daemon admits them against --budget-words (projected "
         "words/machine across running jobs; 0 = unlimited), runs up to "
         "--max-running at once (each in its own process), and streams "
         "back results. submit: build the same instance `run` would, "
         "ship it, print byte-identical output\n"
         "--telemetry-out FILE: record phase spans/counters (off by "
         "default; does not change results) and write them at exit — "
         "jsonl for tools/trace_report, chrome for chrome://tracing "
         "or Perfetto\n"
         "graph files ending in .mgb use the binary container; "
         "anything else is a text edge list\n";
}

std::optional<mrlr::graph::WeightDist> parse_weight_dist(
    const std::string& d) {
  using mrlr::graph::WeightDist;
  if (d == "uniform") return WeightDist::kUniform;
  if (d == "exp") return WeightDist::kExponential;
  if (d == "int") return WeightDist::kIntegral;
  if (d == "polarized") return WeightDist::kPolarized;
  return std::nullopt;
}

std::optional<Options> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options o;
  o.algorithm = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--n") {
      o.n = std::stoull(value());
    } else if (flag == "--c") {
      o.c = std::stod(value());
    } else if (flag == "--mu") {
      o.mu = std::stod(value());
    } else if (flag == "--seed") {
      o.seed = std::stoull(value());
    } else if (flag == "--eps") {
      o.eps = std::stod(value());
    } else if (flag == "--b") {
      o.b = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--threads") {
      o.threads = std::stoull(value());
    } else if (flag == "--shards") {
      o.shards = std::stoull(value());
    } else if (flag == "--backend") {
      o.backend = value();
    } else if (flag == "--workers") {
      o.workers = value();
    } else if (flag == "--connect") {
      o.connect = value();
    } else if (flag == "--dist") {
      const std::string d = value();
      if (const auto dist = parse_weight_dist(d)) {
        o.dist = *dist;
      } else {
        std::cerr << "unknown dist " << d << "\n";
        return std::nullopt;
      }
    } else if (flag == "--graph") {
      o.graph_file = value();
    } else if (flag == "--sets") {
      o.sets_file = value();
    } else if (flag == "--trace") {
      o.trace = true;
    } else if (flag == "--telemetry-out") {
      o.telemetry_out = value();
    } else if (flag == "--telemetry-format") {
      if (!parse_telemetry_format(value(), o.telemetry_format)) {
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return std::nullopt;
    }
  }
  if (o.backend && !apply_backend(*o.backend, o.threads, o.shards)) {
    return std::nullopt;
  }
  if (!o.workers.empty()) {
    if (o.backend && *o.backend != "process") {
      std::cerr << "--workers only makes sense with --backend process\n";
      return std::nullopt;
    }
    // --workers implies the process backend.
    if (!o.backend && !apply_backend("process", o.threads, o.shards)) {
      return std::nullopt;
    }
  }
  return o;
}

mrlr::graph::Graph load_graph(const Options& o, bool weighted) {
  if (o.graph_file) {
    // Format picked by extension: .mgb binary, text otherwise.
    return mrlr::graph::read_graph_file(*o.graph_file);
  }
  mrlr::Rng rng(o.seed ^ 0xFEEDFACEull);
  mrlr::graph::Graph g = mrlr::graph::gnm_density(o.n, o.c, rng);
  if (weighted) {
    return g.with_weights(
        mrlr::graph::random_edge_weights(g, o.dist, rng));
  }
  return g;
}

mrlr::setcover::SetSystem load_sets(const Options& o, bool many_regime) {
  if (o.sets_file) {
    std::ifstream in(*o.sets_file);
    if (!in) {
      std::cerr << "cannot open " << *o.sets_file << "\n";
      std::exit(2);
    }
    return mrlr::setcover::read_set_system(in);
  }
  mrlr::Rng rng(o.seed ^ 0xFEEDFACEull);
  if (many_regime) {
    return mrlr::setcover::many_sets(o.n, o.n / 8 + 2, 12, o.dist, rng);
  }
  return mrlr::setcover::bounded_frequency(o.n, 8 * o.n, 3, o.dist, rng);
}

// --------------------------------------------------- gen / convert --

constexpr std::uint64_t kUnsetCount = ~std::uint64_t{0};

struct GenOptions {
  std::string family;
  std::string out;
  std::uint64_t n = 1000;
  std::uint64_t m = kUnsetCount;
  double c = 0.5;
  double p = 0.01;
  double beta = 2.5;
  std::uint64_t d = 4;
  std::uint64_t k = 10;
  std::uint64_t left = 500;
  std::uint64_t right = 500;
  std::uint64_t sets = 100;
  std::uint64_t universe = 1000;
  std::uint64_t f = 3;
  std::uint64_t set_size = 12;
  std::uint64_t decoys = 20;
  std::uint64_t seed = 1;
  bool strict = false;
  std::optional<mrlr::graph::WeightDist> weights;
};

std::optional<GenOptions> parse_gen(int argc, char** argv) {
  if (argc < 3) return std::nullopt;
  GenOptions o;
  o.family = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--n") {
      o.n = std::stoull(value());
    } else if (flag == "--m") {
      o.m = std::stoull(value());
    } else if (flag == "--c") {
      o.c = std::stod(value());
    } else if (flag == "--p") {
      o.p = std::stod(value());
    } else if (flag == "--beta") {
      o.beta = std::stod(value());
    } else if (flag == "--d") {
      o.d = std::stoull(value());
    } else if (flag == "--k") {
      o.k = std::stoull(value());
    } else if (flag == "--left") {
      o.left = std::stoull(value());
    } else if (flag == "--right") {
      o.right = std::stoull(value());
    } else if (flag == "--sets") {
      o.sets = std::stoull(value());
    } else if (flag == "--universe") {
      o.universe = std::stoull(value());
    } else if (flag == "--f") {
      o.f = std::stoull(value());
    } else if (flag == "--set-size") {
      o.set_size = std::stoull(value());
    } else if (flag == "--decoys") {
      o.decoys = std::stoull(value());
    } else if (flag == "--seed") {
      o.seed = std::stoull(value());
    } else if (flag == "--strict") {
      o.strict = true;
    } else if (flag == "--out") {
      o.out = value();
    } else if (flag == "--weights") {
      const std::string d = value();
      o.weights = parse_weight_dist(d);
      if (!o.weights) {
        std::cerr << "unknown weight distribution " << d << "\n";
        return std::nullopt;
      }
    } else {
      std::cerr << "unknown gen flag " << flag << "\n";
      return std::nullopt;
    }
  }
  if (o.out.empty()) {
    std::cerr << "gen: --out FILE is required\n";
    return std::nullopt;
  }
  return o;
}

std::uint64_t require_m(const GenOptions& o) {
  if (o.m == kUnsetCount) {
    std::cerr << "gen " << o.family << ": --m is required\n";
    std::exit(2);
  }
  return o.m;
}

/// CLI-side mirror of the generator preconditions, so routine bad
/// arguments exit 2 with a message instead of tripping the library's
/// MRLR_REQUIRE (which aborts: it flags caller bugs, and here the
/// caller is the user's command line).
std::optional<std::string> validate_gen(const GenOptions& o) {
  namespace g = mrlr::graph;
  const std::string& fam = o.family;
  const bool uses_n = fam != "bipartite" && fam.rfind("sc-", 0) != 0;
  if (uses_n && o.n > g::kMaxVertexCount) {
    return "--n exceeds the 32-bit vertex-id limit (2^32)";
  }
  const auto max_edges = [&] { return g::max_simple_edges(o.n); };
  if (fam == "gnm" || fam == "planted-clique") {
    if (o.m != kUnsetCount && o.m > max_edges()) {
      return "--m exceeds n*(n-1)/2";
    }
    if (o.n < 2 && o.m != kUnsetCount && o.m > 0) {
      return "--n must be at least 2 to place edges";
    }
  }
  if (fam == "planted-clique" && o.k > o.n) return "--k exceeds --n";
  if (fam == "gnp" && (o.p < 0.0 || o.p > 1.0)) {
    return "--p must be in [0, 1]";
  }
  if (fam == "chung-lu") {
    if (o.beta <= 2.0) return "--beta must exceed 2";
    if (o.n < 2) return "--n must be at least 2";
  }
  if (fam == "bipartite") {
    if (o.left > g::kMaxVertexCount || o.right > g::kMaxVertexCount ||
        o.left + o.right > g::kMaxVertexCount ||
        o.left + o.right < o.left) {
      return "--left + --right exceeds the 32-bit vertex-id limit";
    }
    if (o.m != kUnsetCount && o.m > o.left * o.right) {
      return "--m exceeds left*right";
    }
  }
  if (fam == "circulant" && (o.d % 2 != 0 || o.d >= o.n)) {
    return "--d must be even and < --n";
  }
  if (fam == "star" && o.n < 1) return "--n must be at least 1";
  if (fam == "cycle" && o.n < 3) return "--n must be at least 3";
  if (fam == "sc-bounded-frequency" && (o.f < 1 || o.sets < o.f)) {
    return "--f must be >= 1 and <= --sets";
  }
  if (fam == "sc-many-sets" && o.set_size < 1) {
    return "--set-size must be at least 1";
  }
  if (fam == "sc-planted" && (o.sets < 1 || o.sets > o.universe)) {
    return "--sets must be in [1, --universe]";
  }
  return std::nullopt;
}

int run_gen(int argc, char** argv) {
  const auto parsed = parse_gen(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  const GenOptions& o = *parsed;
  if (const auto err = validate_gen(o)) {
    std::cerr << "gen " << o.family << ": " << *err << "\n";
    return 2;
  }
  using namespace mrlr;
  Rng rng(o.seed ^ 0xFEEDFACEull);

  if (o.family.rfind("sc-", 0) == 0) {
    if (graph::is_mgb_path(o.out)) {
      std::cerr << "gen: set systems have no binary format; use a text "
                   "extension for --out\n";
      return 2;
    }
    setcover::SetSystem sys = [&] {
      if (o.family == "sc-bounded-frequency") {
        return setcover::bounded_frequency(
            o.sets, o.universe, o.f,
            o.weights.value_or(graph::WeightDist::kUniform), rng);
      }
      if (o.family == "sc-many-sets") {
        return setcover::many_sets(
            o.sets, o.universe, o.set_size,
            o.weights.value_or(graph::WeightDist::kUniform), rng);
      }
      if (o.family == "sc-planted") {
        double planted_cost = 0.0;
        auto s = setcover::planted_cover(o.sets, o.decoys, o.universe, rng,
                                         &planted_cost);
        std::cout << "planted cover cost: " << planted_cost << "\n";
        return s;
      }
      std::cerr << "unknown set-cover family " << o.family << "\n";
      std::exit(2);
    }();
    std::ofstream out(o.out);
    if (!out) {
      std::cerr << "cannot open " << o.out << " for writing\n";
      return 2;
    }
    setcover::write_set_system(sys, out);
    out.flush();
    if (!out) {
      std::cerr << "write failed: " << o.out << "\n";
      return 2;
    }
    std::cout << "wrote " << o.out << ": sets=" << sys.num_sets()
              << " universe=" << sys.universe_size()
              << " max_frequency=" << sys.max_frequency() << "\n";
    return 0;
  }

  std::optional<graph::Graph> g;
  const std::string& fam = o.family;
  if (fam == "gnm") {
    g = graph::gnm(o.n, require_m(o), rng);
  } else if (fam == "gnm-density") {
    g = graph::gnm_density(o.n, o.c, rng);
  } else if (fam == "gnp") {
    g = graph::gnp(o.n, o.p, rng);
  } else if (fam == "chung-lu") {
    graph::ChungLuOptions cl;
    cl.strict = o.strict;
    std::uint64_t shortfall = 0;
    if (!o.strict) cl.shortfall = &shortfall;
    g = graph::chung_lu_power_law(o.n, require_m(o), o.beta, rng, cl);
    if (shortfall > 0) {
      std::cout << "note: chung-lu fell short by " << shortfall
                << " edges (attempt budget); pass --strict to fail "
                   "instead\n";
    }
  } else if (fam == "bipartite") {
    g = graph::random_bipartite(o.left, o.right, require_m(o), rng);
  } else if (fam == "circulant") {
    g = graph::circulant(o.n, o.d);
  } else if (fam == "complete") {
    g = graph::complete(o.n);
  } else if (fam == "star") {
    g = graph::star(o.n);
  } else if (fam == "path") {
    g = graph::path(o.n);
  } else if (fam == "cycle") {
    g = graph::cycle(o.n);
  } else if (fam == "planted-clique") {
    g = graph::planted_clique(o.n, require_m(o), o.k, rng);
  } else {
    std::cerr << "unknown gen family " << fam << "\n";
    usage();
    return 2;
  }

  const auto st = graph::compute_stats(*g);
  if (o.weights) {
    // Attach weights at the GraphData layer: with_weights would copy
    // the edge list AND rebuild the CSR index just to serialize it.
    graph::GraphData d;
    d.n = g->num_vertices();
    d.weighted = true;
    d.weights = graph::random_edge_weights(*g, *o.weights, rng);
    d.edges = g->edges();
    g.reset();  // free the Graph (and its index) before the write
    graph::write_graph_file(d, o.out);
  } else {
    graph::write_graph_file(*g, o.out);
  }
  std::cout << "wrote " << o.out << " ("
            << (graph::is_mgb_path(o.out) ? "mgb" : "text")
            << "): n=" << st.n << " m=" << st.m
            << " c=" << st.density_exponent
            << " weighted=" << (o.weights ? "yes" : "no") << "\n";
  return 0;
}

int run_convert(int argc, char** argv) {
  std::string in, out;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--in") {
      in = value();
    } else if (flag == "--out") {
      out = value();
    } else {
      std::cerr << "unknown convert flag " << flag << "\n";
      return 2;
    }
  }
  if (in.empty() || out.empty()) {
    std::cerr << "convert: --in FILE and --out FILE are required\n";
    return 2;
  }
  // Stays at the GraphData layer: conversion validates and re-encodes
  // without ever building the CSR adjacency index.
  const mrlr::graph::GraphData d = mrlr::graph::read_graph_file_data(in);
  mrlr::graph::write_graph_file(d, out);
  std::cout << "converted " << in << " ("
            << (mrlr::graph::is_mgb_path(in) ? "mgb" : "text") << ") -> "
            << out << " ("
            << (mrlr::graph::is_mgb_path(out) ? "mgb" : "text")
            << "): n=" << d.n << " m=" << d.edges.size()
            << " weighted=" << (d.weighted ? "yes" : "no") << "\n";
  return 0;
}

// ------------------------------------------------------------ bench --

int run_bench_cmd(int argc, char** argv) {
  mrlr::bench::RunOptions options;
  options.context.threads = mrlr::bench::env_threads();
  std::optional<std::string> backend;
  std::string telemetry_out;
  mrlr::obs::ExportFormat telemetry_format =
      mrlr::obs::ExportFormat::kJsonl;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--group") {
      options.groups.emplace_back(value());
    } else if (flag == "--scenario") {
      options.scenarios.emplace_back(value());
    } else if (flag == "--out") {
      options.out_path = value();
    } else if (flag == "--threads") {
      options.context.threads = std::stoull(value());
    } else if (flag == "--shards") {
      options.context.shards = std::stoull(value());
    } else if (flag == "--backend") {
      backend = value();
    } else if (flag == "--list") {
      options.list_only = true;
    } else if (flag == "--telemetry-out") {
      telemetry_out = value();
    } else if (flag == "--telemetry-format") {
      if (!parse_telemetry_format(value(), telemetry_format)) return 2;
    } else {
      std::cerr << "unknown bench flag " << flag << "\n";
      usage();
      return 2;
    }
  }
  if (backend) {
    if (*backend == "process") {
      options.context.process_backend = true;
      options.context.shards =
          std::max<std::uint64_t>(2, options.context.shards);
    } else if (*backend == "threads") {
      if (options.context.threads <= 1) options.context.threads = 0;
    } else if (*backend == "serial") {
      options.context.threads = 1;
    } else {
      std::cerr << "unknown backend " << *backend
                << " (expected serial|threads|process)\n";
      return 2;
    }
  }
  if (!options.list_only && options.groups.empty() &&
      options.scenarios.empty()) {
    options.groups.push_back("smoke");
  }
  if (!telemetry_out.empty()) mrlr::obs::Telemetry::instance().enable();
  const int rc = mrlr::bench::run_bench(mrlr::bench::builtin_registry(),
                                        options, std::cout);
  write_telemetry_if_requested(telemetry_out, telemetry_format);
  return rc;
}

// ------------------------------------------------- worker and serve --

/// Parses a --listen value ([HOST:]PORT) by hand rather than via
/// parse_endpoints: a listener may bind port 0 (kernel-assigned), which
/// is meaningless in --workers. Messages and returns false on anything
/// malformed.
bool parse_listen(const std::string& listen, std::string& host,
                  std::uint16_t& port) {
  host = "127.0.0.1";
  std::string port_str = listen;
  if (const auto colon = listen.rfind(':'); colon != std::string::npos) {
    host = listen.substr(0, colon);
    port_str = listen.substr(colon + 1);
  }
  unsigned long parsed = 65536;
  try {
    std::size_t used = 0;
    parsed = std::stoul(port_str, &used);
    if (used != port_str.size()) parsed = 65536;
  } catch (const std::exception&) {
  }
  if (host.empty() || parsed > 65535) {
    std::cerr << "--listen: malformed '" << listen
              << "' (expected [HOST:]PORT)\n";
    return false;
  }
  port = static_cast<std::uint16_t>(parsed);
  return true;
}

int run_worker_cmd(int argc, char** argv) {
  std::string listen;
  mrlr::jobs::WorkerOptions wopts;
  wopts.log = &std::cerr;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--listen") {
      listen = value();
    } else if (flag == "--max-jobs") {
      wopts.max_jobs = std::stoull(value());
    } else {
      std::cerr << "unknown worker flag " << flag << "\n";
      usage();
      return 2;
    }
  }
  if (listen.empty()) {
    std::cerr << "worker needs --listen [HOST:]PORT\n";
    usage();
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!parse_listen(listen, host, port)) return 2;
  // A coordinator vanishing mid-write must surface as a typed channel
  // error on this side, not a SIGPIPE kill.
  ::signal(SIGPIPE, SIG_IGN);
  mrlr::exec::TcpListener listener(host, port);
  // Flushed before the accept loop so scripts (and the README
  // walkthrough) can wait for the bound port — with --listen 0 the
  // kernel picks it.
  std::cout << "worker listening on " << host << ":" << listener.port()
            << "\n"
            << std::flush;
  mrlr::jobs::worker_serve(listener, wopts);
  return 0;
}

/// One runnable job built from the command line: the spec (instance +
/// params + extras), the rendering context the JobResult does not
/// carry, and the pre-rendered instance header for the matching family.
/// `run` executes the spec locally, `submit` ships it to a daemon —
/// both print from the same JobResult renderer, byte for byte.
struct PreparedJob {
  mrlr::jobs::JobSpec spec;
  mrlr::jobs::RenderInfo info;
  std::optional<std::string> instance_header;
};

PreparedJob prepare_job(const Options& o) {
  using namespace mrlr;
  const std::string& a = o.algorithm;
  const jobs::AlgorithmInfo* algo = jobs::find_algorithm(a);

  core::MrParams params;
  params.mu = o.mu;
  params.c = o.c;
  params.seed = o.seed;
  params.num_threads = o.threads;
  params.num_shards = o.shards;

  PreparedJob p;
  if (algo->instance == jobs::JobSpec::InstanceKind::kGraph) {
    const graph::Graph g = load_graph(o, algo->weighted);
    if (jobs::prints_instance_header(a)) {
      const auto st = graph::compute_stats(g);
      p.instance_header =
          jobs::render_instance_header(st.n, st.m, st.density_exponent);
    }
    p.spec = jobs::graph_job(a, g, params);
    if (a == "b-matching") {
      p.spec.extras["b"] = {o.b};
      p.spec.extras["eps"] = {core::pack_double(o.eps)};
      p.info.b = o.b;
      p.info.eps = o.eps;
    } else if (a == "vertex-cover") {
      Rng rng(o.seed ^ 0xC0FFEEull);
      const auto w =
          graph::random_vertex_weights(g.num_vertices(), o.dist, rng);
      auto& packed = p.spec.extras["w"];
      packed.reserve(w.size());
      for (const double v : w) packed.push_back(core::pack_double(v));
    } else if (a == "colour-vertex" || a == "luby-colouring" ||
               a == "colour-edge") {
      p.info.max_degree = g.max_degree();
    }
  } else {
    const auto sys =
        load_sets(o, /*many_regime=*/a == "set-cover-greedy");
    p.spec = jobs::set_system_job(a, sys, params);
    if (a == "set-cover-greedy") {
      p.spec.extras["eps"] = {core::pack_double(o.eps)};
      p.info.eps = o.eps;
    } else {
      p.info.max_frequency = sys.max_frequency();
    }
  }
  return p;
}

void print_result(const PreparedJob& p, const mrlr::jobs::JobResult& r) {
  if (p.instance_header) std::cout << *p.instance_header << "\n";
  std::cout << mrlr::jobs::render_solution_line(r, p.info) << "\n"
            << mrlr::jobs::render_cost_line(r.outcome) << "\n";
}

int run_serve_cmd(int argc, char** argv) {
  std::string listen;
  mrlr::serve::ServeOptions sopts;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--listen") {
      listen = value();
    } else if (flag == "--budget-words") {
      sopts.words_budget = std::stoull(value());
    } else if (flag == "--max-running") {
      sopts.max_running = std::stoull(value());
      if (sopts.max_running == 0) {
        std::cerr << "--max-running must be at least 1\n";
        return 2;
      }
    } else if (flag == "--max-conns") {
      sopts.max_connections = std::stoull(value());
    } else {
      std::cerr << "unknown serve flag " << flag << "\n";
      usage();
      return 2;
    }
  }
  if (listen.empty()) {
    std::cerr << "serve needs --listen [HOST:]PORT\n";
    usage();
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!parse_listen(listen, host, port)) return 2;
  // A client vanishing mid-write must surface as a typed channel error,
  // not a SIGPIPE kill of the whole daemon.
  ::signal(SIGPIPE, SIG_IGN);
  sopts.log = [](const std::string& line) {
    std::cerr << "[serve] " << line << "\n";
  };
  mrlr::serve::ServeDaemon daemon(host, port, std::move(sopts));
  // Flushed before the accept loop so scripts can wait for the bound
  // port — with --listen 0 the kernel picks it.
  std::cout << "serve listening on " << host << ":" << daemon.port()
            << "\n"
            << std::flush;
  daemon.run();
  return 0;
}

int run_submit_cmd(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);

  // Control requests: submit --shutdown|--stats|--health --connect HP.
  if (argc >= 3 && argv[2][0] == '-') {
    const std::string action = argv[2];
    std::string connect;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
        connect = argv[++i];
      } else {
        std::cerr << "unknown submit flag " << argv[i] << "\n";
        return 2;
      }
    }
    if (connect.empty() ||
        (action != "--shutdown" && action != "--stats" &&
         action != "--health")) {
      usage();
      return 2;
    }
    const auto eps = mrlr::exec::parse_endpoints(connect);
    mrlr::serve::ServeClient client(eps.front());
    if (action == "--shutdown") {
      client.shutdown();
      std::cout << "daemon shutting down\n";
    } else if (action == "--stats") {
      const auto s = client.stats();
      std::cout << "jobs: submitted=" << s.jobs_submitted
                << " accepted=" << s.jobs_accepted
                << " rejected=" << s.jobs_rejected
                << " completed=" << s.jobs_completed
                << " failed=" << s.jobs_failed
                << " cancelled=" << s.jobs_cancelled
                << " running=" << s.jobs_running
                << " queued=" << s.jobs_queued << "\n"
                << "space: budget=" << s.words_budget
                << " in_use=" << s.words_in_use << "\n"
                << "uptime_ms=" << s.uptime_ms << "\n";
    } else {
      const auto h = client.health();
      std::cout << "health: " << (h.shutting_down ? "draining" : "ok")
                << " running=" << h.jobs_running
                << " uptime_ms=" << h.uptime_ms << "\n";
    }
    return 0;
  }

  // Job submission: same parse as `run`, shifted past "submit".
  const auto opts = parse(argc - 1, argv + 1);
  if (!opts || opts->connect.empty() ||
      !mrlr::jobs::find_algorithm(opts->algorithm)) {
    if (opts && opts->connect.empty()) {
      std::cerr << "submit needs --connect HOST:PORT\n";
    }
    usage();
    return 2;
  }
  const Options& o = *opts;
  const PreparedJob p = prepare_job(o);

  const auto eps = mrlr::exec::parse_endpoints(o.connect);
  mrlr::serve::ServeClient client(eps.front());
  const mrlr::serve::AdmissionReply admission = client.submit(p.spec);
  if (!admission.accepted) {
    std::cerr << "submit rejected ("
              << mrlr::serve::reject_reason_name(admission.reason)
              << "): " << admission.message << "\n";
    // Distinct exit code so scripts can tell a typed rejection from a
    // usage or transport error.
    return 3;
  }
  const mrlr::serve::ResultReply reply = client.wait_result();
  if (!reply.ok) {
    std::cerr << "job " << reply.job_id << " failed: " << reply.error
              << "\n";
    return 2;
  }
  print_result(p, mrlr::serve::ServeClient::decode_result(reply));
  return 0;
}

/// Installs the ambient TCP process-backend config for the scope of one
/// driver call when --workers was given: the driver's make_executor()
/// then launches over TCP, shipping `spec` in the bootstrap. A no-op
/// (fork mode) when --workers is absent.
struct TcpBackendGuard {
  std::optional<mrlr::exec::ScopedProcessBackendConfig> guard;

  void install(const Options& o, mrlr::jobs::JobSpec spec) {
    if (o.workers.empty()) return;
    mrlr::exec::ProcessBackendConfig cfg;
    cfg.workers = mrlr::exec::parse_endpoints(o.workers);
    cfg.job_spec = mrlr::jobs::encode_job_spec(spec);
    guard.emplace(std::move(cfg));
  }
};

}  // namespace

int run(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "gen") == 0) {
    return run_gen(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "convert") == 0) {
    return run_convert(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "bench") == 0) {
    return run_bench_cmd(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "worker") == 0) {
    return run_worker_cmd(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return run_serve_cmd(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "submit") == 0) {
    return run_submit_cmd(argc, argv);
  }
  const auto opts = parse(argc, argv);
  if (!opts) {
    usage();
    return 2;
  }
  const Options& o = *opts;
  if (!mrlr::jobs::find_algorithm(o.algorithm)) {
    usage();
    return 2;
  }
  if (!o.connect.empty()) {
    std::cerr << "--connect is a submit flag: mrlr_cli submit "
              << o.algorithm << " ... --connect HOST:PORT\n";
    return 2;
  }
  // Enable before load_graph so ingestion (io_load) lands in the
  // profile alongside the rounds it feeds.
  if (!o.telemetry_out.empty()) mrlr::obs::Telemetry::instance().enable();

  // One path for every algorithm: build the spec, run it through the
  // same run_job the worker registry and the serve daemon use, render
  // the JobResult. `submit` replays the exact same pipeline with the
  // execution on the other side of a socket.
  const PreparedJob p = prepare_job(o);
  TcpBackendGuard tcp;
  tcp.install(o, p.spec);
  const mrlr::jobs::JobResult r = mrlr::jobs::run_job(p.spec);
  print_result(p, r);
  write_telemetry_if_requested(o.telemetry_out, o.telemetry_format);
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mrlr::graph::ParseError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const mrlr::graph::GeneratorError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // std::stoull/std::stod on malformed flag values, allocation
    // failures, and engine-level exceptions all land here: one-line
    // message and exit 2, never std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
