// Historical perf-trajectory renderer over a series of `mrlr_cli bench
// --out` result files (schema v1), oldest first.
//
// Usage:
//   bench_trajectory [--csv FILE] [--md FILE] results1.json results2.json...
//
// With no --csv/--md the markdown report goes to stdout. The nightly
// CI workflow feeds this the accumulated bench-history directory and
// publishes both renderings as artifacts.
//
// Exit codes: 0 = rendered; 2 = usage error or a malformed/unreadable
// input file (the message names the file).

#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "mrlr/bench/json.hpp"
#include "mrlr/bench/trajectory.hpp"

namespace {

int usage() {
  std::cerr << "usage: bench_trajectory [--csv FILE] [--md FILE] "
               "results1.json [results2.json ...]\n"
               "  renders per-scenario metric curves over the series "
               "(oldest first) as CSV and/or markdown;\n"
               "  with neither --csv nor --md, markdown goes to stdout\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& what,
                const std::function<void(std::ostream&)>& render) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_trajectory: cannot open " << path
              << " for writing\n";
    return false;
  }
  render(out);
  out.flush();
  if (!out) {
    std::cerr << "bench_trajectory: write failed: " << path << "\n";
    return false;
  }
  std::cerr << "[" << what << " written: " << path << "]\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path, md_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--md") {
      md_path = value();
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<mrlr::bench::TrajectoryPoint> series;
  try {
    series = mrlr::bench::load_trajectory(inputs);
  } catch (const mrlr::bench::JsonError& e) {
    std::cerr << "bench_trajectory: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bench_trajectory: " << e.what() << "\n";
    return 2;
  }

  if (!csv_path.empty() &&
      !write_file(csv_path, "csv", [&](std::ostream& os) {
        mrlr::bench::write_trajectory_csv(series, os);
      })) {
    return 2;
  }
  if (!md_path.empty() &&
      !write_file(md_path, "markdown", [&](std::ostream& os) {
        mrlr::bench::write_trajectory_markdown(series, os);
      })) {
    return 2;
  }
  if (csv_path.empty() && md_path.empty()) {
    mrlr::bench::write_trajectory_markdown(series, std::cout);
  }
  return 0;
}
