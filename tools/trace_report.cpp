// trace_report — render a per-phase/per-shard profile from telemetry
// JSONL files written by `mrlr_cli ... --telemetry-out`.
//
//   trace_report [--md FILE] FILE...
//
// Multiple input files merge into one profile (spans concatenate,
// counters add), which is what the CI artifact steps want when a job
// produces one file per scenario. The console table goes to stdout;
// --md additionally writes the GitHub-flavoured markdown form.
//
// Exit codes: 0 on success, 2 on usage errors or unreadable/malformed
// input.

#include <exception>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "mrlr/obs/export.hpp"
#include "mrlr/obs/report.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: trace_report [--md FILE] FILE...\n"
     << "\n"
     << "Renders per-phase and per-shard time breakdowns (self vs. total,\n"
     << "% of round) from telemetry JSONL files produced by\n"
     << "`mrlr_cli run|bench --telemetry-out PATH`. Multiple files merge\n"
     << "into one profile. --md writes the markdown rendering (CI\n"
     << "artifact form) alongside the console table on stdout.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string md_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--md") {
      if (i + 1 >= argc) {
        std::cerr << "trace_report: --md needs a file argument\n";
        return 2;
      }
      md_path = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_report: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << "trace_report: no input files\n";
    usage(std::cerr);
    return 2;
  }

  try {
    mrlr::obs::TelemetrySnapshot merged;
    for (const std::string& path : inputs) {
      mrlr::obs::TelemetrySnapshot snap =
          mrlr::obs::read_telemetry_file(path);
      merged.spans.insert(merged.spans.end(),
                          std::make_move_iterator(snap.spans.begin()),
                          std::make_move_iterator(snap.spans.end()));
      for (const auto& [name, value] : snap.counters) {
        merged.counters[name] += value;
      }
    }
    const mrlr::obs::ProfileReport report = mrlr::obs::build_report(merged);
    mrlr::obs::render_report(report, std::cout, /*markdown=*/false);
    if (!md_path.empty()) {
      std::ofstream md(md_path);
      if (!md) {
        std::cerr << "trace_report: cannot open " << md_path
                  << " for writing\n";
        return 2;
      }
      mrlr::obs::render_report(report, md, /*markdown=*/true);
      md.flush();
      if (!md) {
        std::cerr << "trace_report: write failed: " << md_path << "\n";
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
