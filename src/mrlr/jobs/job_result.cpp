#include "mrlr/jobs/job_result.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/util/mix64.hpp"

namespace mrlr::jobs {

namespace {

using exec::append_u64;
using exec::read_u64;

constexpr std::uint64_t kResultVersion = 1;

/// Stat names are short identifiers ("weight", "stack"); an adversarial
/// length fails the cap before any allocation.
constexpr std::uint64_t kMaxStatNameBytes = 1 << 10;

[[noreturn]] void bad_result(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "job result: " + what);
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_string(std::vector<std::byte>& out, std::string_view s) {
  append_u64(out, s.size());
  if (s.empty()) return;
  const auto at = out.size();
  out.resize(at + s.size());
  std::memcpy(out.data() + at, s.data(), s.size());
}

/// Bounds-checked sequential reader (the job_spec.cpp cursor
/// discipline); every primitive throws kBadPayload instead of running
/// off the payload.
struct Reader {
  std::span<const std::byte> bytes;
  std::size_t at = 0;

  void need(std::size_t n, const char* what) const {
    if (bytes.size() - at < n) {
      bad_result(std::string("truncated inside ") + what);
    }
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    const std::uint64_t v = read_u64(bytes, at);
    at += 8;
    return v;
  }
  std::string string(const char* what) {
    const std::uint64_t len = u64(what);
    need(len, what);
    std::string s(reinterpret_cast<const char*>(bytes.data() + at), len);
    at += len;
    return s;
  }
  bool flag(const char* what) {
    const std::uint64_t v = u64(what);
    if (v > 1) bad_result(std::string(what) + " flag must be 0 or 1");
    return v == 1;
  }
};

}  // namespace

const JobStat* JobResult::stat(std::string_view name) const {
  for (const JobStat& s : stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double JobResult::stat_double(std::string_view name, double fallback) const {
  const JobStat* s = stat(name);
  if (s == nullptr || s->kind != JobStat::Kind::kPackedDouble) {
    return fallback;
  }
  return core::unpack_double(s->value);
}

std::uint64_t JobResult::stat_count(std::string_view name,
                                    std::uint64_t fallback) const {
  const JobStat* s = stat(name);
  if (s == nullptr || s->kind != JobStat::Kind::kCount) return fallback;
  return s->value;
}

std::string fingerprint(const JobResult& r) {
  std::ostringstream os;
  os << r.algorithm << " sol=" << hex64(r.solution_hash);
  for (const JobStat& s : r.stats) {
    os << " " << s.name << "=";
    if (s.kind == JobStat::Kind::kPackedDouble) {
      os << hex64(s.value);
    } else {
      os << s.value;
    }
  }
  const core::MrOutcome& o = r.outcome;
  os << " failed=" << o.failed << " iters=" << o.iterations
     << " rounds=" << o.rounds << " words=" << o.max_machine_words
     << " central=" << o.max_central_inbox
     << " comm=" << o.total_communication
     << " violations=" << o.space_violations;
  return os.str();
}

std::uint64_t determinism_hash(const JobResult& r) {
  std::uint64_t h = mix64(0x6A6F622E72736C74ull ^ r.algorithm.size());
  for (const char c : r.algorithm) {
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<unsigned char>(c)));
  }
  h = mix64(h ^ r.solution_hash);
  h = mix64(h ^ r.solution_size);
  h = mix64(h ^ (r.valid ? 1u : 0u));
  const core::MrOutcome& o = r.outcome;
  h = mix64(h ^ (o.failed ? 1u : 0u));
  h = mix64(h ^ o.iterations);
  h = mix64(h ^ o.rounds);
  h = mix64(h ^ o.max_machine_words);
  h = mix64(h ^ o.max_central_inbox);
  h = mix64(h ^ o.total_communication);
  h = mix64(h ^ o.space_violations);
  h = mix64(h ^ r.stats.size());
  for (const JobStat& s : r.stats) {
    h = mix64(h ^ s.name.size());
    for (const char c : s.name) {
      h = mix64(h ^ static_cast<std::uint64_t>(
                        static_cast<unsigned char>(c)));
    }
    h = mix64(h ^ static_cast<std::uint64_t>(s.kind));
    h = mix64(h ^ s.value);
  }
  return h;
}

std::vector<std::byte> encode_job_result(const JobResult& r) {
  std::vector<std::byte> out;
  append_u64(out, kResultVersion);
  append_string(out, r.algorithm);
  append_u64(out, r.solution_hash);
  append_u64(out, r.solution_size);
  append_u64(out, r.valid ? 1 : 0);
  const core::MrOutcome& o = r.outcome;
  append_u64(out, o.failed ? 1 : 0);
  append_u64(out, o.iterations);
  append_u64(out, o.rounds);
  append_u64(out, o.max_machine_words);
  append_u64(out, o.max_central_inbox);
  append_u64(out, o.total_communication);
  append_u64(out, o.space_violations);
  append_u64(out, r.stats.size());
  for (const JobStat& s : r.stats) {
    append_string(out, s.name);
    append_u64(out, static_cast<std::uint64_t>(s.kind));
    append_u64(out, s.value);
  }
  return out;
}

JobResult decode_job_result(std::span<const std::byte> bytes) {
  Reader r{bytes};
  const std::uint64_t version = r.u64("version");
  if (version != kResultVersion) {
    bad_result("unsupported result version " + std::to_string(version) +
               " (this build speaks version " +
               std::to_string(kResultVersion) + ")");
  }
  JobResult res;
  res.algorithm = r.string("algorithm name");
  if (res.algorithm.empty()) bad_result("empty algorithm name");
  res.solution_hash = r.u64("solution hash");
  res.solution_size = r.u64("solution size");
  res.valid = r.flag("valid");
  res.outcome.failed = r.flag("failed");
  res.outcome.iterations = r.u64("outcome");
  res.outcome.rounds = r.u64("outcome");
  res.outcome.max_machine_words = r.u64("outcome");
  res.outcome.max_central_inbox = r.u64("outcome");
  res.outcome.total_communication = r.u64("outcome");
  res.outcome.space_violations = r.u64("outcome");

  const std::uint64_t nstats = r.u64("stat count");
  // Each stat costs at least its name length, kind, and value fields.
  if (nstats > (bytes.size() - r.at) / 24) {
    bad_result("stat count " + std::to_string(nstats) +
               " exceeds the remaining payload");
  }
  res.stats.reserve(nstats);
  for (std::uint64_t i = 0; i < nstats; ++i) {
    JobStat s;
    const std::uint64_t name_len = r.u64("stat name");
    if (name_len == 0) bad_result("empty stat name");
    if (name_len > kMaxStatNameBytes) {
      bad_result("stat name length " + std::to_string(name_len) +
                 " exceeds the cap");
    }
    r.need(name_len, "stat name");
    s.name.assign(reinterpret_cast<const char*>(r.bytes.data() + r.at),
                  name_len);
    r.at += name_len;
    const std::uint64_t kind = r.u64("stat kind");
    if (kind != static_cast<std::uint64_t>(JobStat::Kind::kCount) &&
        kind != static_cast<std::uint64_t>(JobStat::Kind::kPackedDouble)) {
      bad_result("unknown stat kind " + std::to_string(kind));
    }
    s.kind = static_cast<JobStat::Kind>(kind);
    s.value = r.u64("stat value");
    res.stats.push_back(std::move(s));
  }
  if (r.at != bytes.size()) {
    bad_result(std::to_string(bytes.size() - r.at) +
               " trailing bytes after the stats");
  }
  return res;
}

}  // namespace mrlr::jobs
