#include "mrlr/jobs/worker.hpp"

#include <cstdio>
#include <functional>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mrlr/baselines/coreset_matching.hpp"
#include "mrlr/baselines/filtering_matching.hpp"
#include "mrlr/baselines/luby_colouring_mr.hpp"
#include "mrlr/baselines/luby_mr.hpp"
#include "mrlr/core/colouring.hpp"
#include "mrlr/core/greedy_setcover_mr.hpp"
#include "mrlr/core/hungry_clique.hpp"
#include "mrlr/core/hungry_mis.hpp"
#include "mrlr/core/rlr_bmatching.hpp"
#include "mrlr/core/rlr_matching.hpp"
#include "mrlr/core/rlr_setcover.hpp"
#include "mrlr/exec/shard_worker.hpp"
#include "mrlr/graph/validate.hpp"
#include "mrlr/setcover/validate.hpp"
#include "mrlr/util/mix64.hpp"

namespace mrlr::jobs {

namespace {

[[noreturn]] void bad_job(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "job: " + what);
}

// --------------------------------------------------- result assembly --
//
// Every runner returns a JobResult: the order-sensitive mix64 hash of
// the solution ids, the validator's verdict, the MrOutcome metrics, and
// the per-algorithm stats in fingerprint order (job_result.hpp renders
// them back into the legacy one-line string byte-for-byte).

template <typename T>
std::uint64_t hash_ids(const std::vector<T>& ids) {
  std::uint64_t h = mix64(0x6A6F622E68617368ull ^ ids.size());  // "job.hash"
  for (const T x : ids) h = mix64(h ^ static_cast<std::uint64_t>(x));
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

template <typename T>
JobResult make_result(const JobSpec& spec, const std::vector<T>& ids,
                      bool valid, const core::MrOutcome& outcome) {
  JobResult r;
  r.algorithm = spec.algorithm;
  r.solution_hash = hash_ids(ids);
  r.solution_size = ids.size();
  r.valid = valid;
  r.outcome = outcome;
  return r;
}

JobStat count_stat(std::string name, std::uint64_t v) {
  return JobStat{std::move(name), v, JobStat::Kind::kCount};
}

JobStat double_stat(std::string name, double v) {
  return JobStat{std::move(name), core::pack_double(v),
                 JobStat::Kind::kPackedDouble};
}

// ----------------------------------------------------- extras access --

const std::vector<std::uint64_t>& extra(const JobSpec& spec,
                                        const std::string& name) {
  const auto it = spec.extras.find(name);
  if (it == spec.extras.end()) {
    bad_job("algorithm \"" + spec.algorithm + "\" needs extra \"" + name +
            "\" but the spec does not carry it");
  }
  return it->second;
}

double extra_double(const JobSpec& spec, const std::string& name) {
  const auto& v = extra(spec, name);
  if (v.size() != 1) {
    bad_job("extra \"" + name + "\" must be a single packed double");
  }
  return core::unpack_double(v[0]);
}

// ---------------------------------------------------------- runners --

using Runner = JobResult (*)(const JobSpec&);

JobResult run_matching(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = core::rlr_matching(g, spec.params);
  JobResult res = make_result(spec, r.matching,
                              graph::is_matching(g, r.matching), r.outcome);
  res.stats = {double_stat("weight", r.weight),
               count_stat("stack", r.stack_size)};
  return res;
}

JobResult run_filtering_matching(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = baselines::filtering_matching(g, spec.params);
  JobResult res =
      make_result(spec, r.matching,
                  graph::is_maximal_matching(g, r.matching), r.outcome);
  res.stats = {double_stat("weight", r.weight)};
  return res;
}

JobResult run_filtering_weighted(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = baselines::filtering_weighted_matching(g, spec.params);
  JobResult res = make_result(spec, r.matching,
                              graph::is_matching(g, r.matching), r.outcome);
  res.stats = {double_stat("weight", r.weight)};
  return res;
}

JobResult run_coreset_matching(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = baselines::coreset_matching(g, spec.params);
  JobResult res = make_result(spec, r.matching,
                              graph::is_matching(g, r.matching), r.outcome);
  res.stats = {double_stat("weight", r.weight),
               count_stat("coreset", r.coreset_union_size)};
  return res;
}

JobResult run_b_matching(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const double eps = extra_double(spec, "eps");
  const auto& raw = extra(spec, "b");
  std::vector<std::uint32_t> b;
  if (raw.size() == 1) {
    b.assign(g.num_vertices(), static_cast<std::uint32_t>(raw[0]));
  } else if (raw.size() == g.num_vertices()) {
    b.reserve(raw.size());
    for (const std::uint64_t v : raw) {
      b.push_back(static_cast<std::uint32_t>(v));
    }
  } else {
    bad_job("extra \"b\" must be one capacity or one per vertex");
  }
  const auto r = core::rlr_b_matching(g, b, eps, spec.params);
  JobResult res = make_result(
      spec, r.matching, graph::is_b_matching(g, r.matching, b), r.outcome);
  res.stats = {double_stat("weight", r.weight),
               count_stat("stack", r.stack_size)};
  return res;
}

JobResult run_vertex_cover(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto& raw = extra(spec, "w");
  if (raw.size() != g.num_vertices()) {
    bad_job("extra \"w\" must carry one packed weight per vertex");
  }
  std::vector<double> w;
  w.reserve(raw.size());
  for (const std::uint64_t v : raw) w.push_back(core::unpack_double(v));
  const auto r = core::rlr_vertex_cover(g, w, spec.params);
  JobResult res = make_result(spec, r.cover,
                              graph::is_vertex_cover(g, r.cover), r.outcome);
  res.stats = {double_stat("weight", r.weight),
               double_stat("lb", r.lower_bound)};
  return res;
}

JobResult run_set_cover_f(const JobSpec& spec) {
  const setcover::SetSystem sys = decode_set_system_instance(spec);
  const auto r = core::rlr_set_cover(sys, spec.params);
  JobResult res = make_result(spec, r.cover,
                              setcover::is_cover(sys, r.cover), r.outcome);
  res.stats = {double_stat("weight", r.weight),
               double_stat("lb", r.lower_bound)};
  return res;
}

JobResult run_set_cover_greedy(const JobSpec& spec) {
  const setcover::SetSystem sys = decode_set_system_instance(spec);
  const double eps = extra_double(spec, "eps");
  const auto r = core::greedy_set_cover_mr(sys, eps, spec.params);
  JobResult res = make_result(spec, r.cover,
                              setcover::is_cover(sys, r.cover), r.outcome);
  res.stats = {double_stat("weight", r.weight),
               count_stat("drops", r.level_drops),
               count_stat("resamples", r.sampling_failures),
               count_stat("pre", r.preprocessed_sets)};
  return res;
}

JobResult run_mis(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = spec.algorithm == "mis"
                     ? core::hungry_mis_improved(g, spec.params)
                     : core::hungry_mis_simple(g, spec.params);
  JobResult res = make_result(
      spec, r.independent_set,
      graph::is_maximal_independent_set(g, r.independent_set), r.outcome);
  res.stats = {count_stat("phases", r.phases),
               count_stat("central", r.central_adds)};
  return res;
}

JobResult run_luby_mis(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = baselines::luby_mis_mr(g, spec.params);
  JobResult res = make_result(
      spec, r.independent_set,
      graph::is_maximal_independent_set(g, r.independent_set), r.outcome);
  res.stats = {count_stat("phases", r.phases)};
  return res;
}

JobResult run_clique(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = core::hungry_clique(g, spec.params);
  JobResult res = make_result(spec, r.clique,
                              graph::is_maximal_clique(g, r.clique),
                              r.outcome);
  res.stats = {count_stat("central", r.central_adds)};
  return res;
}

JobResult run_colour_vertex(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = core::mr_vertex_colouring(g, spec.params);
  JobResult res = make_result(
      spec, r.colour, graph::is_proper_vertex_colouring(g, r.colour),
      r.outcome);
  res.stats = {count_stat("colours", r.colours_used),
               count_stat("groups", r.groups),
               count_stat("split_failed", r.failed)};
  return res;
}

JobResult run_luby_colouring(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = baselines::luby_colouring_mr(g, spec.params);
  JobResult res = make_result(
      spec, r.colour, graph::is_proper_vertex_colouring(g, r.colour),
      r.outcome);
  res.stats = {count_stat("colours", r.colours_used),
               count_stat("phases", r.phases)};
  return res;
}

JobResult run_colour_edge(const JobSpec& spec) {
  const graph::Graph g = decode_graph_instance(spec);
  const auto r = core::mr_edge_colouring(g, spec.params);
  JobResult res = make_result(
      spec, r.colour, graph::is_proper_edge_colouring(g, r.colour),
      r.outcome);
  res.stats = {count_stat("colours", r.colours_used),
               count_stat("groups", r.groups),
               count_stat("split_failed", r.failed)};
  return res;
}

struct RegistryEntry {
  AlgorithmInfo info;
  Runner run;
};

using enum JobSpec::InstanceKind;

/// The one algorithm vocabulary. usage() in the CLI, the worker's
/// dispatch, and the serve daemon's admission check all read this
/// table, so a name added here is everywhere at once — they can never
/// drift.
constexpr RegistryEntry kRegistry[] = {
    {{"matching", kGraph, true}, run_matching},
    {{"filtering-matching", kGraph, true}, run_filtering_matching},
    {{"filtering-weighted", kGraph, true}, run_filtering_weighted},
    {{"coreset-matching", kGraph, true}, run_coreset_matching},
    {{"b-matching", kGraph, true}, run_b_matching},
    {{"vertex-cover", kGraph, false}, run_vertex_cover},
    {{"set-cover-f", kSetSystem, false}, run_set_cover_f},
    {{"set-cover-greedy", kSetSystem, false}, run_set_cover_greedy},
    {{"mis", kGraph, false}, run_mis},
    {{"mis-simple", kGraph, false}, run_mis},
    {{"luby-mis", kGraph, false}, run_luby_mis},
    {{"clique", kGraph, false}, run_clique},
    {{"colour-vertex", kGraph, false}, run_colour_vertex},
    {{"luby-colouring", kGraph, false}, run_luby_colouring},
    {{"colour-edge", kGraph, false}, run_colour_edge},
};

}  // namespace

const std::vector<AlgorithmInfo>& known_algorithms() {
  static const std::vector<AlgorithmInfo> algorithms = [] {
    std::vector<AlgorithmInfo> v;
    v.reserve(std::size(kRegistry));
    for (const RegistryEntry& e : kRegistry) v.push_back(e.info);
    return v;
  }();
  return algorithms;
}

const AlgorithmInfo* find_algorithm(std::string_view name) {
  for (const AlgorithmInfo& a : known_algorithms()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

bool known_algorithm(std::string_view name) {
  return find_algorithm(name) != nullptr;
}

JobResult run_job(const JobSpec& spec) {
  for (const RegistryEntry& e : kRegistry) {
    if (e.info.name == spec.algorithm) return e.run(spec);
  }
  bad_job("unknown algorithm \"" + spec.algorithm + "\"");
}

JobResult run_job_spec(std::span<const std::byte> bytes) {
  return run_job(decode_job_spec(bytes));
}

// ------------------------------------------------------ serving loop --

namespace {

void log_line(const WorkerOptions& opts, const std::string& line) {
  if (opts.log != nullptr) *opts.log << "worker: " << line << "\n"
                                     << std::flush;
}

/// One accepted connection: handshake, bootstrap, driver replay. Throws
/// on transport failure (the caller drops the connection and keeps
/// serving).
void serve_connection(exec::TcpChannel& ch,
                      std::set<std::pair<std::uint64_t, std::uint32_t>>& served,
                      const WorkerOptions& opts) {
  // Duplicate policy: a (job, shard) pair registers at handshake time
  // and stays registered. A second hello with the same pair — a
  // duplicate registration or a reconnect after a drop — is refused:
  // this worker cannot restore shard state lost with the old
  // connection, and silently serving a fresh replay could diverge.
  const exec::HandshakeHello hello = exec::handshake_accept(
      ch, [&](const exec::HandshakeHello& h) {
        const auto key = std::make_pair(h.nonce, h.shard);
        if (!served.insert(key).second) {
          return exec::HandshakeStatus::kDuplicateShard;
        }
        return exec::HandshakeStatus::kOk;
      });

  const exec::Frame setup =
      exec::expect_frame(ch, exec::FrameKind::kJobSetup, hello.shard, 0);
  exec::WorkerSession session;
  session.channel = &ch;
  session.shard = hello.shard;
  session.bootstrap = exec::decode_bootstrap(setup.payload);
  if (session.bootstrap.nonce != hello.nonce) {
    exec::send_bootstrap_ack(ch, hello.shard, false,
                             "bootstrap nonce does not match the handshake");
    return;
  }
  if ((session.bootstrap.flags & exec::kBootstrapCarriesSpec) == 0) {
    exec::send_bootstrap_ack(
        ch, hello.shard, false,
        "bootstrap carries no job spec — a TCP worker holds no "
        "coordinator state to validate against");
    return;
  }

  log_line(opts, "job " + hex64(hello.nonce) + " shard " +
                     std::to_string(hello.shard) + ": replaying " +
                     std::to_string(session.bootstrap.job_spec.size()) +
                     " spec bytes");
  exec::set_active_worker_session(&session);
  try {
    // The driver never returns: its executor serves the shard and
    // throws JobServed at teardown.
    (void)run_job_spec(session.bootstrap.job_spec);
    exec::set_active_worker_session(nullptr);
    if (!session.acked) {
      exec::send_bootstrap_ack(ch, hello.shard, false,
                               "driver returned without starting a job");
    }
    log_line(opts, "job " + hex64(hello.nonce) +
                       ": driver replay started no job");
  } catch (const exec::JobServed&) {
    exec::set_active_worker_session(nullptr);
    log_line(opts, "job " + hex64(hello.nonce) + " shard " +
                       std::to_string(hello.shard) + ": served");
  } catch (const std::exception& e) {
    exec::set_active_worker_session(nullptr);
    // A refusal discovered before the ack (bad spec, bootstrap/plane
    // mismatch) goes back typed; after the ack the coordinator learns
    // from the dropped connection.
    if (!session.acked) {
      try {
        exec::send_bootstrap_ack(ch, hello.shard, false, e.what());
      } catch (...) {
      }
    }
    log_line(opts, std::string("job failed: ") + e.what());
  } catch (...) {
    exec::set_active_worker_session(nullptr);
    throw;
  }
}

}  // namespace

void worker_serve(exec::TcpListener& listener, const WorkerOptions& opts) {
  std::set<std::pair<std::uint64_t, std::uint32_t>> served;
  for (std::uint64_t jobs = 0;
       opts.max_jobs == 0 || jobs < opts.max_jobs; ++jobs) {
    exec::TcpChannel ch = listener.accept_channel();
    try {
      serve_connection(ch, served, opts);
    } catch (const std::exception& e) {
      // Transport failures on one connection must not kill the worker.
      log_line(opts, std::string("connection dropped: ") + e.what());
    }
  }
}

// -------------------------------------------------- loopback harness --

ScopedTcpLoopback::ScopedTcpLoopback(unsigned workers) {
  // Bind every listener before forking so endpoints() is complete and
  // no connect can race a not-yet-listening worker.
  std::vector<exec::TcpListener> listeners;
  listeners.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    listeners.emplace_back("127.0.0.1", 0);
    endpoints_.push_back(exec::Endpoint{"127.0.0.1", listeners[i].port()});
  }
  for (unsigned i = 0; i < workers; ++i) {
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw exec::TransportError(exec::TransportError::Kind::kIo,
                                 "loopback: fork failed");
    }
    if (pid == 0) {
      // Worker process: serve this listener forever; a dead coordinator
      // is an EPIPE on write, not a SIGPIPE kill.
      ::signal(SIGPIPE, SIG_IGN);
      for (unsigned j = 0; j < workers; ++j) {
        if (j != i) listeners[j].close_now();
      }
      try {
        worker_serve(listeners[i], WorkerOptions{});
      } catch (...) {
      }
      ::_exit(0);
    }
    pids_.push_back(pid);
  }
  // Coordinator side: the children own the listening sockets now.
  for (exec::TcpListener& l : listeners) l.close_now();
}

ScopedTcpLoopback::~ScopedTcpLoopback() {
  for (const pid_t pid : pids_) ::kill(pid, SIGKILL);
  for (const pid_t pid : pids_) {
    int st = 0;
    ::waitpid(pid, &st, 0);
  }
}

}  // namespace mrlr::jobs
