#pragma once
// The structured, versioned result of one driver invocation — what
// jobs::run_job returns and what the serve protocol ships back to a
// submitting client.
//
// Historically run_job returned a fingerprint *string*; the string
// survives as fingerprint(result) — a deterministic one-line rendering
// (order-sensitive mix64 hash of the solution ids, the exact bit
// pattern of every double, and the MrOutcome metrics) that is
// byte-identical to the legacy format, so "identical across backends"
// stays a plain string comparison. The struct additionally carries the
// fields the string flattened away: solution size, validator verdict,
// the full MrOutcome, and the per-algorithm stats as named, typed
// values, so callers (CLI rendering, the serve daemon, bench) never
// re-parse text.
//
// Wire form: encode_job_result/decode_job_result use the same
// little-endian u64 lane discipline and kBadPayload error taxonomy as
// job_spec.{hpp,cpp} — a corrupt result refuses to decode, it never
// reports a wrong answer.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/core/params.hpp"

namespace mrlr::jobs {

/// One named statistic of a driver result. kPackedDouble values hold a
/// core::pack_double bit pattern (rendered as 16 hex digits in the
/// fingerprint — bit-exact, never decimal text); kCount values are
/// plain integers (rendered in decimal).
struct JobStat {
  enum class Kind : std::uint64_t {
    kCount = 0,
    kPackedDouble = 1,
  };

  std::string name;
  std::uint64_t value = 0;
  Kind kind = Kind::kCount;

  friend bool operator==(const JobStat&, const JobStat&) = default;
};

struct JobResult {
  std::string algorithm;  ///< registry name, echoes JobSpec::algorithm
  /// Order-sensitive mix64 hash over the solution id vector (matching
  /// edge ids, cover vertex/set ids, per-vertex colours, ...).
  std::uint64_t solution_hash = 0;
  std::uint64_t solution_size = 0;  ///< element count of that vector
  /// The per-algorithm validator's verdict (is_matching,
  /// is_vertex_cover, is_proper_vertex_colouring, ...), computed where
  /// the decoded instance is: in the runner.
  bool valid = false;
  core::MrOutcome outcome;
  /// Algorithm-specific stats in fingerprint order (e.g. matching:
  /// weight, stack).
  std::vector<JobStat> stats;

  /// Looks up a stat by name; returns nullptr when absent.
  const JobStat* stat(std::string_view name) const;
  /// Unpacks a kPackedDouble stat; `fallback` when absent.
  double stat_double(std::string_view name, double fallback = 0.0) const;
  /// Reads a kCount stat; `fallback` when absent.
  std::uint64_t stat_count(std::string_view name,
                           std::uint64_t fallback = 0) const;

  friend bool operator==(const JobResult&, const JobResult&) = default;
};

/// The legacy one-line rendering, byte-identical to the strings
/// run_job returned before JobResult existed:
///   <algo> sol=<hex64> [<stat>=<value>...] failed=.. iters=.. rounds=..
///   words=.. central=.. comm=.. violations=..
std::string fingerprint(const JobResult& r);

/// Mix64 chain over every field (algorithm bytes, hashes, validity,
/// outcome, stats) — two results collide iff they are identical in all
/// carried fields, so hash equality across backends/hosts is a single
/// u64 comparison.
std::uint64_t determinism_hash(const JobResult& r);

std::vector<std::byte> encode_job_result(const JobResult& r);

/// Throws exec::TransportError(kBadPayload) on a version mismatch or
/// anything malformed (truncation, bad stat kind, trailing bytes).
JobResult decode_job_result(std::span<const std::byte> bytes);

}  // namespace mrlr::jobs
