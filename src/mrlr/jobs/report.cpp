#include "mrlr/jobs/report.hpp"

#include <sstream>

namespace mrlr::jobs {

bool prints_instance_header(std::string_view algorithm) {
  return algorithm == "matching" || algorithm == "filtering-matching" ||
         algorithm == "filtering-weighted" ||
         algorithm == "coreset-matching";
}

std::string render_instance_header(std::uint64_t n, std::uint64_t m,
                                   double density_exponent) {
  std::ostringstream os;
  os << "instance: n=" << n << " m=" << m << " c=" << density_exponent;
  return os.str();
}

std::string render_solution_line(const JobResult& r,
                                 const RenderInfo& info) {
  std::ostringstream os;
  const std::string& a = r.algorithm;
  if (a == "matching" || a == "filtering-weighted") {
    os << "matching: " << r.solution_size << " edges, weight "
       << r.stat_double("weight") << ", valid=" << r.valid;
  } else if (a == "filtering-matching") {
    os << "matching: " << r.solution_size << " edges, weight "
       << r.stat_double("weight") << ", maximal=" << r.valid;
  } else if (a == "coreset-matching") {
    os << "matching: " << r.solution_size << " edges, weight "
       << r.stat_double("weight") << ", coreset union "
       << r.stat_count("coreset") << " edges, valid=" << r.valid;
  } else if (a == "b-matching") {
    os << "b-matching (b=" << info.b << ", eps=" << info.eps
       << "): " << r.solution_size << " edges, weight "
       << r.stat_double("weight") << ", valid=" << r.valid;
  } else if (a == "vertex-cover") {
    os << "vertex cover: " << r.solution_size << " vertices, weight "
       << r.stat_double("weight") << " (certified OPT >= "
       << r.stat_double("lb") << "), valid=" << r.valid;
  } else if (a == "set-cover-f") {
    os << "set cover (f=" << info.max_frequency
       << "): " << r.solution_size << " sets, weight "
       << r.stat_double("weight") << " (certified OPT >= "
       << r.stat_double("lb") << "), valid=" << r.valid;
  } else if (a == "set-cover-greedy") {
    os << "set cover (greedy, eps=" << info.eps
       << "): " << r.solution_size << " sets, weight "
       << r.stat_double("weight") << ", valid=" << r.valid;
  } else if (a == "mis" || a == "mis-simple" || a == "luby-mis") {
    const char* variant = a == "mis"          ? "Alg 6"
                          : a == "mis-simple" ? "Alg 2"
                                              : "Luby";
    os << "MIS (" << variant << "): " << r.solution_size
       << " vertices, maximal=" << r.valid;
  } else if (a == "clique") {
    os << "clique: " << r.solution_size
       << " vertices, maximal=" << r.valid;
  } else if (a == "colour-vertex" || a == "luby-colouring") {
    os << "vertex colouring" << (a == "luby-colouring" ? " (Luby)" : "")
       << ": " << r.stat_count("colours") << " colours (Delta="
       << info.max_degree << "), proper=" << r.valid;
  } else if (a == "colour-edge") {
    os << "edge colouring: " << r.stat_count("colours")
       << " colours (Delta=" << info.max_degree
       << "), proper=" << r.valid;
  } else {
    // Never reached through the CLI (find_algorithm gates), but a
    // stray name still renders something inspectable.
    os << a << ": " << r.solution_size << " elements, valid=" << r.valid;
  }
  return os.str();
}

std::string render_cost_line(const core::MrOutcome& outcome) {
  std::ostringstream os;
  os << "cost: rounds=" << outcome.rounds
     << " iterations=" << outcome.iterations
     << " max_words/machine=" << outcome.max_machine_words
     << " central_inbox=" << outcome.max_central_inbox
     << " total_comm=" << outcome.total_communication
     << " violations=" << outcome.space_violations
     << (outcome.failed ? "  ** FAILED **" : "");
  return os.str();
}

}  // namespace mrlr::jobs
