#pragma once
// The job-replay layer of a multi-host worker process.
//
// A TCP worker holds no coordinator memory, so the bootstrap ships a
// JobSpec (job_spec.hpp) and the worker *re-runs the entire driver*
// from it: same algorithm, same instance bytes, same MrParams. Because
// every driver is deterministic in (instance, params), the replay
// reconstructs the exact engine state the coordinator's own driver
// built — same topology, same registered rounds, same pre-job preamble
// — at which point make_executor() hands the driver a
// WorkerShardExecutor (exec/shard_worker.hpp) that validates the
// bootstrap against the reconstructed plane, acks it, and serves this
// worker's shard over the wire. When the job tears down, JobServed
// unwinds the driver and the serve loop goes back to accepting
// connections.
//
// run_job() is also the single source of truth for results: the serial
// baseline, the TCP-backed run, the CLI, and the serve daemon all go
// through the same function, which returns a structured, versioned
// JobResult (job_result.hpp). "Byte-identical across backends" is a
// string comparison of fingerprint(run_job(spec)) — the same one-line
// rendering run_job used to return directly.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

#include "mrlr/exec/shard_channel.hpp"
#include "mrlr/jobs/job_result.hpp"
#include "mrlr/jobs/job_spec.hpp"

namespace mrlr::jobs {

/// One registered algorithm: its vocabulary name plus what it needs
/// from the instance — the metadata the CLI uses to load/serialize the
/// right instance kind without a per-algorithm dispatch chain.
struct AlgorithmInfo {
  std::string_view name;
  JobSpec::InstanceKind instance = JobSpec::InstanceKind::kGraph;
  /// Graph algorithms only: the driver consumes edge weights, so the
  /// instance must carry them.
  bool weighted = false;
};

/// The full algorithm vocabulary in registry order — the one generated
/// list behind the CLI's usage() text, its dispatch, the worker
/// registry, and the serve daemon's admission check.
const std::vector<AlgorithmInfo>& known_algorithms();

/// Registry lookup; nullptr when `name` is not a registered algorithm.
const AlgorithmInfo* find_algorithm(std::string_view name);

/// True when `name` is a registered algorithm (the CLI vocabulary).
bool known_algorithm(std::string_view name);

/// Runs the named driver on the spec's instance and returns its
/// structured result (solution hash + size, validator verdict, outcome
/// metrics, per-algorithm stats). Throws
/// exec::TransportError(kBadPayload) for an unknown algorithm or a
/// malformed spec. Inside a worker session the driver never returns —
/// exec::JobServed unwinds once the shard is served.
JobResult run_job(const JobSpec& spec);

/// decode_job_spec + run_job.
JobResult run_job_spec(std::span<const std::byte> bytes);

struct WorkerOptions {
  std::uint64_t max_jobs = 0;     ///< stop after N connections (0 = forever)
  std::ostream* log = nullptr;    ///< per-connection status lines
};

/// Serves worker connections on `listener` until max_jobs connections
/// have been handled (or forever). Per connection: handshake (refusing
/// version mismatches and duplicate (job, shard) registrations — a
/// reconnect after a drop cannot restore lost shard state, so it is
/// refused the same way), bootstrap decode, driver replay, shard
/// serving. A failed connection is logged and dropped; the loop keeps
/// accepting.
void worker_serve(exec::TcpListener& listener, const WorkerOptions& opts);

/// Loopback TCP worker fleet for tests and bench scenarios: forks
/// `workers` processes, each serving worker_serve on an ephemeral
/// 127.0.0.1 port, and kills them on destruction. endpoints() feeds
/// exec::ProcessBackendConfig::workers.
class ScopedTcpLoopback {
 public:
  explicit ScopedTcpLoopback(unsigned workers);
  ~ScopedTcpLoopback();

  ScopedTcpLoopback(const ScopedTcpLoopback&) = delete;
  ScopedTcpLoopback& operator=(const ScopedTcpLoopback&) = delete;

  const std::vector<exec::Endpoint>& endpoints() const {
    return endpoints_;
  }

 private:
  std::vector<exec::Endpoint> endpoints_;
  std::vector<pid_t> pids_;
};

}  // namespace mrlr::jobs
