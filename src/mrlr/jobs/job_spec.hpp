#pragma once
// The serialized form of "one driver invocation" — what the coordinator
// ships in the job bootstrap so a worker started from nothing
// (`mrlr_cli worker --listen`) can re-run the exact same driver and
// reconstruct its shard state without ever sharing memory.
//
// A spec names the algorithm (the CLI's algorithm vocabulary), carries
// the full MrParams, a small extras table for driver arguments that are
// not MrParams fields (b-matching's b, vertex-cover's weights, eps...),
// and the complete problem instance in a bit-exact binary form: graphs
// as an .mgb stream (graph/io_binary — checksummed, fully validated on
// parse), set systems as an equivalent fixed-width block format defined
// here. Bit-exactness matters: the worker's replayed driver must hash
// identically to the coordinator's, so weights cross the wire as raw
// f64 bit patterns, never as decimal text.
//
// Decoding throws exec::TransportError(kBadPayload) (or
// graph::ParseError from the .mgb reader) on anything malformed — a
// corrupt spec refuses the job, it never runs a wrong instance.

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"
#include "mrlr/setcover/set_system.hpp"

namespace mrlr::jobs {

struct JobSpec {
  enum class InstanceKind : std::uint64_t {
    kGraph = 1,      ///< instance bytes are a complete .mgb stream
    kSetSystem = 2,  ///< instance bytes use the block format below
  };

  std::string algorithm;  ///< CLI algorithm name ("matching", "mis", ...)
  core::MrParams params;
  /// Driver arguments beyond MrParams, keyed by name. Scalars are
  /// single-element vectors; doubles are stored via core::pack_double.
  std::map<std::string, std::vector<std::uint64_t>> extras;
  InstanceKind kind = InstanceKind::kGraph;
  std::vector<std::byte> instance;
};

std::vector<std::byte> encode_job_spec(const JobSpec& spec);

/// Throws exec::TransportError(kBadPayload) on anything malformed.
JobSpec decode_job_spec(std::span<const std::byte> bytes);

/// Convenience builders for the two instance kinds.
JobSpec graph_job(std::string algorithm, const graph::Graph& g,
                  const core::MrParams& params);
JobSpec set_system_job(std::string algorithm,
                       const setcover::SetSystem& sys,
                       const core::MrParams& params);

/// Instance reconstruction (validates; throws on kind mismatch or
/// malformed bytes).
graph::Graph decode_graph_instance(const JobSpec& spec);
setcover::SetSystem decode_set_system_instance(const JobSpec& spec);

}  // namespace mrlr::jobs
