#pragma once
// Human-readable rendering of a JobResult — the exact lines mrlr_cli
// has always printed, factored out of the CLI so `run` (local) and
// `submit` (daemon round-trip) produce byte-identical stdout from the
// same JobResult.
//
// The renderer works from the structured result plus the few values
// only the instance or the command line knows (max degree, set-system
// frequency, b/eps) — packaged as RenderInfo by whoever built the
// JobSpec. Doubles print with default ostream formatting, matching the
// historical `std::cout << weight` output digit for digit.

#include <cstdint>
#include <string>
#include <string_view>

#include "mrlr/core/params.hpp"
#include "mrlr/jobs/job_result.hpp"

namespace mrlr::jobs {

/// Instance- and flag-derived values the solution line interpolates but
/// the JobResult does not carry. Only the fields an algorithm's line
/// mentions are read.
struct RenderInfo {
  std::uint64_t max_degree = 0;     ///< colour-*: Delta
  std::uint64_t max_frequency = 0;  ///< set-cover-f: f
  std::uint32_t b = 0;              ///< b-matching
  double eps = 0.0;                 ///< b-matching, set-cover-greedy
};

/// The matching family prints an `instance: n=.. m=.. c=..` line before
/// the solution (the Figure-1 axes); everything else does not.
bool prints_instance_header(std::string_view algorithm);

std::string render_instance_header(std::uint64_t n, std::uint64_t m,
                                   double density_exponent);

/// The per-algorithm solution summary (e.g. `matching: 117 edges,
/// weight 93.4618, valid=1`). The algorithm is read from the result.
std::string render_solution_line(const JobResult& r, const RenderInfo& info);

/// The Figure-1 cost metrics line (`cost: rounds=.. iterations=..
/// max_words/machine=.. ...`).
std::string render_cost_line(const core::MrOutcome& outcome);

}  // namespace mrlr::jobs
