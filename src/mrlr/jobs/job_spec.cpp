#include "mrlr/jobs/job_spec.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/graph/io_binary.hpp"

namespace mrlr::jobs {

namespace {

using exec::append_u64;
using exec::read_u64;

constexpr std::uint64_t kSpecVersion = 1;

[[noreturn]] void bad_spec(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "job spec: " + what);
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t n) {
  if (n == 0) return;
  const auto at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, data, n);
}

void append_string(std::vector<std::byte>& out, std::string_view s) {
  append_u64(out, s.size());
  append_bytes(out, s.data(), s.size());
}

/// Sequential reader with bounds checking; every primitive throws
/// kBadPayload instead of running off the payload.
struct Reader {
  std::span<const std::byte> bytes;
  std::size_t at = 0;

  void need(std::size_t n, const char* what) const {
    if (bytes.size() - at < n) {
      bad_spec(std::string("truncated inside ") + what);
    }
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    const std::uint64_t v = read_u64(bytes, at);
    at += 8;
    return v;
  }
  std::string string(const char* what) {
    const std::uint64_t len = u64(what);
    need(len, what);
    std::string s(reinterpret_cast<const char*>(bytes.data() + at), len);
    at += len;
    return s;
  }
  void raw(void* dst, std::size_t n, const char* what) {
    need(n, what);
    std::memcpy(dst, bytes.data() + at, n);
    at += n;
  }
};

void encode_params(std::vector<std::byte>& out, const core::MrParams& p) {
  append_u64(out, core::pack_double(p.mu));
  append_u64(out, core::pack_double(p.c));
  append_u64(out, core::pack_double(p.slack));
  append_u64(out, core::pack_double(p.sample_boost));
  append_u64(out, p.seed);
  append_u64(out, p.max_iterations);
  append_u64(out, p.enforce_space ? 1 : 0);
  append_u64(out, p.num_threads);
  append_u64(out, p.num_shards);
}

core::MrParams decode_params(Reader& r) {
  core::MrParams p;
  p.mu = core::unpack_double(r.u64("params"));
  p.c = core::unpack_double(r.u64("params"));
  p.slack = core::unpack_double(r.u64("params"));
  p.sample_boost = core::unpack_double(r.u64("params"));
  p.seed = r.u64("params");
  p.max_iterations = r.u64("params");
  const std::uint64_t enforce = r.u64("params");
  if (enforce > 1) bad_spec("enforce_space flag must be 0 or 1");
  p.enforce_space = enforce == 1;
  p.num_threads = r.u64("params");
  p.num_shards = r.u64("params");
  return p;
}

}  // namespace

std::vector<std::byte> encode_job_spec(const JobSpec& spec) {
  std::vector<std::byte> out;
  append_u64(out, kSpecVersion);
  append_string(out, spec.algorithm);
  encode_params(out, spec.params);
  append_u64(out, spec.extras.size());
  for (const auto& [name, values] : spec.extras) {
    append_string(out, name);
    append_u64(out, values.size());
    for (const std::uint64_t v : values) append_u64(out, v);
  }
  append_u64(out, static_cast<std::uint64_t>(spec.kind));
  append_u64(out, spec.instance.size());
  append_bytes(out, spec.instance.data(), spec.instance.size());
  return out;
}

JobSpec decode_job_spec(std::span<const std::byte> bytes) {
  Reader r{bytes};
  const std::uint64_t version = r.u64("version");
  if (version != kSpecVersion) {
    bad_spec("unsupported spec version " + std::to_string(version) +
             " (this build speaks version " + std::to_string(kSpecVersion) +
             ")");
  }
  JobSpec spec;
  spec.algorithm = r.string("algorithm name");
  if (spec.algorithm.empty()) bad_spec("empty algorithm name");
  spec.params = decode_params(r);

  const std::uint64_t extras = r.u64("extras count");
  // Each extra costs at least two 8-byte length prefixes.
  if (extras > (bytes.size() - r.at) / 16) {
    bad_spec("extras count " + std::to_string(extras) +
             " exceeds the remaining payload");
  }
  for (std::uint64_t i = 0; i < extras; ++i) {
    std::string name = r.string("extra name");
    if (name.empty()) bad_spec("empty extra name");
    const std::uint64_t count = r.u64("extra values");
    if (count > (bytes.size() - r.at) / 8) {
      bad_spec("extra \"" + name + "\" value count " +
               std::to_string(count) + " exceeds the remaining payload");
    }
    std::vector<std::uint64_t> values(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      values[j] = r.u64("extra values");
    }
    if (!spec.extras.emplace(std::move(name), std::move(values)).second) {
      bad_spec("duplicate extra name");
    }
  }

  const std::uint64_t kind = r.u64("instance kind");
  if (kind != static_cast<std::uint64_t>(JobSpec::InstanceKind::kGraph) &&
      kind !=
          static_cast<std::uint64_t>(JobSpec::InstanceKind::kSetSystem)) {
    bad_spec("unknown instance kind " + std::to_string(kind));
  }
  spec.kind = static_cast<JobSpec::InstanceKind>(kind);
  const std::uint64_t len = r.u64("instance");
  r.need(len, "instance");
  spec.instance.assign(
      r.bytes.begin() + static_cast<std::ptrdiff_t>(r.at),
      r.bytes.begin() + static_cast<std::ptrdiff_t>(r.at + len));
  r.at += len;
  if (r.at != bytes.size()) {
    bad_spec(std::to_string(bytes.size() - r.at) +
             " trailing bytes after the instance");
  }
  return spec;
}

JobSpec graph_job(std::string algorithm, const graph::Graph& g,
                  const core::MrParams& params) {
  JobSpec spec;
  spec.algorithm = std::move(algorithm);
  spec.params = params;
  spec.kind = JobSpec::InstanceKind::kGraph;
  spec.instance = graph::serialize_mgb(g);
  return spec;
}

JobSpec set_system_job(std::string algorithm,
                       const setcover::SetSystem& sys,
                       const core::MrParams& params) {
  JobSpec spec;
  spec.algorithm = std::move(algorithm);
  spec.params = params;
  spec.kind = JobSpec::InstanceKind::kSetSystem;
  // Block format: universe, set count, then per set (f64 weight bits,
  // element count, raw u32 elements). Weights as bit patterns — the
  // replayed instance must be bit-identical, not merely close.
  std::vector<std::byte>& out = spec.instance;
  append_u64(out, sys.universe_size());
  append_u64(out, sys.num_sets());
  for (setcover::SetId i = 0; i < sys.num_sets(); ++i) {
    append_u64(out, core::pack_double(sys.weight(i)));
    const std::span<const setcover::ElementId> s = sys.set(i);
    append_u64(out, s.size());
    append_bytes(out, s.data(), s.size_bytes());
  }
  return spec;
}

graph::Graph decode_graph_instance(const JobSpec& spec) {
  if (spec.kind != JobSpec::InstanceKind::kGraph) {
    bad_spec("algorithm \"" + spec.algorithm +
             "\" needs a graph instance but the spec carries kind " +
             std::to_string(static_cast<std::uint64_t>(spec.kind)));
  }
  return graph::parse_mgb(spec.instance);
}

setcover::SetSystem decode_set_system_instance(const JobSpec& spec) {
  if (spec.kind != JobSpec::InstanceKind::kSetSystem) {
    bad_spec("algorithm \"" + spec.algorithm +
             "\" needs a set system instance but the spec carries kind " +
             std::to_string(static_cast<std::uint64_t>(spec.kind)));
  }
  Reader r{spec.instance};
  const std::uint64_t universe = r.u64("set system universe");
  const std::uint64_t nsets = r.u64("set system count");
  if (universe > std::uint64_t{1} << 32) {
    bad_spec("set system universe exceeds the 32-bit element-id limit");
  }
  // Each set costs at least its weight and count fields.
  if (nsets > (spec.instance.size() - r.at) / 16) {
    bad_spec("set count " + std::to_string(nsets) +
             " exceeds the remaining payload");
  }
  std::vector<std::vector<setcover::ElementId>> sets;
  sets.reserve(nsets);
  std::vector<double> weights;
  weights.reserve(nsets);
  for (std::uint64_t i = 0; i < nsets; ++i) {
    const double w = core::unpack_double(r.u64("set weight"));
    if (!std::isfinite(w) || w <= 0.0) {
      bad_spec("set " + std::to_string(i) +
               " weight must be finite and positive");
    }
    weights.push_back(w);
    const std::uint64_t count = r.u64("set size");
    if (count > (spec.instance.size() - r.at) / 4) {
      bad_spec("set " + std::to_string(i) + " size " +
               std::to_string(count) + " exceeds the remaining payload");
    }
    std::vector<setcover::ElementId> elems(count);
    r.raw(elems.data(), count * sizeof(setcover::ElementId),
          "set elements");
    for (const setcover::ElementId e : elems) {
      if (e >= universe) {
        bad_spec("set " + std::to_string(i) +
                 " element out of the universe");
      }
    }
    sets.push_back(std::move(elems));
  }
  if (r.at != spec.instance.size()) {
    bad_spec(std::to_string(spec.instance.size() - r.at) +
             " trailing bytes after the last set");
  }
  return setcover::SetSystem(universe, std::move(sets), std::move(weights));
}

}  // namespace mrlr::jobs
