#pragma once
// Regression comparator for bench result files (the engine behind
// tools/bench_diff and the perf-smoke CI job).
//
// Policy, per scenario matched by name:
//   * identity fields (algo/family/n/m/mu/c/format) must match — a
//     changed scenario definition invalidates the comparison and is
//     reported as a regression (regenerate the baseline instead).
//     `threads` is NOT identity: backends are deterministic by
//     contract, so a run at a different MRLR_THREADS must still match
//     the baseline exactly on every deterministic metric (and only
//     earns a note);
//   * deterministic metrics (failed, rounds, iterations,
//     max_machine_words, max_central_inbox, shuffle_words, quality,
//     quality_vs_baseline, determinism_hash) are compared exactly;
//   * wall_seconds regresses when
//       current > max(baseline, time_floor_seconds) * time_threshold
//     — the floor keeps sub-millisecond scenarios from flagging on
//     scheduler noise;
//   * extra metrics are informational and never compared;
//   * a scenario present in the baseline but missing from the current
//     file is a regression (lost coverage); a new scenario is a note.

#include <string>
#include <vector>

#include "mrlr/bench/result.hpp"

namespace mrlr::bench {

struct DiffOptions {
  double time_threshold = 2.0;
  double time_floor_seconds = 0.05;
};

struct MetricDelta {
  std::string scenario;
  std::string metric;
  std::string detail;  ///< "baseline -> current" rendering
};

struct DiffReport {
  std::vector<MetricDelta> regressions;
  std::vector<std::string> notes;  ///< additions, improvements, skips
  std::size_t compared = 0;        ///< scenarios matched by name
  bool ok() const { return regressions.empty(); }
};

DiffReport diff_bench_files(const BenchFile& baseline,
                            const BenchFile& current,
                            const DiffOptions& options = {});

/// Human-readable rendering of the report (one line per finding).
std::string render_diff_report(const DiffReport& report);

}  // namespace mrlr::bench
