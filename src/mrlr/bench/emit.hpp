#pragma once
// Unified environment handling and machine-readable emission for every
// bench surface (the harness runner, the thin google-benchmark wrapper
// binaries, and bench_baseline_comparison). Before this lived in
// bench/bench_common.hpp and each binary hand-rolled its own env reads
// and JSONL rows; now there is one implementation.
//
// Environment knobs (read here and nowhere else):
//   MRLR_THREADS    — execution backend (1 serial, N pool, 0 hardware);
//   MRLR_BENCH_N    — instance-size override for the wrapper binaries;
//   MRLR_BENCH_CSV  — directory for per-table CSV dumps;
//   MRLR_BENCH_JSON — directory for per-bench JSONL appends.

#include <cstdint>
#include <string>

#include "mrlr/bench/json.hpp"
#include "mrlr/util/table.hpp"

namespace mrlr::bench {

/// Parses an unsigned integer environment variable; `fallback` when the
/// variable is unset, empty, or unparsable.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// MRLR_THREADS (fallback 1 = serial backend).
std::uint64_t env_threads();

/// MRLR_BENCH_N (fallback 0 = scenario default size).
std::uint64_t env_bench_n();

std::string fmt_double(double v, int prec = 2);

void print_header(const std::string& title, const std::string& claim);

/// Prints the table and, when MRLR_BENCH_CSV is set, writes it as CSV
/// to $MRLR_BENCH_CSV/<name>.csv so plots can be regenerated without
/// scraping stdout.
void emit_table(const Table& t, const std::string& name);

/// One flat JSON object per call, written as a single line (JSONL) to
/// stdout; when MRLR_BENCH_JSON is set the row is also appended to
/// $MRLR_BENCH_JSON/<name>.jsonl. Built on the harness Json type so
/// escaping and number formatting match the result-file schema.
class JsonRow {
 public:
  explicit JsonRow(std::string name);

  JsonRow& field(const std::string& key, const std::string& value);
  JsonRow& field(const std::string& key, const char* value);
  JsonRow& field(const std::string& key, double value);
  JsonRow& field(const std::string& key, std::uint64_t value);
  JsonRow& field(const std::string& key, bool value);

  void emit() const;

 private:
  std::string name_;
  Json body_ = Json::object();
};

}  // namespace mrlr::bench
