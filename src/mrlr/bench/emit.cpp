#include "mrlr/bench/emit.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace mrlr::bench {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

std::uint64_t env_threads() { return env_u64("MRLR_THREADS", 1); }
std::uint64_t env_bench_n() { return env_u64("MRLR_BENCH_N", 0); }

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

void print_header(const std::string& title, const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n" << claim << "\n\n";
}

void emit_table(const Table& t, const std::string& name) {
  t.print(std::cout);
  const char* dir = std::getenv("MRLR_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / (name + ".csv"));
  t.write_csv(out);
  std::cout << "[csv written: " << dir << "/" << name << ".csv]\n";
}

JsonRow::JsonRow(std::string name) : name_(std::move(name)) {
  body_.set("bench", Json::string(name_));
}

JsonRow& JsonRow::field(const std::string& key, const std::string& value) {
  body_.set(key, Json::string(value));
  return *this;
}
JsonRow& JsonRow::field(const std::string& key, const char* value) {
  body_.set(key, Json::string(value));
  return *this;
}
JsonRow& JsonRow::field(const std::string& key, double value) {
  body_.set(key, Json::number(value));
  return *this;
}
JsonRow& JsonRow::field(const std::string& key, std::uint64_t value) {
  body_.set(key, Json::number(static_cast<double>(value)));
  return *this;
}
JsonRow& JsonRow::field(const std::string& key, bool value) {
  body_.set(key, Json::boolean(value));
  return *this;
}

void JsonRow::emit() const {
  const std::string row = body_.dump();
  std::cout << row << "\n";
  const char* dir = std::getenv("MRLR_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / (name_ + ".jsonl"),
                    std::ios::app);
  out << row << "\n";
}

}  // namespace mrlr::bench
