#include "mrlr/bench/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mrlr::bench {
namespace {

constexpr int kMaxDepth = 64;

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw JsonError("json: " + what + " at byte " + std::to_string(pos));
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (done() || text[pos] != c) {
      fail(pos, std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos, "nesting too deep");
    skip_ws();
    if (done()) fail(pos, "unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail(pos, "bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail(pos, "bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail(pos, "bad literal");
      return Json();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(pos, "unexpected character");
  }

  Json parse_object(int depth) {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos;
      return out;
    }
    while (true) {
      skip_ws();
      const std::size_t key_pos = pos;
      if (done() || peek() != '"') fail(pos, "expected object key");
      std::string key = parse_string();
      if (out.find(key) != nullptr) fail(key_pos, "duplicate key '" + key + "'");
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (done()) fail(pos, "unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos;
      return out;
    }
    while (true) {
      out.push(parse_value(depth + 1));
      skip_ws();
      if (done()) fail(pos, "unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (done()) fail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) fail(pos, "unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          out += parse_unicode_escape();
          break;
        }
        default:
          fail(pos - 1, "bad escape");
      }
    }
  }

  /// Decodes \uXXXX (BMP only; surrogate pairs rejected — the harness
  /// never emits them) to UTF-8.
  std::string parse_unicode_escape() {
    if (pos + 4 > text.size()) fail(pos, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text[pos++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail(pos - 1, "bad hex digit in \\u escape");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail(pos - 4, "surrogate \\u escape unsupported");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    auto digits = [&] {
      std::size_t count = 0;
      while (!done() && peek() >= '0' && peek() <= '9') {
        ++pos;
        ++count;
      }
      return count;
    };
    if (digits() == 0) fail(pos, "bad number");
    if (!done() && peek() == '.') {
      ++pos;
      if (digits() == 0) fail(pos, "bad number (no fraction digits)");
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (digits() == 0) fail(pos, "bad number (no exponent digits)");
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail(start, "unparsable number");
    }
    return Json::number(v);
  }
};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan literals
    return;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw JsonError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::fields() const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  return obj_;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw JsonError("json: missing key '" + std::string(key) + "'");
  }
  return *found;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  arr_.push_back(std::move(value));
  return *this;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      append_number(out, num_);
      return;
    case Type::kString:
      append_escaped(out, str_);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_indent(out, indent, depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (!p.done()) fail(p.pos, "trailing garbage after document");
  return v;
}

}  // namespace mrlr::bench
