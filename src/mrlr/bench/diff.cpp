#include "mrlr/bench/diff.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace mrlr::bench {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

struct Comparer {
  const DiffOptions& opt;
  DiffReport& report;
  const BenchResult& base;
  const BenchResult& cur;

  void regress(const std::string& metric, const std::string& detail) {
    report.regressions.push_back({base.name, metric, detail});
  }

  void exact_u64(const char* metric, std::uint64_t b, std::uint64_t c) {
    if (b != c) {
      regress(metric, std::to_string(b) + " -> " + std::to_string(c));
    }
  }

  void exact_double(const char* metric, double b, double c) {
    if (b != c) regress(metric, num(b) + " -> " + num(c));
  }

  void exact_string(const char* metric, const std::string& b,
                    const std::string& c) {
    if (b != c) regress(metric, "'" + b + "' -> '" + c + "'");
  }

  void run() {
    // Identity: a changed definition means the two runs measured
    // different experiments — the baseline must be regenerated.
    exact_string("algo (scenario definition changed)", base.algo, cur.algo);
    exact_string("family (scenario definition changed)", base.family,
                 cur.family);
    exact_u64("n (scenario definition changed)", base.n, cur.n);
    exact_u64("m (scenario definition changed)", base.m, cur.m);
    exact_double("mu (scenario definition changed)", base.mu, cur.mu);
    exact_double("c (scenario definition changed)", base.c, cur.c);
    exact_string("format (scenario definition changed)", base.format,
                 cur.format);
    // threads is deliberately NOT identity: scenarios that honor the
    // session backend knob (MRLR_THREADS / --threads) are byte-identical
    // at any setting — that is the exec/ determinism contract, and the
    // exact metric comparisons below enforce it. A differing thread
    // count is only worth a note.
    if (base.threads != cur.threads) {
      report.notes.push_back(base.name + ": ran at threads=" +
                             std::to_string(cur.threads) +
                             " (baseline threads=" +
                             std::to_string(base.threads) +
                             "); deterministic metrics still compared");
    }

    if (!base.failed && cur.failed) {
      regress("failed", "ok -> FAILED");
    } else if (base.failed && !cur.failed) {
      report.notes.push_back(base.name + ": was failing, now ok");
    }

    exact_u64("rounds", base.rounds, cur.rounds);
    exact_u64("iterations", base.iterations, cur.iterations);
    exact_u64("max_machine_words", base.max_machine_words,
              cur.max_machine_words);
    exact_u64("max_central_inbox", base.max_central_inbox,
              cur.max_central_inbox);
    exact_u64("shuffle_words", base.shuffle_words, cur.shuffle_words);
    exact_double("quality", base.quality, cur.quality);
    exact_double("quality_vs_baseline", base.quality_vs_baseline,
                 cur.quality_vs_baseline);
    if (base.determinism_hash != cur.determinism_hash) {
      regress("determinism_hash", hash_to_hex(base.determinism_hash) +
                                      " -> " +
                                      hash_to_hex(cur.determinism_hash));
    }

    const double budget =
        std::max(base.wall_seconds, opt.time_floor_seconds) *
        opt.time_threshold;
    if (cur.wall_seconds > budget) {
      regress("wall_seconds",
              num(base.wall_seconds) + "s -> " + num(cur.wall_seconds) +
                  "s (allowed " + num(budget) + "s at " +
                  num(opt.time_threshold) + "x)");
    } else if (base.wall_seconds > opt.time_floor_seconds &&
               cur.wall_seconds < base.wall_seconds / opt.time_threshold) {
      report.notes.push_back(base.name + ": wall_seconds improved " +
                             num(base.wall_seconds) + "s -> " +
                             num(cur.wall_seconds) + "s");
    }
  }
};

}  // namespace

DiffReport diff_bench_files(const BenchFile& baseline,
                            const BenchFile& current,
                            const DiffOptions& options) {
  DiffReport report;
  std::unordered_map<std::string, const BenchResult*> by_name;
  for (const BenchResult& r : current.results) by_name[r.name] = &r;

  for (const BenchResult& base : baseline.results) {
    const auto it = by_name.find(base.name);
    if (it == by_name.end()) {
      report.regressions.push_back(
          {base.name, "coverage", "scenario missing from current file"});
      continue;
    }
    ++report.compared;
    Comparer{options, report, base, *it->second}.run();
    by_name.erase(it);
  }
  for (const BenchResult& r : current.results) {
    if (by_name.count(r.name) != 0) {
      report.notes.push_back(r.name +
                             ": new scenario (absent from baseline)");
    }
  }
  return report;
}

std::string render_diff_report(const DiffReport& report) {
  std::string out;
  for (const MetricDelta& d : report.regressions) {
    out += "REGRESSION " + d.scenario + " :: " + d.metric + " :: " +
           d.detail + "\n";
  }
  for (const std::string& n : report.notes) {
    out += "note: " + n + "\n";
  }
  out += "compared " + std::to_string(report.compared) + " scenario(s): " +
         (report.ok() ? "OK"
                      : std::to_string(report.regressions.size()) +
                            " regression(s)") +
         "\n";
  return out;
}

}  // namespace mrlr::bench
