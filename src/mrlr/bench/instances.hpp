#pragma once
// Shared instance construction and parameter defaults for bench
// scenarios and the remaining standalone bench binaries.

#include <cstdint>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/generators.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::bench {

/// Standard bench MrParams: the paper's defaults plus a high iteration
/// safety valve and an explicit execution backend.
core::MrParams scenario_params(double mu, std::uint64_t seed,
                               std::uint64_t threads = 1);

/// Standard weighted instance family for graph problems: G(n, n^{1+c})
/// with the given weight distribution.
graph::Graph weighted_gnm(std::uint64_t n, double c, graph::WeightDist dist,
                          std::uint64_t seed);

}  // namespace mrlr::bench
