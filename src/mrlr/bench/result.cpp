#include "mrlr/bench/result.hpp"

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mrlr::bench {
namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The schema forbids non-finite metrics: Json would emit them as
/// `null` (JSON has no inf/nan), which the reader rejects — the file
/// would be written successfully but never readable by bench_diff.
/// Failing at write time points at the scenario instead.
Json finite_num(double v, const char* field) {
  if (!std::isfinite(v)) {
    throw JsonError(std::string("non-finite value for '") + field +
                    "' (scenario must emit finite metrics)");
  }
  return Json::number(v);
}

std::uint64_t get_u64(const Json& j, std::string_view key) {
  const double v = j.at(key).as_number();
  if (v < 0 || v > 9007199254740992.0) {  // 2^53: exact-double range
    throw JsonError("json: field '" + std::string(key) +
                    "' out of integer range");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

void HashAcc::mix(std::uint64_t x) { h_ = splitmix(h_ ^ x); }
void HashAcc::mix(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
void HashAcc::mix(const std::string& s) {
  for (const char c : s) {
    mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  mix(static_cast<std::uint64_t>(s.size()));
}

std::string hash_to_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::uint64_t hash_from_hex(const std::string& s) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') {
    throw JsonError("json: bad determinism_hash '" + s + "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str() + 2, &end, 16);
  if (errno != 0 || end != s.c_str() + s.size()) {
    throw JsonError("json: bad determinism_hash '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

Json to_json(const BenchResult& r) {
  Json j = Json::object();
  j.set("name", Json::string(r.name));
  j.set("algo", Json::string(r.algo));
  j.set("family", Json::string(r.family));
  j.set("n", Json::number(static_cast<double>(r.n)));
  j.set("m", Json::number(static_cast<double>(r.m)));
  j.set("mu", finite_num(r.mu, "mu"));
  j.set("c", finite_num(r.c, "c"));
  j.set("threads", Json::number(static_cast<double>(r.threads)));
  j.set("format", Json::string(r.format));
  j.set("wall_seconds", finite_num(r.wall_seconds, "wall_seconds"));
  j.set("rounds", Json::number(static_cast<double>(r.rounds)));
  j.set("iterations", Json::number(static_cast<double>(r.iterations)));
  j.set("max_machine_words",
        Json::number(static_cast<double>(r.max_machine_words)));
  j.set("max_central_inbox",
        Json::number(static_cast<double>(r.max_central_inbox)));
  j.set("shuffle_words", Json::number(static_cast<double>(r.shuffle_words)));
  j.set("quality", finite_num(r.quality, "quality"));
  j.set("quality_vs_baseline",
        finite_num(r.quality_vs_baseline, "quality_vs_baseline"));
  j.set("determinism_hash", Json::string(hash_to_hex(r.determinism_hash)));
  j.set("failed", Json::boolean(r.failed));
  Json extra = Json::object();
  for (const auto& [k, v] : r.extra) extra.set(k, finite_num(v, k.c_str()));
  j.set("extra", std::move(extra));
  if (!r.manifest.empty()) {
    Json manifest = Json::object();
    for (const auto& [k, v] : r.manifest) manifest.set(k, Json::string(v));
    j.set("manifest", std::move(manifest));
  }
  return j;
}

Json to_json(const BenchFile& f) {
  Json j = Json::object();
  j.set("schema_version",
        Json::number(static_cast<double>(f.schema_version)));
  j.set("tool", Json::string(f.tool));
  Json results = Json::array();
  for (const BenchResult& r : f.results) results.push(to_json(r));
  j.set("results", std::move(results));
  return j;
}

BenchResult bench_result_from_json(const Json& j) {
  BenchResult r;
  r.name = j.at("name").as_string();
  r.algo = j.at("algo").as_string();
  r.family = j.at("family").as_string();
  r.n = get_u64(j, "n");
  r.m = get_u64(j, "m");
  r.mu = j.at("mu").as_number();
  r.c = j.at("c").as_number();
  r.threads = get_u64(j, "threads");
  r.format = j.at("format").as_string();
  r.wall_seconds = j.at("wall_seconds").as_number();
  r.rounds = get_u64(j, "rounds");
  r.iterations = get_u64(j, "iterations");
  r.max_machine_words = get_u64(j, "max_machine_words");
  r.max_central_inbox = get_u64(j, "max_central_inbox");
  r.shuffle_words = get_u64(j, "shuffle_words");
  r.quality = j.at("quality").as_number();
  r.quality_vs_baseline = j.at("quality_vs_baseline").as_number();
  r.determinism_hash = hash_from_hex(j.at("determinism_hash").as_string());
  r.failed = j.at("failed").as_bool();
  for (const auto& [k, v] : j.at("extra").fields()) {
    r.extra[k] = v.as_number();
  }
  // Optional: files written before the manifest existed lack the key.
  if (const Json* manifest = j.find("manifest")) {
    for (const auto& [k, v] : manifest->fields()) {
      r.manifest[k] = v.as_string();
    }
  }
  return r;
}

BenchFile bench_file_from_json(const Json& j) {
  BenchFile f;
  f.schema_version = get_u64(j, "schema_version");
  if (f.schema_version != kBenchSchemaVersion) {
    throw JsonError("bench file schema_version " +
                    std::to_string(f.schema_version) +
                    " is not the supported version " +
                    std::to_string(kBenchSchemaVersion));
  }
  f.tool = j.at("tool").as_string();
  for (const Json& item : j.at("results").items()) {
    f.results.push_back(bench_result_from_json(item));
  }
  return f;
}

void write_bench_file(const BenchFile& f, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << to_json(f).dump(2) << "\n";
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

BenchFile read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return bench_file_from_json(Json::parse(buf.str()));
}

}  // namespace mrlr::bench
