#include "mrlr/bench/runner.hpp"

#include <exception>
#include <ostream>
#include <stdexcept>

#include "mrlr/bench/emit.hpp"
#include "mrlr/bench/manifest.hpp"
#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/table.hpp"

namespace mrlr::bench {
namespace {

/// Per-phase wall totals for the spans this scenario recorded, folded
/// into `extra` as tel_<phase>_s. Informational (never diffed): the
/// diff policy treats extra as free-form, so telemetry-on and -off runs
/// of the same scenario still compare clean.
void fold_telemetry(BenchResult& r, const obs::Telemetry& tel,
                    std::size_t from) {
  double totals[obs::kNumPhases] = {};
  bool any = false;
  for (const obs::SpanRecord& s : tel.spans_since(from)) {
    totals[static_cast<std::size_t>(s.phase)] +=
        static_cast<double>(s.dur_ns) * 1e-9;
    any = true;
  }
  if (!any) return;
  for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
    if (totals[p] > 0.0) {
      r.extra["tel_" + std::string(obs::phase_name(
                           static_cast<obs::Phase>(p))) + "_s"] = totals[p];
    }
  }
}

BenchResult run_one(const Scenario& s, const RunContext& ctx,
                    std::ostream& log, std::size_t index,
                    std::size_t total) {
  log << "[" << index + 1 << "/" << total << "] " << s.name << " ... "
      << std::flush;
  obs::Telemetry& tel = obs::Telemetry::instance();
  const std::size_t span_mark = tel.enabled() ? tel.span_count() : 0;
  BenchResult r = s.run(ctx);
  r.name = s.name;
  if (tel.enabled()) fold_telemetry(r, tel, span_mark);
  r.manifest = run_manifest(ctx);
  log << (r.failed ? "FAILED" : "ok") << " ("
      << fmt_double(r.wall_seconds, 3) << "s)\n";
  return r;
}

}  // namespace

std::vector<BenchResult> run_group(const Registry& registry,
                                   const std::string& group,
                                   const RunContext& context,
                                   std::ostream& log) {
  const auto selected = select_scenarios(registry, {group}, {});
  std::vector<BenchResult> results;
  results.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    results.push_back(
        run_one(*selected[i], context, log, i, selected.size()));
  }
  return results;
}

int run_bench(const Registry& registry, const RunOptions& options,
              std::ostream& log) {
  std::vector<const Scenario*> selected;
  try {
    if (options.list_only && options.groups.empty() &&
        options.scenarios.empty()) {
      selected = select_scenarios(registry, {"all"}, {});
    } else {
      selected =
          select_scenarios(registry, options.groups, options.scenarios);
    }
  } catch (const std::invalid_argument& e) {
    log << "bench: " << e.what() << "\n";
    log << "known groups:";
    for (const std::string& g : registry.group_names()) log << " " << g;
    log << "\n";
    return 2;
  }
  if (selected.empty()) {
    log << "bench: nothing selected (use --group or --scenario; "
           "--group all runs everything)\n";
    return 2;
  }

  if (options.list_only) {
    Table t({"scenario", "groups", "description"});
    for (const Scenario* s : selected) {
      std::string groups;
      for (const std::string& g : s->groups) {
        if (!groups.empty()) groups += ",";
        groups += g;
      }
      t.row().cell(s->name).cell(groups).cell(s->description);
    }
    t.print(log);
    return 0;
  }

  std::vector<BenchResult> results;
  results.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    results.push_back(
        run_one(*selected[i], options.context, log, i, selected.size()));
  }

  Table t({"scenario", "algo", "n", "m", "seconds", "rounds", "iters",
           "maxwords/mach", "quality", "vs_baseline", "hash", "ok"});
  bool any_failed = false;
  for (const BenchResult& r : results) {
    any_failed = any_failed || r.failed;
    t.row()
        .cell(r.name)
        .cell(r.algo)
        .cell(r.n)
        .cell(r.m)
        .cell(r.wall_seconds, 3)
        .cell(r.rounds)
        .cell(r.iterations)
        .cell(r.max_machine_words)
        .cell(r.quality, 1)
        .cell(r.quality_vs_baseline, 3)
        .cell(hash_to_hex(r.determinism_hash))
        .cell(r.failed ? "FAILED" : "yes");
  }
  log << "\n";
  t.print(log);

  if (!options.out_path.empty()) {
    BenchFile f;
    f.results = std::move(results);
    write_bench_file(f, options.out_path);
    log << "\n[results written: " << options.out_path << " (schema v"
        << kBenchSchemaVersion << ", " << f.results.size()
        << " scenarios)]\n";
  }
  return any_failed ? 1 : 0;
}

}  // namespace mrlr::bench
