#include "mrlr/bench/instances.hpp"

#include "mrlr/util/rng.hpp"

namespace mrlr::bench {

core::MrParams scenario_params(double mu, std::uint64_t seed,
                               std::uint64_t threads) {
  core::MrParams p;
  p.mu = mu;
  p.seed = seed;
  p.max_iterations = 20000;
  p.num_threads = threads;
  return p;
}

graph::Graph weighted_gnm(std::uint64_t n, double c, graph::WeightDist dist,
                          std::uint64_t seed) {
  Rng rng(seed);
  graph::Graph g = graph::gnm_density(n, c, rng);
  return g.with_weights(graph::random_edge_weights(g, dist, rng));
}

}  // namespace mrlr::bench
