#pragma once
// Versioned result schema for the unified bench harness.
//
// One BenchResult per scenario run; a BenchFile is what `mrlr_cli bench
// --out` writes and what tools/bench_diff consumes. The schema carries
// an explicit schema_version so a comparator never silently diffs
// incompatible files.
//
// Field semantics (the diff policy in diff.hpp keys off these):
//   * wall_seconds            — timing; compared with a ratio threshold;
//   * rounds/iterations/max_machine_words/max_central_inbox/
//     shuffle_words/quality/quality_vs_baseline/determinism_hash/failed
//                             — deterministic given the scenario's fixed
//                               seed; compared exactly;
//   * extra                   — informational only (derived rates,
//                               bounds, telemetry per-phase totals);
//                               never compared;
//   * manifest                — run provenance strings (build type,
//                               git describe, backend knobs); never
//                               compared, omitted from JSON when empty
//                               (older files parse unchanged).
//
// determinism_hash is serialized as a hex string ("0x..."), not a JSON
// number: 64-bit hashes do not survive a double round-trip.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mrlr/bench/json.hpp"

namespace mrlr::bench {

inline constexpr std::uint64_t kBenchSchemaVersion = 1;

/// Order- and length-sensitive 64-bit mixer (splitmix64 core) used to
/// fingerprint solutions: equal streams of mixed values give equal
/// hashes, and any single-word difference changes the result.
class HashAcc {
 public:
  void mix(std::uint64_t x);
  void mix(double d);
  void mix(const std::string& s);

  template <typename Range>
  void mix_range(const Range& r) {
    std::uint64_t count = 0;
    for (const auto& v : r) {
      mix(static_cast<std::uint64_t>(v));
      ++count;
    }
    mix(count);
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x9E3779B97F4A7C15ull;
};

struct BenchResult {
  std::string name;    ///< scenario name (registry key)
  std::string algo;    ///< algorithm label, e.g. "rlr-mwm"
  std::string family;  ///< instance family, e.g. "gnm-density"
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  double mu = 0.0;
  double c = 0.0;
  std::uint64_t threads = 1;
  std::string format;  ///< on-disk format for io scenarios, else ""

  double wall_seconds = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t iterations = 0;
  std::uint64_t max_machine_words = 0;
  std::uint64_t max_central_inbox = 0;
  std::uint64_t shuffle_words = 0;  ///< total words shuffled (engine accounting)
  double quality = 0.0;             ///< solution value (weight, |S|, colours)
  double quality_vs_baseline = 0.0; ///< ratio vs sequential reference (0 = n/a)
  std::uint64_t determinism_hash = 0;
  bool failed = false;  ///< algorithm failed, invalid solution, or violation

  /// Scenario-specific metrics; informational, never diffed.
  std::map<std::string, double> extra;

  /// Run provenance (bench/manifest.hpp); informational, never diffed.
  std::map<std::string, std::string> manifest;
};

struct BenchFile {
  std::uint64_t schema_version = kBenchSchemaVersion;
  std::string tool = "mrlr_cli bench";
  std::vector<BenchResult> results;
};

Json to_json(const BenchResult& r);
Json to_json(const BenchFile& f);

/// Throw JsonError on structural problems; bench_file_from_json also
/// rejects a schema_version it does not understand.
BenchResult bench_result_from_json(const Json& j);
BenchFile bench_file_from_json(const Json& j);

/// File convenience wrappers. read_bench_file throws JsonError on parse
/// or schema problems and std::runtime_error on I/O failure.
void write_bench_file(const BenchFile& f, const std::string& path);
BenchFile read_bench_file(const std::string& path);

std::string hash_to_hex(std::uint64_t h);
std::uint64_t hash_from_hex(const std::string& s);  ///< throws JsonError

}  // namespace mrlr::bench
