#include "mrlr/bench/manifest.hpp"

namespace mrlr::bench {

std::map<std::string, std::string> run_manifest(const RunContext& ctx) {
  std::map<std::string, std::string> m;
#ifdef MRLR_BUILD_TYPE
  m["build_type"] = MRLR_BUILD_TYPE;
#else
  m["build_type"] = "unknown";
#endif
#ifdef MRLR_GIT_DESCRIBE
  m["git_describe"] = MRLR_GIT_DESCRIBE;
#else
  m["git_describe"] = "unknown";
#endif
  m["backend"] = ctx.process_backend ? "process"
                 : ctx.threads == 1  ? "serial"
                                     : "threads";
  m["threads"] = std::to_string(ctx.threads);
  m["shards"] = std::to_string(ctx.shards);
  m["n_override"] = std::to_string(ctx.n_override);
  // Scenarios pin their own seeds (that is what makes baselines
  // diffable); record the policy rather than a number.
  m["seed"] = "scenario-pinned";
  return m;
}

}  // namespace mrlr::bench
