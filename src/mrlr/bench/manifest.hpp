#pragma once
// Run manifest: the build/session facts stamped into every BenchResult
// so nightly artifacts are self-describing — which binary (build type,
// git describe), which knobs (backend, threads, shards, n override),
// and the seed policy. Manifest keys are provenance, not metrics:
// bench_diff never compares them (a baseline recorded by one build must
// diff cleanly against a run from another).

#include <map>
#include <string>

#include "mrlr/bench/registry.hpp"

namespace mrlr::bench {

/// The manifest for one run context. build_type and git_describe come
/// from compile definitions captured at configure time (MRLR_BUILD_TYPE
/// / MRLR_GIT_DESCRIBE; "unknown" when the build system did not provide
/// them — e.g. a stale configure or a non-git checkout).
std::map<std::string, std::string> run_manifest(const RunContext& ctx);

}  // namespace mrlr::bench
