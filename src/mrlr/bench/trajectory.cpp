#include "mrlr/bench/trajectory.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "mrlr/bench/emit.hpp"

namespace mrlr::bench {

namespace {

std::string base_label(const std::string& path) {
  const auto slash = path.find_last_of("/\\");
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() > 5 && name.substr(name.size() - 5) == ".json") {
    name.resize(name.size() - 5);
  }
  return name;
}

/// Scenario lookup within one point (names are unique per file).
const BenchResult* find_result(const BenchFile& f, const std::string& name) {
  for (const BenchResult& r : f.results) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

struct Metric {
  const char* title;
  const char* unit;
  int precision;
  double (*get)(const BenchResult&);
};

constexpr Metric kMetrics[] = {
    {"Wall time", "seconds", 3,
     [](const BenchResult& r) { return r.wall_seconds; }},
    {"Rounds", "count", 0,
     [](const BenchResult& r) { return static_cast<double>(r.rounds); }},
    {"Max machine words", "words", 0,
     [](const BenchResult& r) {
       return static_cast<double>(r.max_machine_words);
     }},
    {"Shuffle words", "words", 0,
     [](const BenchResult& r) {
       return static_cast<double>(r.shuffle_words);
     }},
    {"Quality", "solution value", 2,
     [](const BenchResult& r) { return r.quality; }},
};

}  // namespace

std::vector<TrajectoryPoint> load_trajectory(
    const std::vector<std::string>& paths) {
  std::vector<TrajectoryPoint> series;
  series.reserve(paths.size());
  for (const std::string& path : paths) {
    series.push_back({base_label(path), read_bench_file(path)});
  }
  return series;
}

std::vector<std::string> trajectory_scenarios(
    const std::vector<TrajectoryPoint>& series) {
  std::vector<std::string> order;
  std::set<std::string> seen;
  for (const TrajectoryPoint& p : series) {
    for (const BenchResult& r : p.file.results) {
      if (seen.insert(r.name).second) order.push_back(r.name);
    }
  }
  return order;
}

void write_trajectory_csv(const std::vector<TrajectoryPoint>& series,
                          std::ostream& os) {
  os << "scenario,point,label,wall_seconds,rounds,iterations,"
        "max_machine_words,max_central_inbox,shuffle_words,quality,"
        "quality_vs_baseline,determinism_hash,failed\n";
  const auto scenarios = trajectory_scenarios(series);
  for (const std::string& name : scenarios) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      const BenchResult* r = find_result(series[i].file, name);
      if (r == nullptr) continue;  // gap: scenario not in this point
      os << csv_escape(name) << "," << i << ","
         << csv_escape(series[i].label) << ","
         << fmt_double(r->wall_seconds, 6) << "," << r->rounds << ","
         << r->iterations << "," << r->max_machine_words << ","
         << r->max_central_inbox << "," << r->shuffle_words << ","
         << fmt_double(r->quality, 6) << ","
         << fmt_double(r->quality_vs_baseline, 6) << ","
         << hash_to_hex(r->determinism_hash) << ","
         << (r->failed ? 1 : 0) << "\n";
    }
  }
}

void write_trajectory_markdown(const std::vector<TrajectoryPoint>& series,
                               std::ostream& os) {
  const auto scenarios = trajectory_scenarios(series);
  os << "# Bench trajectory (" << series.size() << " points, "
     << scenarios.size() << " scenarios)\n";

  for (const Metric& metric : kMetrics) {
    os << "\n## " << metric.title << " (" << metric.unit << ")\n\n";
    os << "| scenario |";
    for (const TrajectoryPoint& p : series) os << " " << p.label << " |";
    os << " last/first |\n";
    os << "|---|";
    for (std::size_t i = 0; i < series.size(); ++i) os << "---|";
    os << "---|\n";
    for (const std::string& name : scenarios) {
      os << "| " << name << " |";
      double first = 0.0, last = 0.0;
      bool have_first = false, have_last = false;
      for (const TrajectoryPoint& p : series) {
        const BenchResult* r = find_result(p.file, name);
        if (r == nullptr) {
          os << " — |";
          continue;
        }
        const double v = metric.get(*r);
        if (!have_first) {
          first = v;
          have_first = true;
        }
        last = v;
        have_last = true;
        os << " " << fmt_double(v, metric.precision) << " |";
      }
      if (have_first && have_last && first != 0.0) {
        os << " " << fmt_double(last / first, 2) << " |\n";
      } else {
        os << " — |\n";
      }
    }
  }

  // Hash stability: a determinism hash that moves between consecutive
  // points means the scenario's results changed — either an intentional
  // baseline regeneration landed, or behaviour drifted silently.
  os << "\n## Determinism hash stability\n\n";
  bool any_change = false;
  for (const std::string& name : scenarios) {
    const BenchResult* prev = nullptr;
    std::string prev_label;
    for (const TrajectoryPoint& p : series) {
      const BenchResult* r = find_result(p.file, name);
      if (r == nullptr) continue;
      if (prev != nullptr &&
          prev->determinism_hash != r->determinism_hash) {
        os << "- `" << name << "`: " << hash_to_hex(prev->determinism_hash)
           << " (" << prev_label << ") -> "
           << hash_to_hex(r->determinism_hash) << " (" << p.label
           << ")\n";
        any_change = true;
      }
      prev = r;
      prev_label = p.label;
    }
  }
  if (!any_change) {
    os << "All scenario hashes stable across the series.\n";
  }
}

}  // namespace mrlr::bench
