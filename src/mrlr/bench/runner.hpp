#pragma once
// Drives a selected set of registry scenarios and writes the versioned
// result file. Shared between `mrlr_cli bench` and the thin wrapper
// bench binaries (which run a single group and re-render the results in
// their historical table formats).

#include <iosfwd>
#include <string>
#include <vector>

#include "mrlr/bench/registry.hpp"
#include "mrlr/bench/result.hpp"

namespace mrlr::bench {

struct RunOptions {
  std::vector<std::string> groups;
  std::vector<std::string> scenarios;
  std::string out_path;  ///< empty = no result file
  RunContext context;
  bool list_only = false;
};

/// Runs the scenarios selected by `options` against `registry`,
/// streaming one progress line per scenario to `log`, then prints a
/// summary table and (optionally) writes the result file.
///
/// Exit-code semantics (what mrlr_cli returns):
///   0 — every scenario ran and none reported failed;
///   1 — at least one scenario reported failed (invalid solution,
///       algorithm failure, or space violation);
///   2 — selection/usage errors (unknown group or scenario).
int run_bench(const Registry& registry, const RunOptions& options,
              std::ostream& log);

/// Runs one group and returns the results (wrapper-binary path; no
/// file, no summary — the wrapper renders its own table).
std::vector<BenchResult> run_group(const Registry& registry,
                                   const std::string& group,
                                   const RunContext& context,
                                   std::ostream& log);

}  // namespace mrlr::bench
