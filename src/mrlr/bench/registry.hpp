#pragma once
// Declarative scenario registry for the unified bench harness.
//
// A scenario is one fully pinned experiment configuration — algorithm x
// instance family x size x mu/c x threads x on-disk format — whose run
// function produces a single BenchResult with a fixed seed, so every
// non-timing field is reproducible and can be diffed exactly against a
// committed baseline.
//
// Scenarios are grouped by tags (paper-f1, rounds-vs-mu, space-vs-c,
// shuffle, io, threads, smoke); `mrlr_cli bench --group` and the thin
// bench wrapper binaries select by tag. Registration is explicit
// (register_builtin_scenarios), not static-initializer magic: mrlr is a
// static library and self-registering translation units would be
// silently dropped by the linker.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/bench/result.hpp"

namespace mrlr::bench {

struct RunContext {
  /// Execution backend threads for scenarios that honor the session
  /// knob (f1 scenarios); scenarios whose *subject* is the thread count
  /// pin their own value and ignore this.
  std::uint64_t threads = 1;

  /// `mrlr_cli bench --backend process [--shards K]`: scenarios whose
  /// driver is ported to the process-sharded backend (currently the
  /// rlr-matching family) run it with num_shards = shards; scenarios
  /// whose drivers are not yet process-clean keep their pinned
  /// in-process backend. Either way every non-timing result field must
  /// equal the committed baseline — that is the backend determinism
  /// contract the perf-smoke CI job checks.
  bool process_backend = false;
  std::uint64_t shards = 2;

  /// Instance-size override for the wrapper binaries' MRLR_BENCH_N
  /// back-compat knob. 0 = the scenario's pinned default, which is what
  /// `mrlr_cli bench` always uses so baselines stay comparable.
  std::uint64_t n_override = 0;

  std::uint64_t scale_n(std::uint64_t scenario_default) const {
    return n_override != 0 ? n_override : scenario_default;
  }
};

struct Scenario {
  std::string name;  ///< unique key, e.g. "f1/matching/n1000-c0.40-mu0.20"
  std::vector<std::string> groups;
  std::string description;
  std::function<BenchResult(const RunContext&)> run;
};

class Registry {
 public:
  /// Throws std::invalid_argument on a duplicate name.
  void add(Scenario s);

  const Scenario* find(std::string_view name) const;
  /// Members of a group in registration order ("all" selects everything).
  std::vector<const Scenario*> group(std::string_view g) const;
  const std::vector<Scenario>& all() const { return scenarios_; }
  /// Distinct group tags in first-seen order (plus the "all" pseudo-group).
  std::vector<std::string> group_names() const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Populates r with every built-in scenario (scenarios.cpp).
void register_builtin_scenarios(Registry& r);

/// The lazily built singleton registry holding the built-in scenarios.
const Registry& builtin_registry();

/// Union of the named groups and explicit scenario names, in registry
/// order, deduplicated. Throws std::invalid_argument on an unknown
/// group or scenario name.
std::vector<const Scenario*> select_scenarios(
    const Registry& r, const std::vector<std::string>& groups,
    const std::vector<std::string>& names);

}  // namespace mrlr::bench
