#pragma once
// Minimal JSON value type for the bench harness: enough to write the
// versioned result schema and to parse it back (bench_diff, tests).
// Strict by design — malformed input throws JsonError with a byte
// offset, it never yields a best-effort value. Objects preserve
// insertion order so emitted files are stable and diffable.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mrlr::bench {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, Json>>& fields() const;

  /// Object lookup: at() throws on a missing key, find() returns
  /// nullptr. Both throw if this value is not an object.
  const Json& at(std::string_view key) const;
  const Json* find(std::string_view key) const;

  /// Object/array builders. set() overwrites an existing key in place.
  Json& set(std::string key, Json value);
  Json& push(Json value);

  /// Serialize. indent = 0 emits one line; indent > 0 pretty-prints.
  /// Numbers round-trip doubles exactly (%.17g shortened).
  std::string dump(int indent = 0) const;

  /// Strict parser for one JSON document (trailing garbage rejected).
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace mrlr::bench
