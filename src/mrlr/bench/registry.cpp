#include "mrlr/bench/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace mrlr::bench {

void Registry::add(Scenario s) {
  if (find(s.name) != nullptr) {
    throw std::invalid_argument("duplicate scenario name: " + s.name);
  }
  if (!s.run) {
    throw std::invalid_argument("scenario without run function: " + s.name);
  }
  scenarios_.push_back(std::move(s));
}

const Scenario* Registry::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Scenario*> Registry::group(std::string_view g) const {
  std::vector<const Scenario*> out;
  for (const Scenario& s : scenarios_) {
    if (g == "all" ||
        std::find(s.groups.begin(), s.groups.end(), g) != s.groups.end()) {
      out.push_back(&s);
    }
  }
  return out;
}

std::vector<std::string> Registry::group_names() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Scenario& s : scenarios_) {
    for (const std::string& g : s.groups) {
      if (seen.insert(g).second) out.push_back(g);
    }
  }
  out.push_back("all");
  return out;
}

const Registry& builtin_registry() {
  static const Registry registry = [] {
    Registry r;
    register_builtin_scenarios(r);
    return r;
  }();
  return registry;
}

std::vector<const Scenario*> select_scenarios(
    const Registry& r, const std::vector<std::string>& groups,
    const std::vector<std::string>& names) {
  std::unordered_set<const Scenario*> wanted;
  for (const std::string& g : groups) {
    const auto members = r.group(g);
    if (members.empty()) {
      throw std::invalid_argument("unknown or empty bench group: " + g);
    }
    wanted.insert(members.begin(), members.end());
  }
  for (const std::string& name : names) {
    const Scenario* s = r.find(name);
    if (s == nullptr) {
      throw std::invalid_argument("unknown scenario: " + name);
    }
    wanted.insert(s);
  }
  std::vector<const Scenario*> out;
  for (const Scenario& s : r.all()) {
    if (wanted.count(&s) != 0) out.push_back(&s);
  }
  return out;
}

}  // namespace mrlr::bench
