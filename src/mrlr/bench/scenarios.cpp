// Built-in scenario definitions: the port of the old standalone bench
// binaries (bench_f1_* x8, bench_rounds_scaling, bench_space_scaling,
// bench_quality) onto the declarative registry, plus the engine-level
// shuffle / io / thread-scaling scenarios backing the thin wrapper
// binaries.
//
// Every scenario pins its instance seed, so all non-timing fields
// (rounds, space, quality, determinism hash) are exactly reproducible
// and diffable against bench/baseline.json. Groups:
//   paper-f1     — Figure 1 rows: solution quality vs a sequential
//                  reference plus the round/space cost columns;
//   rounds-vs-mu — round-scaling curves (Thm 2.3/5.5 bound, Alg 2 vs 6,
//                  the mu = 0 log-n regime);
//   space-vs-c   — space tracking n^{1+mu} (not m) and the broadcast
//                  tree ablation;
//   shuffle      — flat-arena vs legacy message path throughput;
//   io           — text vs .mgb ingestion throughput;
//   threads      — executor backend scaling (determinism across 1/2/8);
//   smoke        — the fast subset CI diffs against the baseline.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "mrlr/bench/instances.hpp"
#include "mrlr/bench/registry.hpp"

#include "mrlr/baselines/coreset_matching.hpp"
#include "mrlr/baselines/filtering_matching.hpp"
#include "mrlr/baselines/luby_colouring_mr.hpp"
#include "mrlr/baselines/luby_mr.hpp"
#include "mrlr/baselines/sample_prune_setcover.hpp"
#include "mrlr/core/colouring.hpp"
#include "mrlr/core/greedy_setcover_mr.hpp"
#include "mrlr/core/hungry_clique.hpp"
#include "mrlr/core/hungry_mis.hpp"
#include "mrlr/core/rlr_bmatching.hpp"
#include "mrlr/core/rlr_matching.hpp"
#include "mrlr/core/rlr_setcover.hpp"
#include "mrlr/graph/io.hpp"
#include "mrlr/graph/validate.hpp"
#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/mrc/engine.hpp"
#include "mrlr/seq/clique.hpp"
#include "mrlr/seq/colouring.hpp"
#include "mrlr/seq/greedy_matching.hpp"
#include "mrlr/seq/greedy_setcover.hpp"
#include "mrlr/seq/local_ratio_matching.hpp"
#include "mrlr/seq/local_ratio_setcover.hpp"
#include "mrlr/seq/mis.hpp"
#include "mrlr/exec/worker_launcher.hpp"
#include "mrlr/jobs/job_result.hpp"
#include "mrlr/jobs/job_spec.hpp"
#include "mrlr/jobs/worker.hpp"
#include "mrlr/serve/client.hpp"
#include "mrlr/serve/protocol.hpp"
#include "mrlr/serve/server.hpp"
#include "mrlr/seq/misra_gries.hpp"
#include "mrlr/setcover/generators.hpp"
#include "mrlr/setcover/validate.hpp"
#include "mrlr/util/math.hpp"

namespace mrlr::bench {
namespace {

using graph::WeightDist;

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }
};

std::string f2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Rate denominators: the schema rejects non-finite metrics, so a
/// wall time that quantizes to zero must not turn into an inf rate.
double per_second(double count, double seconds) {
  return count / std::max(seconds, 1e-12);
}

void fill_outcome(BenchResult& r, const core::MrOutcome& o) {
  r.rounds = o.rounds;
  r.iterations = o.iterations;
  r.max_machine_words = o.max_machine_words;
  r.max_central_inbox = o.max_central_inbox;
  r.shuffle_words = o.total_communication;
  r.failed = r.failed || o.failed || o.space_violations > 0;
}

/// scenario_params plus the session's backend request. Every driver
/// honors MrParams::num_shards (all are process-clean); under
/// --backend process the scenario runs K persistent worker shards and
/// must still reproduce the baseline bit-for-bit.
core::MrParams exec_params(double mu, std::uint64_t seed,
                           const RunContext& ctx) {
  core::MrParams p =
      scenario_params(mu, seed, ctx.process_backend ? 1 : ctx.threads);
  if (ctx.process_backend) p.num_shards = std::max<std::uint64_t>(2, ctx.shards);
  return p;
}

/// The thread count a scenario using exec_params actually runs at —
/// recorded in the result so the emitted metadata never misreports the
/// configuration under --backend process (which pins one thread).
std::uint64_t exec_threads(const RunContext& ctx) {
  return ctx.process_backend ? 1 : ctx.threads;
}

// ------------------------------------------------------ paper-f1 ----

// Figure 1 row: max weight matching (Theorem 5.6; mu = 0 is the
// Appendix C regime). Baseline: sequential local ratio (same ratio-2
// guarantee), as in the old bench_f1_matching.
void add_f1_matching(Registry& r) {
  struct Cfg {
    std::uint64_t n;
    double c, mu;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{1000, 0.4, 0.2, {"paper-f1", "smoke"}},
           Cfg{1000, 0.4, 0.0, {"paper-f1"}},
           Cfg{4000, 0.5, 0.25, {"paper-f1"}},
       }) {
    r.add({"f1/matching/n" + std::to_string(cfg.n) + "-c" + f2(cfg.c) +
               "-mu" + f2(cfg.mu),
           cfg.groups,
           "rlr matching (Alg 4 / App C) vs sequential local ratio",
           [cfg](const RunContext& ctx) {
             BenchResult res;
             res.algo = cfg.mu == 0.0 ? "rlr-mwm-mu0" : "rlr-mwm";
             res.family = "gnm-density";
             res.n = cfg.n;
             res.c = cfg.c;
             res.mu = cfg.mu;
             res.threads = exec_threads(ctx);
             const graph::Graph g = weighted_gnm(
                 cfg.n, cfg.c, WeightDist::kUniform, cfg.n + 17);
             res.m = g.num_edges();
             const auto sq = seq::local_ratio_matching(g);
             Timer t;
             const auto out =
                 core::rlr_matching(g, exec_params(cfg.mu, 1, ctx));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.quality_vs_baseline =
                 sq.weight > 0 ? out.weight / sq.weight : 0.0;
             res.failed = res.failed || !graph::is_matching(g, out.matching);
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.weight);
             res.determinism_hash = h.value();
             res.extra["stack_size"] =
                 static_cast<double>(out.stack_size);
             return res;
           }});
  }
}

// Figure 1 row: weighted vertex cover (Theorem 2.4, f = 2). Quality is
// certified against the local ratio lower bound; the sequential local
// ratio on the equivalent set system is the quality baseline.
void add_f1_vertex_cover(Registry& r) {
  struct Cfg {
    std::uint64_t n;
    double c, mu;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{1000, 0.4, 0.2, {"paper-f1", "smoke"}},
           Cfg{4000, 0.5, 0.25, {"paper-f1"}},
       }) {
    r.add({"f1/vertex-cover/n" + std::to_string(cfg.n) + "-c" + f2(cfg.c) +
               "-mu" + f2(cfg.mu),
           cfg.groups,
           "rlr vertex cover (Thm 2.4) vs sequential local ratio",
           [cfg](const RunContext& ctx) {
             BenchResult res;
             res.algo = "rlr-vc";
             res.family = "gnm-density";
             res.n = cfg.n;
             res.c = cfg.c;
             res.mu = cfg.mu;
             res.threads = ctx.threads;
             Rng rng(7 * cfg.n + 41);
             const graph::Graph g = graph::gnm_density(cfg.n, cfg.c, rng);
             res.m = g.num_edges();
             const auto w = graph::random_vertex_weights(
                 cfg.n, WeightDist::kUniform, rng);
             const auto sys =
                 setcover::SetSystem::vertex_cover_instance(g, w);
             const auto sq = seq::local_ratio_set_cover(sys);
             Timer t;
             const auto out = core::rlr_vertex_cover(
                 g, w, scenario_params(cfg.mu, 1, ctx.threads));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.quality_vs_baseline =
                 sq.weight > 0 ? out.weight / sq.weight : 0.0;
             res.failed =
                 res.failed || !graph::is_vertex_cover(g, out.cover);
             HashAcc h;
             h.mix_range(out.cover);
             h.mix(out.weight);
             res.determinism_hash = h.value();
             res.extra["ratio_vs_lower_bound"] =
                 out.lower_bound > 0 ? out.weight / out.lower_bound : 0.0;
             return res;
           }});
  }
}

// Figure 1 row: weighted set cover with bounded frequency f
// (Theorem 2.4 general-f: ratio f, O((c/mu)^2) rounds).
void add_f1_setcover_f(Registry& r) {
  struct Cfg {
    std::uint64_t sets, universe, f;
    double mu;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{400, 4000, 3, 0.25, {"paper-f1", "smoke"}},
           Cfg{1000, 10000, 5, 0.25, {"paper-f1"}},
       }) {
    r.add({"f1/set-cover-f/s" + std::to_string(cfg.sets) + "-u" +
               std::to_string(cfg.universe) + "-f" + std::to_string(cfg.f) +
               "-mu" + f2(cfg.mu),
           cfg.groups,
           "rlr set cover (Alg 1) vs sequential local ratio",
           [cfg](const RunContext& ctx) {
             BenchResult res;
             res.algo = "rlr-sc";
             res.family = "bounded-frequency-f" + std::to_string(cfg.f);
             res.n = cfg.sets;
             res.m = cfg.universe;
             res.mu = cfg.mu;
             res.threads = ctx.threads;
             Rng rng(cfg.sets + cfg.universe + cfg.f);
             const auto sys = setcover::bounded_frequency(
                 cfg.sets, cfg.universe, cfg.f, WeightDist::kUniform, rng);
             const auto sq = seq::local_ratio_set_cover(sys);
             Timer t;
             const auto out = core::rlr_set_cover(
                 sys, scenario_params(cfg.mu, 1, ctx.threads));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.quality_vs_baseline =
                 sq.weight > 0 ? out.weight / sq.weight : 0.0;
             res.failed =
                 res.failed || !setcover::is_cover(sys, out.cover);
             HashAcc h;
             h.mix_range(out.cover);
             h.mix(out.weight);
             res.determinism_hash = h.value();
             res.extra["ratio_vs_lower_bound"] =
                 out.lower_bound > 0 ? out.weight / out.lower_bound : 0.0;
             return res;
           }});
  }
}

// Figure 1 row: weighted set cover via hungry greedy (Theorem 4.6,
// the m << n regime). Baseline: exact sequential greedy.
void add_f1_setcover_greedy(Registry& r) {
  struct Cfg {
    std::uint64_t sets, universe;
    double eps, mu;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{400, 200, 0.2, 0.4, {"paper-f1", "smoke"}},
           Cfg{1200, 400, 0.1, 0.4, {"paper-f1"}},
       }) {
    r.add({"f1/set-cover-greedy/s" + std::to_string(cfg.sets) + "-u" +
               std::to_string(cfg.universe) + "-eps" + f2(cfg.eps),
           cfg.groups,
           "greedy set cover MR (Alg 3) vs exact sequential greedy",
           [cfg](const RunContext& ctx) {
             BenchResult res;
             res.algo = "greedy-sc-mr";
             res.family = "many-sets";
             res.n = cfg.sets;
             res.m = cfg.universe;
             res.mu = cfg.mu;
             res.threads = ctx.threads;
             Rng rng(cfg.sets + cfg.universe);
             const auto sys = setcover::many_sets(
                 cfg.sets, cfg.universe, 12, WeightDist::kUniform, rng);
             const auto sq = seq::greedy_set_cover(sys);
             Timer t;
             const auto out = core::greedy_set_cover_mr(
                 sys, cfg.eps, scenario_params(cfg.mu, 1, ctx.threads));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.quality_vs_baseline =
                 sq.weight > 0 ? out.weight / sq.weight : 0.0;
             res.failed =
                 res.failed || !setcover::is_cover(sys, out.cover);
             HashAcc h;
             h.mix_range(out.cover);
             h.mix(out.weight);
             res.determinism_hash = h.value();
             res.extra["level_drops"] =
                 static_cast<double>(out.level_drops);
             res.extra["eps"] = cfg.eps;
             return res;
           }});
  }
}

// Figure 1 row: max weight b-matching (Theorem D.3). Baseline:
// weight-sorted sequential greedy b-matching.
void add_f1_bmatching(Registry& r) {
  struct Cfg {
    std::uint64_t n;
    std::uint32_t b;
    double eps;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{800, 2, 0.1, {"paper-f1", "smoke"}},
           Cfg{2000, 3, 0.5, {"paper-f1"}},
       }) {
    r.add({"f1/b-matching/n" + std::to_string(cfg.n) + "-b" +
               std::to_string(cfg.b) + "-eps" + f2(cfg.eps),
           cfg.groups,
           "rlr b-matching (Alg 7) vs sequential sorted greedy",
           [cfg](const RunContext& ctx) {
             BenchResult res;
             res.algo = "rlr-bm";
             res.family = "gnm-density";
             res.n = cfg.n;
             res.c = 0.45;
             res.mu = 0.25;
             res.threads = ctx.threads;
             const graph::Graph g = weighted_gnm(
                 cfg.n, 0.45, WeightDist::kUniform, cfg.n + cfg.b);
             res.m = g.num_edges();
             const std::vector<std::uint32_t> b(cfg.n, cfg.b);
             const auto greedy = seq::greedy_b_matching(g, b);
             Timer t;
             const auto out = core::rlr_b_matching(
                 g, b, cfg.eps, scenario_params(0.25, 1, ctx.threads));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.quality_vs_baseline =
                 greedy.weight > 0 ? out.weight / greedy.weight : 0.0;
             res.failed =
                 res.failed || !graph::is_b_matching(g, out.matching, b);
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.weight);
             res.determinism_hash = h.value();
             res.extra["eps"] = cfg.eps;
             res.extra["ratio_bound"] =
                 3.0 - 2.0 / std::max(2.0, double(cfg.b)) + 2.0 * cfg.eps;
             return res;
           }});
  }
}

// Figure 1 rows: MIS via hungry greedy, Alg 2 (O(1/mu^2)) and Alg 6
// (O(c/mu)), plus the Luby-MR PRAM baseline. Quality baseline:
// sequential Luby MIS size (same maximality guarantee).
void add_f1_mis(Registry& r) {
  struct Cfg {
    const char* variant;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{"simple", {"paper-f1", "smoke"}},
           Cfg{"improved", {"paper-f1", "smoke"}},
           Cfg{"luby", {"paper-f1"}},
       }) {
    const std::string variant = cfg.variant;
    r.add({"f1/mis-" + variant + "/n1000-c0.40-mu0.25",
           cfg.groups,
           "maximal independent set (" + variant + ") vs sequential Luby",
           [variant](const RunContext& ctx) {
             const std::uint64_t n = 1000;
             const double c = 0.4, mu = 0.25;
             BenchResult res;
             res.algo = "mis-" + variant;
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = ctx.threads;
             Rng rng(n + 40);
             const graph::Graph g = graph::gnm_density(n, c, rng);
             res.m = g.num_edges();
             Rng seq_rng(99);
             const auto sq = seq::luby_mis(g, seq_rng);
             Timer t;
             std::vector<graph::VertexId> mis;
             if (variant == "simple") {
               auto out = core::hungry_mis_simple(
                   g, scenario_params(mu, 1, ctx.threads));
               res.wall_seconds = t.elapsed();
               fill_outcome(res, out.outcome);
               mis = std::move(out.independent_set);
             } else if (variant == "improved") {
               auto out = core::hungry_mis_improved(
                   g, scenario_params(mu, 1, ctx.threads));
               res.wall_seconds = t.elapsed();
               fill_outcome(res, out.outcome);
               mis = std::move(out.independent_set);
             } else {
               auto out = baselines::luby_mis_mr(
                   g, scenario_params(mu, 2, ctx.threads));
               res.wall_seconds = t.elapsed();
               fill_outcome(res, out.outcome);
               mis = std::move(out.independent_set);
             }
             res.quality = static_cast<double>(mis.size());
             res.quality_vs_baseline =
                 sq.independent_set.empty()
                     ? 0.0
                     : res.quality /
                           static_cast<double>(sq.independent_set.size());
             res.failed = res.failed ||
                          !graph::is_maximal_independent_set(g, mis);
             HashAcc h;
             h.mix_range(mis);
             res.determinism_hash = h.value();
             return res;
           }});
  }
}

// Figure 1 row: maximal clique (Corollary B.1) via the complement
// relabelling scheme. Baseline: sequential greedy clique size.
void add_f1_clique(Registry& r) {
  struct Cfg {
    std::uint64_t n;
    double c, mu;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{500, 0.4, 0.3, {"paper-f1", "smoke"}},
           Cfg{1500, 0.5, 0.25, {"paper-f1"}},
       }) {
    r.add({"f1/clique/n" + std::to_string(cfg.n) + "-c" + f2(cfg.c) +
               "-mu" + f2(cfg.mu),
           cfg.groups,
           "hungry clique (App B) vs sequential greedy clique",
           [cfg](const RunContext& ctx) {
             BenchResult res;
             res.algo = "hungry-clique";
             res.family = "planted-clique";
             res.n = cfg.n;
             res.c = cfg.c;
             res.mu = cfg.mu;
             res.threads = ctx.threads;
             Rng rng(cfg.n * 3 + 5);
             const graph::Graph g = graph::planted_clique(
                 cfg.n, ipow_real(cfg.n, 1.0 + cfg.c), cfg.n / 20, rng);
             res.m = g.num_edges();
             const auto sq = seq::greedy_clique(g);
             Timer t;
             const auto out = core::hungry_clique(
                 g, scenario_params(cfg.mu, 1, ctx.threads));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = static_cast<double>(out.clique.size());
             res.quality_vs_baseline =
                 sq.empty() ? 0.0
                            : res.quality / static_cast<double>(sq.size());
             res.failed =
                 res.failed || !graph::is_maximal_clique(g, out.clique);
             HashAcc h;
             h.mix_range(out.clique);
             res.determinism_hash = h.value();
             return res;
           }});
  }
}

// Figure 1 rows: (1+o(1))*Delta vertex / edge colouring (Thm 6.4/6.6).
// Baselines: greedy (Delta+1) for vertices, Misra-Gries (Delta+1) for
// edges — colour-count ratios, lower is better.
void add_f1_colouring(Registry& r) {
  struct Cfg {
    const char* kind;
    std::uint64_t n;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{"vertex", 1000, {"paper-f1", "smoke"}},
           Cfg{"edge", 1000, {"paper-f1"}},
           Cfg{"vertex", 4000, {"paper-f1"}},
       }) {
    const std::string kind = cfg.kind;
    const std::uint64_t n = cfg.n;
    r.add({"f1/colour-" + kind + "/n" + std::to_string(n) +
               "-c0.40-mu0.20",
           cfg.groups,
           "mr " + kind + " colouring (Thm 6.4/6.6) vs Delta+1 baseline",
           [kind, n](const RunContext& ctx) {
             const double c = 0.4, mu = 0.2;
             BenchResult res;
             res.algo = "mr-colour-" + kind;
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = ctx.threads;
             Rng rng(n + 12);
             const graph::Graph g = graph::gnm_density(n, c, rng);
             res.m = g.num_edges();
             Timer t;
             const auto out =
                 kind == "vertex"
                     ? core::mr_vertex_colouring(
                           g, scenario_params(mu, 1, ctx.threads))
                     : core::mr_edge_colouring(
                           g, scenario_params(mu, 1, ctx.threads));
             res.wall_seconds = t.elapsed();
             res.failed = out.failed;
             fill_outcome(res, out.outcome);
             const std::uint64_t base_colours =
                 kind == "vertex"
                     ? graph::num_colours(seq::greedy_colouring(g))
                     : graph::num_colours(
                           seq::misra_gries_edge_colouring(g));
             res.quality = static_cast<double>(out.colours_used);
             res.quality_vs_baseline =
                 base_colours > 0
                     ? res.quality / static_cast<double>(base_colours)
                     : 0.0;
             const bool proper =
                 kind == "vertex"
                     ? graph::is_proper_vertex_colouring(g, out.colour)
                     : graph::is_proper_edge_colouring(g, out.colour);
             res.failed = res.failed || !proper;
             HashAcc h;
             h.mix_range(out.colour);
             h.mix(out.colours_used);
             res.determinism_hash = h.value();
             res.extra["colours_over_delta"] =
                 g.max_degree() > 0
                     ? res.quality / static_cast<double>(g.max_degree())
                     : 0.0;
             res.extra["groups"] = static_cast<double>(out.groups);
             return res;
           }});
  }
}

// -------------------------------------------------- rounds-vs-mu ----

// FIG-R1: sampling iterations against the ceil(c/mu)+1 bound.
void add_rounds_scaling(Registry& r) {
  struct Cfg {
    double mu;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{0.05, {"rounds-vs-mu"}},
           Cfg{0.10, {"rounds-vs-mu"}},
           Cfg{0.20, {"rounds-vs-mu", "smoke"}},
       }) {
    r.add({"rounds/matching-cmu/mu" + f2(cfg.mu),
           cfg.groups,
           "rlr matching iterations vs the ceil(c/mu)+1 bound (Thm 5.5)",
           [cfg](const RunContext& ctx) {
             const std::uint64_t n = 2000;
             const double c = 0.4;
             BenchResult res;
             res.algo = "rlr-mwm";
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = cfg.mu;
             res.threads = exec_threads(ctx);
             const graph::Graph g =
                 weighted_gnm(n, c, WeightDist::kUniform, 31);
             res.m = g.num_edges();
             Timer t;
             const auto out =
                 core::rlr_matching(g, exec_params(cfg.mu, 1, ctx));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             const double bound = std::ceil(c / cfg.mu) + 1.0;
             res.extra["iteration_bound"] = bound;
             res.extra["within_bound"] =
                 static_cast<double>(out.outcome.iterations) <= bound ? 1.0
                                                                      : 0.0;
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.outcome.iterations);
             res.determinism_hash = h.value();
             return res;
           }});
  }

  r.add({"rounds/matching-mu0/n2000",
         {"rounds-vs-mu"},
         "mu = 0 matching: iterations ~ log n with O(n) space (App C)",
         [](const RunContext& ctx) {
           const std::uint64_t n = 2000;
           BenchResult res;
           res.algo = "rlr-mwm-mu0";
           res.family = "gnm-density";
           res.n = n;
           res.c = 0.45;
           res.mu = 0.0;
           res.threads = exec_threads(ctx);
           const graph::Graph g =
               weighted_gnm(n, 0.45, WeightDist::kUniform, 77);
           res.m = g.num_edges();
           Timer t;
           const auto out =
               core::rlr_matching(g, exec_params(0.0, 1, ctx));
           res.wall_seconds = t.elapsed();
           fill_outcome(res, out.outcome);
           res.quality = out.weight;
           res.extra["iters_per_log2_n"] =
               static_cast<double>(out.outcome.iterations) /
               std::log2(static_cast<double>(n));
           HashAcc h;
           h.mix_range(out.matching);
           h.mix(out.outcome.iterations);
           res.determinism_hash = h.value();
           return res;
         }});

  // FIG-R2: Alg 2 sweeps grow ~1/mu^2 while Alg 6 grows ~c/mu.
  for (const char* variant : {"simple", "improved"}) {
    for (const double mu : {0.1, 0.3}) {
      const std::string v = variant;
      r.add({"rounds/mis-" + v + "/mu" + f2(mu),
             {"rounds-vs-mu"},
             "hungry MIS sweep count (Alg 2 ~1/mu^2 vs Alg 6 ~c/mu)",
             [v, mu](const RunContext& ctx) {
               const std::uint64_t n = 2000;
               const double c = 0.4;
               BenchResult res;
               res.algo = "mis-" + v;
               res.family = "gnm-density";
               res.n = n;
               res.c = c;
               res.mu = mu;
               res.threads = ctx.threads;
               Rng rng(n + 40);
               const graph::Graph g = graph::gnm_density(n, c, rng);
               res.m = g.num_edges();
               Timer t;
               const auto out =
                   v == "simple"
                       ? core::hungry_mis_simple(
                             g, scenario_params(mu, 1, ctx.threads))
                       : core::hungry_mis_improved(
                             g, scenario_params(mu, 1, ctx.threads));
               res.wall_seconds = t.elapsed();
               fill_outcome(res, out.outcome);
               res.quality =
                   static_cast<double>(out.independent_set.size());
               res.failed = res.failed ||
                            !graph::is_maximal_independent_set(
                                g, out.independent_set);
               HashAcc h;
               h.mix_range(out.independent_set);
               h.mix(out.outcome.iterations);
               res.determinism_hash = h.value();
               return res;
             }});
    }
  }
}

// --------------------------------------------------- space-vs-c ----

// FIG-S1: max words per machine tracks n^{1+mu}, not the input m.
void add_space_scaling(Registry& r) {
  struct Cfg {
    const char* algo;
    double c;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{"matching", 0.3, {"space-vs-c"}},
           Cfg{"matching", 0.5, {"space-vs-c", "smoke"}},
           Cfg{"vertex-cover", 0.3, {"space-vs-c"}},
           Cfg{"vertex-cover", 0.5, {"space-vs-c"}},
       }) {
    const std::string algo = cfg.algo;
    const double c = cfg.c;
    r.add({"space/" + algo + "/c" + f2(c),
           cfg.groups,
           "max machine words vs n^{1+mu} while input is n^{1+c}",
           [algo, c](const RunContext& ctx) {
             const std::uint64_t n = 2000;
             const double mu = 0.2;
             BenchResult res;
             res.algo = "rlr-" + algo;
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             // Only the matching branch honors the process backend.
             res.threads =
                 algo == "matching" ? exec_threads(ctx) : ctx.threads;
             const std::uint64_t eta = ipow_real(n, 1.0 + mu);
             Timer t;
             if (algo == "matching") {
               const graph::Graph g =
                   weighted_gnm(n, c, WeightDist::kUniform, 13);
               res.m = g.num_edges();
               const auto out =
                   core::rlr_matching(g, exec_params(mu, 1, ctx));
               res.wall_seconds = t.elapsed();
               fill_outcome(res, out.outcome);
               res.quality = out.weight;
               HashAcc h;
               h.mix_range(out.matching);
               h.mix(out.weight);
               res.determinism_hash = h.value();
             } else {
               Rng rng(n + 21);
               const graph::Graph g = graph::gnm_density(n, c, rng);
               res.m = g.num_edges();
               const auto w = graph::random_vertex_weights(
                   n, WeightDist::kUniform, rng);
               const auto out = core::rlr_vertex_cover(
                   g, w, scenario_params(mu, 1, ctx.threads));
               res.wall_seconds = t.elapsed();
               fill_outcome(res, out.outcome);
               res.quality = out.weight;
               HashAcc h;
               h.mix_range(out.cover);
               h.mix(out.weight);
               res.determinism_hash = h.value();
             }
             res.extra["eta"] = static_cast<double>(eta);
             res.extra["space_over_eta"] =
                 static_cast<double>(res.max_machine_words) /
                 static_cast<double>(eta);
             return res;
           }});
  }

  // FIG-S2: fanout-tree broadcast vs the flat-broadcast outbox blowup.
  struct BCfg {
    std::uint64_t machines, fanout;
    std::vector<std::string> groups;
  };
  for (const BCfg& cfg : {
           BCfg{64, 2, {"space-vs-c"}},
           BCfg{64, 8, {"space-vs-c", "smoke"}},
           BCfg{256, 8, {"space-vs-c"}},
       }) {
    r.add({"space/broadcast-tree/m" + std::to_string(cfg.machines) + "-f" +
               std::to_string(cfg.fanout),
           cfg.groups,
           "broadcast tree max outbox = fanout * payload regardless of M",
           [cfg](const RunContext&) {
             const std::uint64_t payload = 1000;
             BenchResult res;
             res.algo = "broadcast-tree";
             res.family = "engine";
             res.n = cfg.machines;
             res.m = payload;
             res.threads = 1;
             mrc::Topology topo;
             topo.num_machines = cfg.machines;
             topo.words_per_machine = 32 * payload;
             topo.fanout = cfg.fanout;
             topo.enforce = false;
             Timer t;
             mrc::Engine engine(topo);
             const std::vector<mrc::Word> data(payload, 1);
             const auto rounds =
                 mrc::broadcast_from_central(engine, data, "bench");
             res.wall_seconds = t.elapsed();
             res.rounds = engine.metrics().rounds();
             res.max_machine_words = engine.metrics().max_machine_words();
             res.max_central_inbox = engine.metrics().max_central_inbox();
             res.shuffle_words = engine.metrics().total_communication();
             std::uint64_t max_out = 0;
             for (const auto& rm : engine.metrics().per_round()) {
               max_out = std::max(max_out, rm.max_outbox);
             }
             res.quality = static_cast<double>(max_out);
             res.extra["tree_rounds"] = static_cast<double>(rounds);
             res.extra["fanout"] = static_cast<double>(cfg.fanout);
             res.extra["flat_outbox"] =
                 static_cast<double>(payload * (cfg.machines - 1));
             HashAcc h;
             h.mix(rounds);
             h.mix(max_out);
             h.mix(res.shuffle_words);
             res.determinism_hash = h.value();
             return res;
           }});
  }
}

// ------------------------------------------------------- shuffle ----

enum class ShufflePath { kLegacy, kArena };
enum class ShufflePattern { kTiny, kBatched };

struct ShuffleStats {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t checksum = 0;
  std::uint64_t total_sent = 0;
};

/// The PR 2 shuffle workload: tiny per-incidence messages (per-message
/// overhead) and one batched message per vertex (per-word throughput),
/// on rlr_matching's machine layout. Receivers consume every word, so
/// both encode and decode sides are timed.
ShuffleStats run_shuffle(const graph::Graph& g, std::uint64_t machines,
                         ShufflePattern pattern, ShufflePath path,
                         std::uint64_t rounds) {
  mrc::Topology topo;
  topo.num_machines = machines;
  topo.words_per_machine = 1ull << 40;  // throughput bench: never violates
  topo.fanout = 2;
  mrc::Engine engine(topo);
  const std::uint64_t n = g.num_vertices();
  ShuffleStats s;
  std::vector<std::uint64_t> sums(machines, 0);

  const auto drain = [&](mrc::MachineContext& ctx) {
    if (path == ShufflePath::kArena) {
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const mrc::Word w : msg.payload) sums[ctx.id()] += w;
      }
    } else {
      for (const mrc::Message& msg : ctx.inbox()) {
        for (const mrc::Word w : msg.payload) sums[ctx.id()] += w;
      }
    }
  };

  Timer t;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.run_round("shuffle", [&](mrc::MachineContext& ctx) {
      drain(ctx);
      for (graph::VertexId v = static_cast<graph::VertexId>(ctx.id());
           v < n; v = static_cast<graph::VertexId>(v + machines)) {
        if (pattern == ShufflePattern::kTiny) {
          for (const graph::Incidence& inc : g.neighbours(v)) {
            const mrc::MachineId to = core::owner_of(inc.edge, machines);
            if (path == ShufflePath::kArena) {
              ctx.send(to,
                       {inc.edge, core::pack_double(g.weight(inc.edge))});
            } else {
              std::vector<mrc::Word> payload;
              payload.push_back(inc.edge);
              payload.push_back(core::pack_double(g.weight(inc.edge)));
              ctx.send(to, std::move(payload));
            }
          }
        } else if (g.degree(v) > 0) {
          if (path == ShufflePath::kArena) {
            mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
            for (const graph::Incidence& inc : g.neighbours(v)) {
              msg.push(inc.edge);
              msg.push(core::pack_double(g.weight(inc.edge)));
            }
          } else {
            std::vector<mrc::Word> payload;
            for (const graph::Incidence& inc : g.neighbours(v)) {
              payload.push_back(inc.edge);
              payload.push_back(core::pack_double(g.weight(inc.edge)));
            }
            ctx.send(mrc::kCentral, std::move(payload));
          }
        }
      }
    });
  }
  engine.run_round("drain", drain);
  s.seconds = t.elapsed();

  for (const std::uint64_t x : sums) s.checksum += x;
  for (const auto& rm : engine.metrics().per_round()) {
    s.total_sent += rm.total_sent;
  }
  const std::uint64_t twice_m = 2 * g.num_edges();
  if (pattern == ShufflePattern::kTiny) {
    s.messages = rounds * twice_m;
    s.words = rounds * 2 * twice_m;
  } else {
    std::uint64_t senders = 0;
    for (graph::VertexId v = 0; v < n; ++v) {
      senders += g.degree(v) > 0 ? 1 : 0;
    }
    s.messages = rounds * senders;
    s.words = rounds * 2 * twice_m;
  }
  return s;
}

void add_shuffle(Registry& r) {
  for (const char* pattern : {"tiny", "batched"}) {
    for (const char* path : {"legacy", "arena"}) {
      const std::string pat = pattern, pth = path;
      r.add({"shuffle/" + pat + "-" + pth,
             {"shuffle", "smoke"},
             "message shuffle throughput (" + pat + " pattern, " + pth +
                 " path)",
             [pat, pth](const RunContext& ctx) {
               const std::uint64_t n = ctx.scale_n(1200);
               const double c = 0.5;
               BenchResult res;
               res.algo = "shuffle-" + pth;
               res.family = "shuffle-" + pat;
               res.n = n;
               res.c = c;
               res.mu = 0.15;
               res.threads = 1;
               const graph::Graph g =
                   weighted_gnm(n, c, WeightDist::kUniform, n + 1);
               res.m = g.num_edges();
               const std::uint64_t eta = ipow_real(n, 1.15, 1);
               const std::uint64_t machines = std::max<std::uint64_t>(
                   2, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1),
                               eta));
               const std::uint64_t rounds = 4;
               const ShuffleStats s = run_shuffle(
                   g, machines,
                   pat == "tiny" ? ShufflePattern::kTiny
                                 : ShufflePattern::kBatched,
                   pth == "legacy" ? ShufflePath::kLegacy
                                   : ShufflePath::kArena,
                   rounds);
               res.wall_seconds = s.seconds;
               res.rounds = rounds + 1;  // + final drain round
               res.shuffle_words = s.total_sent;
               res.extra["messages"] = static_cast<double>(s.messages);
               res.extra["msgs_per_sec"] =
                   per_second(static_cast<double>(s.messages), s.seconds);
               res.extra["words_per_sec"] =
                   per_second(static_cast<double>(s.words), s.seconds);
               res.extra["machines"] = static_cast<double>(machines);
               HashAcc h;
               h.mix(s.checksum);
               h.mix(s.total_sent);
               res.determinism_hash = h.value();
               return res;
             }});
    }
  }
}

// ------------------------------------------------------------ io ----

/// Timed best-of-`reps` of f (first run included: the instance files
/// are freshly written, so there is no cold-cache asymmetry worth a
/// discard rep at these sizes).
template <typename F>
double time_best_of(int reps, F&& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    f();
    best = std::min(best, t.elapsed());
  }
  return best;
}

std::uint64_t hash_graph_data(const graph::GraphData& d) {
  HashAcc h;
  h.mix(d.n);
  h.mix(static_cast<std::uint64_t>(d.weighted ? 1 : 0));
  for (const graph::Edge& e : d.edges) {
    h.mix(static_cast<std::uint64_t>(e.u));
    h.mix(static_cast<std::uint64_t>(e.v));
  }
  for (const double w : d.weights) h.mix(w);
  return h.value();
}

std::uint64_t hash_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HashAcc h;
  char buf[1 << 16];
  std::uint64_t total = 0;
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    for (std::streamsize i = 0; i < in.gcount(); ++i) {
      h.mix(static_cast<std::uint64_t>(
          static_cast<unsigned char>(buf[i])));
    }
    total += static_cast<std::uint64_t>(in.gcount());
  }
  h.mix(total);
  return h.value();
}

void add_io(Registry& r) {
  for (const char* format : {"text", "mgb"}) {
    for (const char* op : {"write", "parse", "load"}) {
      const std::string fmt = format, operation = op;
      r.add({"io/" + fmt + "-" + operation,
             {"io", "smoke"},
             "graph " + operation + " throughput, " + fmt + " format",
             [fmt, operation](const RunContext& ctx) {
               namespace fs = std::filesystem;
               const std::uint64_t n = ctx.scale_n(60000);
               const std::uint64_t m = 4 * n;
               BenchResult res;
               res.algo = "graph-io-" + operation;
               res.family = "gnm-weighted";
               res.n = n;
               res.m = m;
               res.format = fmt;
               res.threads = 1;
               Rng rng(42);
               graph::Graph g = graph::gnm(n, m, rng);
               g = g.with_weights(graph::random_edge_weights(
                   g, WeightDist::kUniform, rng));
               const std::string path =
                   (fs::temp_directory_path() /
                    ("mrlr_bench_io_" + fmt + "_" + operation +
                     (fmt == "mgb" ? ".mgb" : ".txt")))
                       .string();
               constexpr int kReps = 2;
               if (operation == "write") {
                 res.wall_seconds = time_best_of(
                     kReps, [&] { graph::write_graph_file(g, path); });
                 res.determinism_hash = hash_file_bytes(path);
               } else {
                 graph::write_graph_file(g, path);
                 if (operation == "parse") {
                   graph::GraphData d;
                   res.wall_seconds = time_best_of(kReps, [&] {
                     d = graph::read_graph_file_data(path);
                   });
                   res.failed = !(d.n == g.num_vertices() &&
                                  d.edges == g.edges() &&
                                  d.weighted == g.weighted() &&
                                  d.weights == g.weights());
                   res.determinism_hash = hash_graph_data(d);
                 } else {
                   std::optional<graph::Graph> back;
                   res.wall_seconds = time_best_of(kReps, [&] {
                     back.emplace(graph::read_graph_file(path));
                   });
                   res.failed =
                       !(back->num_vertices() == g.num_vertices() &&
                         back->edges() == g.edges() &&
                         back->weighted() == g.weighted() &&
                         back->weights() == g.weights());
                   graph::GraphData d;
                   d.n = back->num_vertices();
                   d.weighted = back->weighted();
                   d.edges = back->edges();
                   d.weights = back->weights();
                   res.determinism_hash = hash_graph_data(d);
                 }
               }
               res.extra["edges_per_sec"] = per_second(
                   static_cast<double>(m), res.wall_seconds);
               std::error_code ec;
               fs::remove(path, ec);
               return res;
             }});
    }
  }
}

// ------------------------------------------------------- threads ----

// Executor-backend scaling: the same simulation at a pinned thread
// count. Every field except wall_seconds must be identical across the
// t1/t2/t8 scenarios — that is the PR 1 determinism contract, and the
// baseline diff enforces it hash-by-hash.
void add_threads(Registry& r) {
  struct Cfg {
    std::uint64_t threads;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{1, {"threads", "smoke"}},
           Cfg{2, {"threads", "smoke"}},
           Cfg{8, {"threads"}},
       }) {
    r.add({"exec/threads/t" + std::to_string(cfg.threads),
           cfg.groups,
           "rlr matching on the " +
               std::string(cfg.threads == 1 ? "serial" : "thread-pool") +
               " backend (results must match t1 exactly)",
           [cfg](const RunContext& ctx) {
             const std::uint64_t n = ctx.scale_n(3000);
             const double c = 0.5, mu = 0.1;
             BenchResult res;
             res.algo = "rlr-mwm";
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = cfg.threads;
             const graph::Graph g =
                 weighted_gnm(n, c, WeightDist::kUniform, n + 3);
             res.m = g.num_edges();
             Timer t;
             const auto out = core::rlr_matching(
                 g, scenario_params(mu, 1, cfg.threads));
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.failed =
                 res.failed || !graph::is_matching(g, out.matching);
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.weight);
             // Deliberately exclude threads from the hash: equal hashes
             // across t1/t2/t8 certify backend determinism.
             res.determinism_hash = h.value();
             return res;
           }});
  }
}

// ------------------------------------------------------- process ----

// Process-sharded backend determinism: the exact exec/threads workload
// run with K persistent worker shard processes (spawned once per job).
// Every non-timing field —
// in particular the determinism hash — must equal exec/threads/t1,
// which is the cross-PROCESS extension of the PR 1 contract: the shard
// transport and coordinator merge must not perturb a single bit.
void add_process(Registry& r) {
  struct Cfg {
    std::uint64_t shards;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{1, {"process"}},
           Cfg{2, {"process", "smoke"}},
           Cfg{4, {"process", "smoke"}},
       }) {
    r.add({"exec/process/k" + std::to_string(cfg.shards),
           cfg.groups,
           "rlr matching on the process-shard backend, " +
               std::to_string(cfg.shards) +
               " persistent worker shards (results must match "
               "exec/threads/t1 exactly)",
           [cfg](const RunContext& ctx) {
             const std::uint64_t n = ctx.scale_n(3000);
             const double c = 0.5, mu = 0.1;
             BenchResult res;
             res.algo = "rlr-mwm";
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = 1;
             const graph::Graph g =
                 weighted_gnm(n, c, WeightDist::kUniform, n + 3);
             res.m = g.num_edges();
             core::MrParams params = scenario_params(mu, 1, 1);
             params.num_shards = cfg.shards;
             Timer t;
             const auto out = core::rlr_matching(g, params);
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.failed =
                 res.failed || !graph::is_matching(g, out.matching);
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.weight);
             // Shards excluded from the hash, like threads: equal
             // hashes across t1/k1/k2/k4 certify backend determinism.
             res.determinism_hash = h.value();
             res.extra["shards"] = static_cast<double>(cfg.shards);
             return res;
           }});
  }
}

// --------------------------------------------------------- tcp ----

// True multi-host determinism: the exact exec/threads workload run
// against forked loopback TCP workers that start from nothing — each
// job ships the full instance + params over the wire and the workers
// rebuild the driver from the spec. Equal hashes across
// t1/k1/k2/k4/tcp-k2/tcp-k4 certify that neither the transport nor the
// wire bootstrap perturbs a single bit.
void add_tcp(Registry& r) {
  struct Cfg {
    std::uint64_t shards;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{2, {"process", "smoke"}},
           Cfg{4, {"process", "smoke"}},
       }) {
    r.add({"exec/tcp/k" + std::to_string(cfg.shards),
           cfg.groups,
           "rlr matching over " + std::to_string(cfg.shards - 1) +
               " loopback TCP workers bootstrapped from the shipped "
               "job spec (results must match exec/threads/t1 exactly)",
           [cfg](const RunContext& ctx) {
             const std::uint64_t n = ctx.scale_n(3000);
             const double c = 0.5, mu = 0.1;
             BenchResult res;
             res.algo = "rlr-mwm";
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = 1;
             const graph::Graph g =
                 weighted_gnm(n, c, WeightDist::kUniform, n + 3);
             res.m = g.num_edges();
             core::MrParams params = scenario_params(mu, 1, 1);
             params.num_shards = cfg.shards;
             // Fleet setup (fork + bind) stays outside the timer; the
             // measured run includes connect, handshake, bootstrap
             // shipping, and the rounds themselves.
             jobs::ScopedTcpLoopback fleet(
                 static_cast<unsigned>(cfg.shards - 1));
             exec::ProcessBackendConfig pbc;
             pbc.workers = fleet.endpoints();
             pbc.job_spec = jobs::encode_job_spec(
                 jobs::graph_job("matching", g, params));
             exec::ScopedProcessBackendConfig guard(std::move(pbc));
             Timer t;
             const auto out = core::rlr_matching(g, params);
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.failed =
                 res.failed || !graph::is_matching(g, out.matching);
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.weight);
             res.determinism_hash = h.value();
             res.extra["shards"] = static_cast<double>(cfg.shards);
             return res;
           }});
  }
}

// ---------------------------------------------------- composed ----

// --threads x --shards composition: the exact exec/threads workload run
// with K process shards, each executing its machine range on a
// shard-local pool of T threads (K x T concurrent callbacks). Hashes
// must equal exec/threads/t1 — the composition must not perturb a
// single bit, whether the shards are forked or bootstrapped over TCP.
void add_composed(Registry& r) {
  struct Cfg {
    std::uint64_t shards;
    std::uint64_t threads;
    bool tcp;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{2, 4, false, {"process", "smoke"}},
           Cfg{4, 2, false, {"process"}},
           Cfg{2, 4, true, {"process", "smoke"}},
       }) {
    const std::string name = std::string(cfg.tcp ? "exec/tcp/k"
                                                 : "exec/process/k") +
                             std::to_string(cfg.shards) + "xt" +
                             std::to_string(cfg.threads);
    r.add({name,
           cfg.groups,
           "rlr matching on " + std::to_string(cfg.shards) +
               (cfg.tcp ? " TCP worker shards x " : " process shards x ") +
               std::to_string(cfg.threads) +
               " shard-local threads (results must match exec/threads/t1 "
               "exactly)",
           [cfg](const RunContext& ctx) {
             const std::uint64_t n = ctx.scale_n(3000);
             const double c = 0.5, mu = 0.1;
             BenchResult res;
             res.algo = "rlr-mwm";
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = cfg.threads;
             const graph::Graph g =
                 weighted_gnm(n, c, WeightDist::kUniform, n + 3);
             res.m = g.num_edges();
             core::MrParams params = scenario_params(mu, 1, cfg.threads);
             params.num_shards = cfg.shards;
             std::optional<jobs::ScopedTcpLoopback> fleet;
             std::optional<exec::ScopedProcessBackendConfig> guard;
             if (cfg.tcp) {
               fleet.emplace(static_cast<unsigned>(cfg.shards - 1));
               exec::ProcessBackendConfig pbc;
               pbc.workers = fleet->endpoints();
               pbc.job_spec = jobs::encode_job_spec(
                   jobs::graph_job("matching", g, params));
               guard.emplace(std::move(pbc));
             }
             Timer t;
             const auto out = core::rlr_matching(g, params);
             res.wall_seconds = t.elapsed();
             fill_outcome(res, out.outcome);
             res.quality = out.weight;
             res.failed =
                 res.failed || !graph::is_matching(g, out.matching);
             HashAcc h;
             h.mix_range(out.matching);
             h.mix(out.weight);
             // Shards and threads are both excluded from the hash:
             // equal hashes across t1 and every kKxtT certify that the
             // composition is invisible in the output.
             res.determinism_hash = h.value();
             res.extra["shards"] = static_cast<double>(cfg.shards);
             return res;
           }});
  }
}

// Per-driver process smoke: every ported driver runs the identical
// pinned instance twice — serial, then on K=4 persistent worker
// shards — and the scenario fails on any fingerprint mismatch. The
// fingerprint mixes the full result vector, the exact weight, and the
// engine cost metrics, so the check is the in-registry version of the
// test_exec byte-identity suite and runs in the smoke CI job on every
// push. The reported hash is the serial one (shards never perturb it;
// that is the point).
void add_process_drivers(Registry& r) {
  // Runs one driver at the given shard count; returns the fingerprint
  // and fills the result's cost/quality fields from that run.
  using DriverFn =
      std::function<std::uint64_t(std::uint64_t shards, BenchResult& res)>;
  struct Cfg {
    std::string name;  // exec/process/<name>
    std::string algo;
    DriverFn run;
  };

  const auto graph_instance = [] {
    return weighted_gnm(900, 0.5, WeightDist::kUniform, 911);
  };
  const auto cover_instance = [] {
    Rng rng(4242);
    return setcover::many_sets(400, 52, 12, WeightDist::kUniform, rng);
  };
  const auto mix_outcome = [](HashAcc& h, const core::MrOutcome& o) {
    h.mix(o.rounds);
    h.mix(o.iterations);
    h.mix(o.max_machine_words);
    h.mix(o.max_central_inbox);
    h.mix(o.total_communication);
    h.mix(static_cast<std::uint64_t>(o.failed));
  };
  const auto params_k = [](double mu, std::uint64_t seed,
                           std::uint64_t shards) {
    core::MrParams p = scenario_params(mu, seed, 1);
    p.num_shards = shards;
    return p;
  };

  const std::vector<Cfg> cfgs = {
      {"setcover-f", "rlr-setcover-f",
       [=](std::uint64_t shards, BenchResult& res) {
         const auto sys = cover_instance();
         res.n = sys.num_sets();
         res.m = sys.total_incidences();
         const auto out =
             core::rlr_set_cover(sys, params_k(0.3, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = out.weight;
         res.failed =
             res.failed || !setcover::is_cover(sys, out.cover);
         HashAcc h;
         h.mix_range(out.cover);
         h.mix(out.weight);
         h.mix(out.lower_bound);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"setcover-greedy", "hungry-greedy-setcover",
       [=](std::uint64_t shards, BenchResult& res) {
         const auto sys = cover_instance();
         res.n = sys.num_sets();
         res.m = sys.total_incidences();
         const auto out = core::greedy_set_cover_mr(
             sys, /*eps=*/0.3, params_k(0.3, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = out.weight;
         res.failed =
             res.failed || !setcover::is_cover(sys, out.cover);
         HashAcc h;
         h.mix_range(out.cover);
         h.mix(out.weight);
         h.mix(out.preprocessed_sets);
         h.mix(out.sampling_failures);
         h.mix(out.level_drops);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"sample-prune-setcover", "sample-prune-setcover",
       [=](std::uint64_t shards, BenchResult& res) {
         const auto sys = cover_instance();
         res.n = sys.num_sets();
         res.m = sys.total_incidences();
         const auto out = baselines::sample_prune_set_cover(
             sys, /*eps=*/0.3, params_k(0.3, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = out.weight;
         res.failed =
             res.failed || !setcover::is_cover(sys, out.cover);
         HashAcc h;
         h.mix_range(out.cover);
         h.mix(out.weight);
         h.mix(out.level_drops);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"bmatching", "rlr-bmatching",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         std::vector<std::uint32_t> b(g.num_vertices());
         for (std::size_t v = 0; v < b.size(); ++v) {
           b[v] = 1 + static_cast<std::uint32_t>(v % 3);
         }
         const auto out = core::rlr_b_matching(
             g, b, /*eps=*/0.25, params_k(0.25, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = out.weight;
         res.failed =
             res.failed || !graph::is_b_matching(g, out.matching, b);
         HashAcc h;
         h.mix_range(out.matching);
         h.mix(out.weight);
         h.mix(out.stack_size);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"mis", "hungry-mis-improved",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             core::hungry_mis_improved(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.independent_set.size());
         res.failed = res.failed ||
                      !graph::is_independent_set(g, out.independent_set);
         HashAcc h;
         h.mix_range(out.independent_set);
         h.mix(out.phases);
         h.mix(out.central_adds);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"mis-simple", "hungry-mis-simple",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             core::hungry_mis_simple(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.independent_set.size());
         res.failed = res.failed ||
                      !graph::is_independent_set(g, out.independent_set);
         HashAcc h;
         h.mix_range(out.independent_set);
         h.mix(out.phases);
         h.mix(out.central_adds);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"luby-mis", "luby-mis",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             baselines::luby_mis_mr(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.independent_set.size());
         res.failed = res.failed ||
                      !graph::is_independent_set(g, out.independent_set);
         HashAcc h;
         h.mix_range(out.independent_set);
         h.mix(out.phases);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"clique", "hungry-clique",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             core::hungry_clique(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.clique.size());
         res.failed = res.failed || !graph::is_clique(g, out.clique);
         HashAcc h;
         h.mix_range(out.clique);
         h.mix(out.central_adds);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"colour-vertex", "mr-vertex-colouring",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             core::mr_vertex_colouring(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.colours_used);
         HashAcc h;
         h.mix_range(out.colour);
         h.mix(out.colours_used);
         h.mix(out.groups);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"colour-edge", "mr-edge-colouring",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             core::mr_edge_colouring(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.colours_used);
         HashAcc h;
         h.mix_range(out.colour);
         h.mix(out.colours_used);
         h.mix(out.groups);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"luby-colouring", "luby-colouring",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             baselines::luby_colouring_mr(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.colours_used);
         HashAcc h;
         h.mix_range(out.colour);
         h.mix(out.colours_used);
         h.mix(out.phases);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"coreset-matching", "coreset-matching",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             baselines::coreset_matching(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = out.weight;
         res.failed =
             res.failed || !graph::is_matching(g, out.matching);
         HashAcc h;
         h.mix_range(out.matching);
         h.mix(out.weight);
         h.mix(out.coreset_union_size);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"filtering-matching", "filtering-matching",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out =
             baselines::filtering_matching(g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = static_cast<double>(out.matching.size());
         res.failed =
             res.failed || !graph::is_matching(g, out.matching);
         HashAcc h;
         h.mix_range(out.matching);
         h.mix(out.weight);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
      {"filtering-weighted", "filtering-weighted-matching",
       [=](std::uint64_t shards, BenchResult& res) {
         const graph::Graph g = graph_instance();
         res.n = g.num_vertices();
         res.m = g.num_edges();
         const auto out = baselines::filtering_weighted_matching(
             g, params_k(0.15, 1, shards));
         fill_outcome(res, out.outcome);
         res.quality = out.weight;
         res.failed =
             res.failed || !graph::is_matching(g, out.matching);
         HashAcc h;
         h.mix_range(out.matching);
         h.mix(out.weight);
         mix_outcome(h, out.outcome);
         return h.value();
       }},
  };

  for (const Cfg& cfg : cfgs) {
    r.add({"exec/process/" + cfg.name,
           {"process", "smoke"},
           cfg.algo + " serial vs 4 persistent worker shards "
                      "(self-checking: fails on any fingerprint drift)",
           [cfg](const RunContext&) {
             BenchResult res;
             res.algo = cfg.algo;
             res.family = "gnm-density";
             res.threads = 1;
             Timer t;
             const std::uint64_t serial_hash = cfg.run(1, res);
             BenchResult sharded;
             const std::uint64_t shard_hash = cfg.run(4, sharded);
             res.wall_seconds = t.elapsed();
             res.failed =
                 res.failed || sharded.failed || serial_hash != shard_hash;
             res.determinism_hash = serial_hash;
             res.extra["shards"] = 4.0;
             return res;
           }});
  }
}

// --------------------------------------------------------- large ----

// Nightly-scale instances (10^6+ edges): not part of smoke — the
// nightly-large workflow runs `bench --group all` on a schedule and
// feeds the results into the trajectory tracker. Seeds are pinned like
// every other scenario, so the nightly curves are comparable across
// commits.
void add_large(Registry& r) {
  r.add({"large/matching/n40000-c0.32",
         {"large"},
         "rlr matching, ~1.2M-edge weighted gnm (nightly scale)",
         [](const RunContext& ctx) {
           const std::uint64_t n = ctx.scale_n(40000);
           // mu = 0.1 keeps 4*eta well below m, so the nightly curve
           // tracks the real multi-iteration sampling path, not the
           // ship-all endgame.
           const double c = 0.32, mu = 0.1;
           BenchResult res;
           res.algo = "rlr-mwm";
           res.family = "gnm-density";
           res.n = n;
           res.c = c;
           res.mu = mu;
           res.threads = exec_threads(ctx);
           const graph::Graph g =
               weighted_gnm(n, c, WeightDist::kUniform, n + 17);
           res.m = g.num_edges();
           const auto sq = seq::local_ratio_matching(g);
           Timer t;
           const auto out = core::rlr_matching(g, exec_params(mu, 1, ctx));
           res.wall_seconds = t.elapsed();
           fill_outcome(res, out.outcome);
           res.quality = out.weight;
           res.quality_vs_baseline =
               sq.weight > 0 ? out.weight / sq.weight : 0.0;
           res.failed = res.failed || !graph::is_matching(g, out.matching);
           HashAcc h;
           h.mix_range(out.matching);
           h.mix(out.weight);
           res.determinism_hash = h.value();
           return res;
         }});

  r.add({"large/mis-improved/n40000-c0.32",
         {"large"},
         "hungry MIS (Alg 6), ~1.2M-edge gnm (nightly scale)",
         [](const RunContext& ctx) {
           const std::uint64_t n = ctx.scale_n(40000);
           const double c = 0.32, mu = 0.25;
           BenchResult res;
           res.algo = "mis-improved";
           res.family = "gnm-density";
           res.n = n;
           res.c = c;
           res.mu = mu;
           res.threads = ctx.threads;
           Rng rng(n + 40);
           const graph::Graph g = graph::gnm_density(n, c, rng);
           res.m = g.num_edges();
           Timer t;
           const auto out = core::hungry_mis_improved(
               g, scenario_params(mu, 1, ctx.threads));
           res.wall_seconds = t.elapsed();
           fill_outcome(res, out.outcome);
           res.quality = static_cast<double>(out.independent_set.size());
           res.failed =
               res.failed ||
               !graph::is_maximal_independent_set(g, out.independent_set);
           HashAcc h;
           h.mix_range(out.independent_set);
           res.determinism_hash = h.value();
           return res;
         }});

  r.add({"large/colour-vertex/n40000-c0.32",
         {"large"},
         "mr vertex colouring, ~1.2M-edge gnm (nightly scale)",
         [](const RunContext& ctx) {
           const std::uint64_t n = ctx.scale_n(40000);
           const double c = 0.32, mu = 0.2;
           BenchResult res;
           res.algo = "mr-colour-vertex";
           res.family = "gnm-density";
           res.n = n;
           res.c = c;
           res.mu = mu;
           res.threads = ctx.threads;
           Rng rng(n + 12);
           const graph::Graph g = graph::gnm_density(n, c, rng);
           res.m = g.num_edges();
           Timer t;
           const auto out = core::mr_vertex_colouring(
               g, scenario_params(mu, 1, ctx.threads));
           res.wall_seconds = t.elapsed();
           res.failed = out.failed;
           fill_outcome(res, out.outcome);
           res.quality = static_cast<double>(out.colours_used);
           res.failed =
               res.failed ||
               !graph::is_proper_vertex_colouring(g, out.colour);
           HashAcc h;
           h.mix_range(out.colour);
           h.mix(out.colours_used);
           res.determinism_hash = h.value();
           res.extra["colours_over_delta"] =
               g.max_degree() > 0
                   ? res.quality / static_cast<double>(g.max_degree())
                   : 0.0;
           return res;
         }});

  r.add({"large/setcover-greedy/k4",
         {"large"},
         "hungry greedy set cover, ~1M-incidence system on 4 persistent "
         "worker shards (nightly-scale process backend)",
         [](const RunContext& ctx) {
           const std::uint64_t sets = ctx.scale_n(100000);
           const std::uint64_t universe = std::max<std::uint64_t>(
               2, sets / 8);
           BenchResult res;
           res.algo = "hungry-greedy-setcover";
           res.family = "many-sets";
           res.n = sets;
           res.mu = 0.3;
           res.threads = 1;
           Rng rng(sets + 9);
           const auto sys = setcover::many_sets(
               sets, universe, 20, WeightDist::kUniform, rng);
           res.m = sys.total_incidences();
           core::MrParams params = scenario_params(0.3, 1, 1);
           params.num_shards = 4;
           Timer t;
           const auto out =
               core::greedy_set_cover_mr(sys, /*eps=*/0.3, params);
           res.wall_seconds = t.elapsed();
           fill_outcome(res, out.outcome);
           res.quality = out.weight;
           res.failed =
               res.failed || !setcover::is_cover(sys, out.cover);
           HashAcc h;
           h.mix_range(out.cover);
           h.mix(out.weight);
           res.determinism_hash = h.value();
           res.extra["shards"] = 4.0;
           return res;
         }});

  r.add({"large/io/mgb-load-m2e6",
         {"large"},
         "binary .mgb end-to-end load, 2M weighted edges (nightly scale)",
         [](const RunContext& ctx) {
           namespace fs = std::filesystem;
           const std::uint64_t n = ctx.scale_n(500000);
           const std::uint64_t m = 4 * n;
           BenchResult res;
           res.algo = "graph-io-load";
           res.family = "gnm-weighted";
           res.n = n;
           res.m = m;
           res.format = "mgb";
           res.threads = 1;
           Rng rng(42);
           graph::Graph g = graph::gnm(n, m, rng);
           g = g.with_weights(
               graph::random_edge_weights(g, WeightDist::kUniform, rng));
           const std::string path =
               (fs::temp_directory_path() / "mrlr_bench_large_io.mgb")
                   .string();
           graph::write_graph_file(g, path);
           std::optional<graph::Graph> back;
           Timer t;
           back.emplace(graph::read_graph_file(path));
           res.wall_seconds = t.elapsed();
           res.failed = !(back->num_vertices() == g.num_vertices() &&
                          back->edges() == g.edges() &&
                          back->weights() == g.weights());
           graph::GraphData d;
           d.n = back->num_vertices();
           d.weighted = back->weighted();
           d.edges = back->edges();
           d.weights = back->weights();
           res.determinism_hash = hash_graph_data(d);
           res.extra["edges_per_sec"] =
               per_second(static_cast<double>(m), res.wall_seconds);
           std::error_code ec;
           fs::remove(path, ec);
           return res;
         }});

  r.add({"large/shuffle/tiny-arena-m1e6",
         {"large"},
         "arena shuffle throughput, ~1M-edge instance (nightly scale)",
         [](const RunContext& ctx) {
           const std::uint64_t n = ctx.scale_n(10000);
           const double c = 0.5;
           BenchResult res;
           res.algo = "shuffle-arena";
           res.family = "shuffle-tiny";
           res.n = n;
           res.c = c;
           res.mu = 0.15;
           res.threads = 1;
           const graph::Graph g =
               weighted_gnm(n, c, WeightDist::kUniform, n + 1);
           res.m = g.num_edges();
           const std::uint64_t eta = ipow_real(n, 1.15, 1);
           const std::uint64_t machines = std::max<std::uint64_t>(
               2,
               ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
           const std::uint64_t rounds = 2;
           const ShuffleStats s =
               run_shuffle(g, machines, ShufflePattern::kTiny,
                           ShufflePath::kArena, rounds);
           res.wall_seconds = s.seconds;
           res.rounds = rounds + 1;
           res.shuffle_words = s.total_sent;
           res.extra["messages"] = static_cast<double>(s.messages);
           res.extra["msgs_per_sec"] =
               per_second(static_cast<double>(s.messages), s.seconds);
           res.extra["machines"] = static_cast<double>(machines);
           HashAcc h;
           h.mix(s.checksum);
           h.mix(s.total_sent);
           res.determinism_hash = h.value();
           return res;
         }});
}

}  // namespace

// ------------------------------------------------------- serve ----

// Service-mode throughput and correctness: an in-process ServeDaemon on
// an ephemeral loopback port executes 8 pinned jobs submitted by C
// concurrent clients through the full submit -> admission -> fork ->
// result pipeline. Standalone run_job fingerprints are computed untimed
// first, and the scenario fails if any daemon-returned result deviates
// by a byte. The determinism hash mixes only the standalone
// fingerprints, so serve/jobs/c1 and serve/jobs/c4 must report the
// identical hash — admission and concurrency must be invisible in the
// answers. jobs_per_sec is informational (extra, never diffed).
void add_serve(Registry& r) {
  struct Cfg {
    std::uint64_t clients;
    std::vector<std::string> groups;
  };
  for (const Cfg& cfg : {
           Cfg{1, {"serve", "smoke"}},
           Cfg{4, {"serve", "smoke"}},
       }) {
    r.add({"serve/jobs/c" + std::to_string(cfg.clients),
           cfg.groups,
           "8 pinned jobs (weighted matching + MIS) through mrlr_serve "
           "admission and fork-per-job execution on loopback, " +
               std::to_string(cfg.clients) +
               " concurrent client(s); every result must be "
               "byte-identical to standalone run_job",
           [cfg](const RunContext& ctx) {
             const std::uint64_t n = ctx.scale_n(400);
             const double c = 0.5, mu = 0.2;
             BenchResult res;
             res.algo = "serve-jobs";
             res.family = "gnm-density";
             res.n = n;
             res.c = c;
             res.mu = mu;
             res.threads = cfg.clients;

             // 8 pinned jobs: 4 weighted matchings, 4 MIS runs.
             std::vector<jobs::JobSpec> specs;
             for (std::uint64_t s = 1; s <= 4; ++s) {
               const graph::Graph gw =
                   weighted_gnm(n, c, WeightDist::kUniform, n + s);
               specs.push_back(jobs::graph_job("matching", gw,
                                               scenario_params(mu, s)));
               Rng rng(n + 16 + s);
               const graph::Graph gu = graph::gnm_density(n, c, rng);
               specs.push_back(
                   jobs::graph_job("mis", gu, scenario_params(mu, s)));
             }

             // Untimed reference answers; the hash and quality come
             // from these, never from the daemon's copies.
             std::vector<std::string> standalone;
             HashAcc h;
             double quality = 0.0;
             for (const jobs::JobSpec& s : specs) {
               const jobs::JobResult ref = jobs::run_job(s);
               quality += static_cast<double>(ref.solution_size);
               standalone.push_back(jobs::fingerprint(ref));
               h.mix(standalone.back());
             }

             serve::ServeOptions opts;
             opts.max_running = std::max<std::uint64_t>(cfg.clients, 1);
             serve::ServeDaemon daemon("127.0.0.1", 0, opts);
             std::thread runner([&daemon] { daemon.run(); });
             const exec::Endpoint ep{"127.0.0.1", daemon.port()};

             std::atomic<bool> mismatch{false};
             Timer t;
             std::vector<std::thread> clients;
             for (std::uint64_t ci = 0; ci < cfg.clients; ++ci) {
               clients.emplace_back([&, ci] {
                 try {
                   serve::ServeClient client(ep);
                   for (std::size_t j = ci; j < specs.size();
                        j += cfg.clients) {
                     if (!client.submit(specs[j]).accepted) {
                       mismatch = true;
                       return;
                     }
                     const serve::ResultReply reply =
                         client.wait_result();
                     if (!reply.ok ||
                         jobs::fingerprint(
                             serve::ServeClient::decode_result(reply)) !=
                             standalone[j]) {
                       mismatch = true;
                       return;
                     }
                   }
                 } catch (const std::exception&) {
                   mismatch = true;
                 }
               });
             }
             for (std::thread& th : clients) th.join();
             res.wall_seconds = t.elapsed();
             daemon.request_shutdown();
             runner.join();

             res.failed = mismatch.load();
             res.quality = quality;
             res.determinism_hash = h.value();
             res.extra["clients"] = static_cast<double>(cfg.clients);
             res.extra["jobs"] = static_cast<double>(specs.size());
             if (res.wall_seconds > 0.0) {
               res.extra["jobs_per_sec"] =
                   static_cast<double>(specs.size()) / res.wall_seconds;
             }
             return res;
           }});
  }
}

void register_builtin_scenarios(Registry& r) {
  add_f1_matching(r);
  add_f1_vertex_cover(r);
  add_f1_setcover_f(r);
  add_f1_setcover_greedy(r);
  add_f1_bmatching(r);
  add_f1_mis(r);
  add_f1_clique(r);
  add_f1_colouring(r);
  add_rounds_scaling(r);
  add_space_scaling(r);
  add_shuffle(r);
  add_io(r);
  add_threads(r);
  add_process(r);
  add_tcp(r);
  add_composed(r);
  add_process_drivers(r);
  add_serve(r);
  add_large(r);
}

}  // namespace mrlr::bench
