#pragma once
// Historical trajectory tracking over a series of bench result files
// (the engine behind tools/bench_trajectory and the nightly-large CI
// workflow).
//
// Input: an ordered series of schema-v1 `bench_results.json` files —
// one per commit / nightly run, oldest first. Output: per-scenario
// curves of the tracked metrics (wall seconds, rounds, max machine
// words, shuffle words, quality) rendered as
//   * CSV — one row per (scenario, series point), for plotting;
//   * markdown — one table per metric (rows = scenarios, columns =
//     series labels, final column = last/first ratio), plus a
//     determinism-hash stability section: a hash that changes between
//     two points without an intentional baseline regeneration is a
//     silent-behaviour-change flag worth investigating.
//
// Scenarios appear in first-seen order across the series; a scenario
// absent from some points (added or removed over time) renders as a
// gap, never an error.

#include <iosfwd>
#include <string>
#include <vector>

#include "mrlr/bench/result.hpp"

namespace mrlr::bench {

/// One series point: a result file plus the label shown on its column
/// (derived from the filename by load_trajectory).
struct TrajectoryPoint {
  std::string label;
  BenchFile file;
};

/// Reads each path via read_bench_file (throwing JsonError on parse or
/// schema problems, std::runtime_error on I/O) and labels the point
/// with the file's base name minus the .json extension. Order is
/// preserved: pass the series oldest first.
std::vector<TrajectoryPoint> load_trajectory(
    const std::vector<std::string>& paths);

/// Scenario names in first-seen order across the whole series.
std::vector<std::string> trajectory_scenarios(
    const std::vector<TrajectoryPoint>& series);

/// CSV: header plus one row per (scenario, point) where the scenario is
/// present, columns scenario,point,label,wall_seconds,rounds,
/// iterations,max_machine_words,max_central_inbox,shuffle_words,
/// quality,quality_vs_baseline,determinism_hash,failed.
void write_trajectory_csv(const std::vector<TrajectoryPoint>& series,
                          std::ostream& os);

/// Markdown: one table per tracked metric plus the hash-stability
/// section described above.
void write_trajectory_markdown(const std::vector<TrajectoryPoint>& series,
                               std::ostream& os);

}  // namespace mrlr::bench
