#include "mrlr/graph/stats.hpp"

#include <numeric>
#include <vector>

#include "mrlr/util/math.hpp"

namespace mrlr::graph {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.n = g.num_vertices();
  s.m = g.num_edges();
  s.max_degree = g.max_degree();
  s.avg_degree = s.n == 0 ? 0.0
                          : 2.0 * static_cast<double>(s.m) /
                                static_cast<double>(s.n);
  s.density_exponent = density_exponent(s.n, s.m);
  for (VertexId v = 0; v < s.n; ++v) {
    if (g.degree(v) == 0) ++s.isolated_vertices;
  }
  return s;
}

namespace {
class UnionFind {
 public:
  explicit UnionFind(std::uint64_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::uint64_t find(std::uint64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::uint64_t a, std::uint64_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::uint64_t> parent_;
};
}  // namespace

std::uint64_t connected_components(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  UnionFind uf(g.num_vertices());
  std::uint64_t components = g.num_vertices();
  for (const Edge& e : g.edges()) {
    if (uf.unite(e.u, e.v)) --components;
  }
  return components;
}

}  // namespace mrlr::graph
