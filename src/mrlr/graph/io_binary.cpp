#include "mrlr/graph/io_binary.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/mix64.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::graph {

namespace {

static_assert(std::endian::native == std::endian::little,
              ".mgb I/O writes raw little-endian blocks; a big-endian "
              "port needs byte-swapping shims here");
static_assert(sizeof(Edge) == 8, "edge block layout assumes packed u32 pairs");

constexpr std::size_t kChunkElems = std::size_t{1} << 16;       // 512 KiB
constexpr std::uint64_t kChecksumSeed = 0x6D726C722E6D6762ull;  // "mrlr.mgb"

/// Order-dependent rolling checksum over the logical content (header
/// fields, edge words, weight bit patterns) rather than raw bytes, so
/// the definition is independent of block boundaries and chunk sizes.
struct Checksum {
  std::uint64_t h = kChecksumSeed;
  void absorb(std::uint64_t x) { h = mix64(h ^ x); }
};

std::uint64_t edge_word(const Edge& e) {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("mgb: " + what);
}

struct Header {
  std::uint32_t magic = kMgbMagic;
  std::uint32_t version = kMgbVersion;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint32_t flags = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(Header) == 32, "header layout must be padding-free");

constexpr std::uint32_t kFlagWeighted = 1u;

void write_raw(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os) fail("write failed (disk full or closed stream?)");
}

/// Reads exactly `bytes` or throws ParseError naming `what`.
void read_raw(std::istream& is, void* data, std::size_t bytes,
              const char* what) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(is.gcount()) != bytes) {
    fail(std::string("truncated ") + what);
  }
}

}  // namespace

MgbWriter::MgbWriter(std::ostream& os, std::uint64_t n, std::uint64_t m,
                     bool weighted)
    : os_(os), n_(n), m_(m), weighted_(weighted) {
  MRLR_REQUIRE(n <= kMaxVertexCount,
               "mgb: vertex count exceeds the 32-bit vertex-id limit");
  Header h;
  h.n = n;
  h.m = m;
  h.flags = weighted ? kFlagWeighted : 0;
  write_raw(os_, &h, sizeof(h));
  Checksum sum;
  sum.absorb(h.n);
  sum.absorb(h.m);
  sum.absorb(h.flags);
  checksum_ = sum.h;
}

MgbWriter::~MgbWriter() = default;

void MgbWriter::append_edges(std::span<const Edge> edges) {
  MRLR_REQUIRE(!finished_, "mgb: append after finish");
  MRLR_REQUIRE(edges.size() <= m_ - edges_written_,
               "mgb: more edges appended than declared");
  Checksum sum{checksum_};
  for (const Edge& e : edges) {
    MRLR_REQUIRE(e.u < n_ && e.v < n_ && e.u != e.v,
                 "mgb: edge endpoints must be distinct and < n");
    sum.absorb(edge_word(e));
  }
  checksum_ = sum.h;
  write_raw(os_, edges.data(), edges.size_bytes());
  edges_written_ += edges.size();
}

void MgbWriter::append_weights(std::span<const double> weights) {
  MRLR_REQUIRE(!finished_, "mgb: append after finish");
  MRLR_REQUIRE(weighted_, "mgb: weight block on an unweighted file");
  MRLR_REQUIRE(edges_written_ == m_,
               "mgb: weight block must follow the complete edge block");
  MRLR_REQUIRE(weights.size() <= m_ - weights_written_,
               "mgb: more weights appended than declared");
  Checksum sum{checksum_};
  for (const double w : weights) {
    MRLR_REQUIRE(std::isfinite(w) && w > 0.0,
                 "mgb: weights must be finite and positive");
    sum.absorb(std::bit_cast<std::uint64_t>(w));
  }
  checksum_ = sum.h;
  write_raw(os_, weights.data(), weights.size_bytes());
  weights_written_ += weights.size();
}

void MgbWriter::finish() {
  MRLR_REQUIRE(!finished_, "mgb: finish called twice");
  MRLR_REQUIRE(edges_written_ == m_, "mgb: finish before all edges written");
  MRLR_REQUIRE(!weighted_ || weights_written_ == m_,
               "mgb: finish before all weights written");
  write_raw(os_, &checksum_, sizeof(checksum_));
  os_.flush();
  if (!os_) fail("write failed (disk full or closed stream?)");
  finished_ = true;
}

void write_mgb(const Graph& g, std::ostream& os) {
  MgbWriter w(os, g.num_vertices(), g.num_edges(), g.weighted());
  w.append_edges(g.edges());
  if (g.weighted()) w.append_weights(g.weights());
  w.finish();
}

void write_mgb(const GraphData& d, std::ostream& os) {
  MgbWriter w(os, d.n, d.edges.size(), d.weighted);
  w.append_edges(d.edges);
  if (d.weighted) w.append_weights(d.weights);
  w.finish();
}

void write_mgb_subset(const Graph& g, std::span<const EdgeId> edge_ids,
                      std::ostream& os) {
  MgbWriter w(os, g.num_vertices(), edge_ids.size(), g.weighted());
  // Chunked gather so a large partition never needs a second in-memory
  // copy of its whole edge block.
  std::vector<Edge> edges;
  edges.reserve(std::min(edge_ids.size(), kChunkElems));
  for (std::size_t at = 0; at < edge_ids.size();) {
    const std::size_t take = std::min(edge_ids.size() - at, kChunkElems);
    edges.clear();
    for (std::size_t i = 0; i < take; ++i) {
      const EdgeId id = edge_ids[at + i];
      MRLR_REQUIRE(id < g.num_edges(), "mgb: subset edge id out of range");
      edges.push_back(g.edge(id));
    }
    w.append_edges(edges);
    at += take;
  }
  if (g.weighted()) {
    std::vector<double> weights;
    weights.reserve(std::min(edge_ids.size(), kChunkElems));
    for (std::size_t at = 0; at < edge_ids.size();) {
      const std::size_t take = std::min(edge_ids.size() - at, kChunkElems);
      weights.clear();
      for (std::size_t i = 0; i < take; ++i) {
        weights.push_back(g.weight(edge_ids[at + i]));
      }
      w.append_weights(weights);
      at += take;
    }
  }
  w.finish();
}

std::vector<std::byte> serialize_mgb(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  write_mgb(g, os);
  const std::string s = std::move(os).str();
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

Graph parse_mgb(std::span<const std::byte> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  return read_mgb(is);
}

GraphData read_mgb_data(std::istream& is) {
  Header h;
  read_raw(is, &h, sizeof(h), "header");
  if (h.magic != kMgbMagic) fail("bad magic (not an .mgb file)");
  if (h.version != kMgbVersion) {
    fail("unsupported version " + std::to_string(h.version));
  }
  if ((h.flags & ~kFlagWeighted) != 0) fail("unknown flag bits set");
  if (h.reserved != 0) fail("nonzero reserved field");
  if (h.n > kMaxVertexCount) {
    fail("vertex count exceeds the 32-bit vertex-id limit");
  }
  GraphData d;
  d.n = h.n;
  d.weighted = (h.flags & kFlagWeighted) != 0;

  Checksum sum;
  sum.absorb(h.n);
  sum.absorb(h.m);
  sum.absorb(h.flags);

  // Stream the blocks in fixed-size chunks, reading straight into the
  // destination vector's tail (no bounce buffer): a truncated or
  // adversarial header fails at the first short read instead of forcing
  // an m-sized allocation up front.
  d.edges.reserve(static_cast<std::size_t>(std::min(h.m, kIoReserveCap)));
  for (std::uint64_t done = 0; done < h.m;) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(h.m - done, kChunkElems));
    d.edges.resize(static_cast<std::size_t>(done) + take);
    read_raw(is, d.edges.data() + done, take * sizeof(Edge), "edge block");
    for (std::size_t i = 0; i < take; ++i) {
      const Edge& e = d.edges[static_cast<std::size_t>(done) + i];
      if (e.u >= h.n || e.v >= h.n) {
        fail("edge " + std::to_string(done + i) + " endpoint out of range");
      }
      if (e.u == e.v) {
        fail("edge " + std::to_string(done + i) + " is a self-loop");
      }
      sum.absorb(edge_word(e));
    }
    done += take;
  }

  if (d.weighted) {
    d.weights.reserve(static_cast<std::size_t>(std::min(h.m, kIoReserveCap)));
    for (std::uint64_t done = 0; done < h.m;) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(h.m - done, kChunkElems));
      d.weights.resize(static_cast<std::size_t>(done) + take);
      read_raw(is, d.weights.data() + done, take * sizeof(double),
               "weight block");
      for (std::size_t i = 0; i < take; ++i) {
        const double w = d.weights[static_cast<std::size_t>(done) + i];
        if (!std::isfinite(w) || w <= 0.0) {
          fail("weight " + std::to_string(done + i) +
               " must be finite and positive");
        }
        sum.absorb(std::bit_cast<std::uint64_t>(w));
      }
      done += take;
    }
  }

  std::uint64_t expected = 0;
  read_raw(is, &expected, sizeof(expected), "checksum");
  if (expected != sum.h) fail("checksum mismatch (corrupt file)");
  is.peek();
  if (!is.eof()) fail("trailing bytes after checksum");
  return d;
}

Graph read_mgb(std::istream& is) { return read_mgb_data(is).build(); }

bool is_mgb_path(std::string_view path) {
  if (path.size() < 4) return false;
  const std::string_view ext = path.substr(path.size() - 4);
  return ext.size() == 4 && ext[0] == '.' &&
         (ext[1] == 'm' || ext[1] == 'M') &&
         (ext[2] == 'g' || ext[2] == 'G') &&
         (ext[3] == 'b' || ext[3] == 'B');
}

GraphData read_graph_file_data(const std::string& path) {
  // One io_load span per file read, labelled with the container kind —
  // ingestion shows up in profiles next to the rounds it feeds.
  obs::ScopedSpan span(obs::Phase::kIoLoad, obs::kNoRound,
                       is_mgb_path(path) ? "mgb" : "text");
  obs::count("io.graphs_loaded");
  std::ifstream in(path,
                   is_mgb_path(path) ? std::ios::in | std::ios::binary
                                     : std::ios::in);
  if (!in) throw ParseError("cannot open " + path);
  return is_mgb_path(path) ? read_mgb_data(in) : read_edge_list_data(in);
}

Graph read_graph_file(const std::string& path) {
  return read_graph_file_data(path).build();
}

namespace {

template <typename GraphLike>
void write_graph_file_impl(const GraphLike& g, const std::string& path) {
  std::ofstream out(path,
                    is_mgb_path(path) ? std::ios::out | std::ios::binary
                                      : std::ios::out);
  if (!out) throw ParseError("cannot open " + path + " for writing");
  if (is_mgb_path(path)) {
    write_mgb(g, out);
  } else {
    write_edge_list(g, out);
    out.flush();
    if (!out) throw ParseError("write failed: " + path);
  }
}

}  // namespace

void write_graph_file(const Graph& g, const std::string& path) {
  write_graph_file_impl(g, path);
}

void write_graph_file(const GraphData& d, const std::string& path) {
  write_graph_file_impl(d, path);
}

}  // namespace mrlr::graph
