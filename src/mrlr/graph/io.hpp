#pragma once
// Graph I/O: strict plain-text edge lists plus dispatch to the binary
// `.mgb` container (io_binary.hpp) by file extension.
//
// Text format: first line "n m [weighted]", then one "u v [w]" line per
// edge. Lines starting with '#' (after optional whitespace) and blank
// lines are comments. Endpoints must be < n and distinct (no
// self-loops); weights, when the header declares them, must be present,
// finite, and strictly positive. Anything else throws ParseError —
// never a silently empty or zero-weight graph.

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "mrlr/graph/graph.hpp"

namespace mrlr::graph {

/// Thrown by every graph reader (text and .mgb) on malformed input:
/// bad or garbage headers, truncated files, out-of-range or self-loop
/// endpoints, missing/non-finite/non-positive weights, bad magic or
/// checksum mismatch. The message names the offending line or byte
/// offset.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Readers cap up-front vector reservations at this many elements so an
/// adversarial header count fails at the truncation check (ParseError)
/// instead of forcing a giant allocation; larger genuine inputs grow
/// geometrically past the cap.
inline constexpr std::uint64_t kIoReserveCap = 1ull << 20;

/// Parsed-but-unindexed graph data: what the readers produce before the
/// CSR adjacency index is built. Streaming consumers that never walk
/// neighbourhoods — format converters, partitioners, writers — can stay
/// at this layer and skip the index cost, which dominates the load time
/// of large instances.
struct GraphData {
  std::uint64_t n = 0;
  bool weighted = false;
  std::vector<Edge> edges;
  std::vector<double> weights;  // size edges.size() when weighted

  /// Builds the algorithmic Graph (CSR index) from this data.
  Graph build() &&;
};

void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list(const GraphData& d, std::ostream& os);

/// Parses the format written by write_edge_list. Throws ParseError on
/// malformed input (see the taxonomy above).
Graph read_edge_list(std::istream& is);

/// As read_edge_list, but stops at the data layer (no CSR index).
GraphData read_edge_list_data(std::istream& is);

/// True when `path` names the binary container (extension ".mgb",
/// case-insensitive).
bool is_mgb_path(std::string_view path);

/// Reads a graph from `path`, picking the `.mgb` binary reader or the
/// text reader by extension. Throws ParseError when the file cannot be
/// opened or fails validation.
Graph read_graph_file(const std::string& path);
GraphData read_graph_file_data(const std::string& path);

/// Writes a graph to `path` in the format selected by its extension.
/// Throws ParseError when the file cannot be opened or written.
void write_graph_file(const Graph& g, const std::string& path);
void write_graph_file(const GraphData& d, const std::string& path);

}  // namespace mrlr::graph
