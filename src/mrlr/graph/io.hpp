#pragma once
// Plain-text edge-list I/O so examples can load user-provided graphs.
//
// Format: first line "n m [weighted]", then one "u v [w]" line per edge.
// Lines starting with '#' are comments.

#include <iosfwd>
#include <string>

#include "mrlr/graph/graph.hpp"

namespace mrlr::graph {

void write_edge_list(const Graph& g, std::ostream& os);

/// Parses the format written by write_edge_list. Aborts (MRLR_REQUIRE) on
/// malformed input; this is a research harness, not a hardened parser.
Graph read_edge_list(std::istream& is);

}  // namespace mrlr::graph
