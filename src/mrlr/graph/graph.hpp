#pragma once
// Graph representation shared by all algorithms.
//
// A Graph is an immutable simple undirected graph held as an edge list
// plus a CSR adjacency index (neighbour and incident-edge ids). Edge
// weights are optional; weight() on an unweighted graph returns 1.0, so
// unweighted problems are the uniform-weight special case throughout.

#include <cstdint>
#include <span>
#include <vector>

#include "mrlr/util/require.hpp"

namespace mrlr::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Largest admissible vertex count: ids are 32 bits, and generators and
/// file readers pack two of them into a 64-bit word (edge keys, .mgb
/// edge records), so every ingestion surface enforces n <= 2^32.
inline constexpr std::uint64_t kMaxVertexCount = 1ull << 32;

struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  /// The endpoint that is not `x`. Requires x to be an endpoint: the
  /// precondition is checked in debug builds; a violation would
  /// otherwise silently return v, corrupting path walks.
  VertexId other(VertexId x) const {
    MRLR_DEBUG_REQUIRE(x == u || x == v, "Edge::other: x is not an endpoint");
    return x == u ? v : u;
  }
  bool has_endpoint(VertexId x) const { return x == u || x == v; }
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// CSR adjacency entry: the neighbour reached and the id of the edge used.
struct Incidence {
  VertexId neighbour = 0;
  EdgeId edge = 0;
};

class Graph {
 public:
  /// Builds the graph and its adjacency index. Self-loops are rejected;
  /// parallel edges are permitted by the representation but the library's
  /// generators never produce them (validate::has_parallel_edges checks).
  Graph(std::uint64_t num_vertices, std::vector<Edge> edges);
  Graph(std::uint64_t num_vertices, std::vector<Edge> edges,
        std::vector<double> weights);

  std::uint64_t num_vertices() const { return n_; }
  std::uint64_t num_edges() const { return edges_.size(); }
  bool weighted() const { return !weights_.empty(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Weight of edge e (1.0 when the graph is unweighted).
  double weight(EdgeId e) const {
    return weights_.empty() ? 1.0 : weights_[e];
  }
  const std::vector<double>& weights() const { return weights_; }

  std::uint64_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of v with the edge ids realizing them.
  std::span<const Incidence> neighbours(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  std::uint64_t max_degree() const { return max_degree_; }

  /// Total weight of all edges.
  double total_weight() const;

  /// A copy of this graph with the given edge weights attached.
  Graph with_weights(std::vector<double> weights) const;

 private:
  void build_index();

  std::uint64_t n_;
  std::vector<Edge> edges_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> offsets_;  // size n_+1
  std::vector<Incidence> adj_;          // size 2m
  std::uint64_t max_degree_ = 0;
};

}  // namespace mrlr::graph
