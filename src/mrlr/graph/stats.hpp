#pragma once
// Instance statistics used by benches to label experiment rows.

#include <cstdint>

#include "mrlr/graph/graph.hpp"

namespace mrlr::graph {

struct GraphStats {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t max_degree = 0;
  double avg_degree = 0.0;
  double density_exponent = 0.0;  ///< c such that m = n^{1+c}
  std::uint64_t isolated_vertices = 0;
};

GraphStats compute_stats(const Graph& g);

/// Number of connected components (union-find).
std::uint64_t connected_components(const Graph& g);

}  // namespace mrlr::graph
