#include "mrlr/graph/validate.hpp"

#include <algorithm>
#include <unordered_set>

#include "mrlr/util/require.hpp"

namespace mrlr::graph {

bool is_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  std::vector<char> used(g.num_vertices(), 0);
  for (const EdgeId e : matching) {
    if (e >= g.num_edges()) return false;
    const Edge& ed = g.edge(e);
    if (used[ed.u] || used[ed.v]) return false;
    used[ed.u] = used[ed.v] = 1;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching) {
  if (!is_matching(g, matching)) return false;
  std::vector<char> used(g.num_vertices(), 0);
  for (const EdgeId e : matching) {
    used[g.edge(e).u] = used[g.edge(e).v] = 1;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!used[g.edge(e).u] && !used[g.edge(e).v]) return false;
  }
  return true;
}

bool is_b_matching(const Graph& g, const std::vector<EdgeId>& matching,
                   const std::vector<std::uint32_t>& b) {
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  std::vector<std::uint32_t> load(g.num_vertices(), 0);
  std::unordered_set<EdgeId> distinct;
  for (const EdgeId e : matching) {
    if (e >= g.num_edges()) return false;
    if (!distinct.insert(e).second) return false;  // duplicate edge
    ++load[g.edge(e).u];
    ++load[g.edge(e).v];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (load[v] > b[v]) return false;
  }
  return true;
}

double matching_weight(const Graph& g, const std::vector<EdgeId>& matching) {
  double s = 0.0;
  for (const EdgeId e : matching) s += g.weight(e);
  return s;
}

bool is_independent_set(const Graph& g, const std::vector<VertexId>& set) {
  std::vector<char> in(g.num_vertices(), 0);
  for (const VertexId v : set) {
    if (v >= g.num_vertices()) return false;
    in[v] = 1;
  }
  for (const VertexId v : set) {
    for (const Incidence& inc : g.neighbours(v)) {
      if (in[inc.neighbour]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<VertexId>& set) {
  if (!is_independent_set(g, set)) return false;
  std::vector<char> dominated(g.num_vertices(), 0);
  for (const VertexId v : set) {
    dominated[v] = 1;
    for (const Incidence& inc : g.neighbours(v)) dominated[inc.neighbour] = 1;
  }
  return std::all_of(dominated.begin(), dominated.end(),
                     [](char c) { return c != 0; });
}

bool is_clique(const Graph& g, const std::vector<VertexId>& set) {
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(g.num_edges() * 2);
  for (const Edge& e : g.edges()) {
    const std::uint64_t a = std::min(e.u, e.v);
    const std::uint64_t b = std::max(e.u, e.v);
    edges.insert((a << 32) | b);
  }
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i] >= g.num_vertices()) return false;
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      const std::uint64_t a = std::min(set[i], set[j]);
      const std::uint64_t b = std::max(set[i], set[j]);
      if (a == b) return false;  // duplicate vertex
      if (!edges.contains((a << 32) | b)) return false;
    }
  }
  return true;
}

bool is_maximal_clique(const Graph& g, const std::vector<VertexId>& set) {
  if (!is_clique(g, set)) return false;
  std::vector<char> in(g.num_vertices(), 0);
  for (const VertexId v : set) in[v] = 1;
  // A vertex u extends the clique iff it is adjacent to every member.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (in[u]) continue;
    std::uint64_t adjacent = 0;
    for (const Incidence& inc : g.neighbours(u)) {
      if (in[inc.neighbour]) ++adjacent;
    }
    if (adjacent == set.size()) return false;
  }
  return true;
}

bool is_vertex_cover(const Graph& g, const std::vector<VertexId>& cover) {
  std::vector<char> in(g.num_vertices(), 0);
  for (const VertexId v : cover) {
    if (v >= g.num_vertices()) return false;
    in[v] = 1;
  }
  for (const Edge& e : g.edges()) {
    if (!in[e.u] && !in[e.v]) return false;
  }
  return true;
}

double vertex_set_weight(const std::vector<double>& vertex_weights,
                         const std::vector<VertexId>& set) {
  double s = 0.0;
  for (const VertexId v : set) s += vertex_weights[v];
  return s;
}

bool is_proper_vertex_colouring(const Graph& g,
                                const std::vector<std::uint32_t>& colour) {
  if (colour.size() != g.num_vertices()) return false;
  for (const Edge& e : g.edges()) {
    if (colour[e.u] == colour[e.v]) return false;
  }
  return true;
}

bool is_proper_edge_colouring(const Graph& g,
                              const std::vector<std::uint32_t>& colour) {
  if (colour.size() != g.num_edges()) return false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::unordered_set<std::uint32_t> seen;
    for (const Incidence& inc : g.neighbours(v)) {
      if (!seen.insert(colour[inc.edge]).second) return false;
    }
  }
  return true;
}

std::uint64_t num_colours(const std::vector<std::uint32_t>& colour) {
  const std::unordered_set<std::uint32_t> distinct(colour.begin(),
                                                   colour.end());
  return distinct.size();
}

bool has_parallel_edges(const Graph& g) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(g.num_edges() * 2);
  for (const Edge& e : g.edges()) {
    const std::uint64_t a = std::min(e.u, e.v);
    const std::uint64_t b = std::max(e.u, e.v);
    if (!seen.insert((a << 32) | b).second) return true;
  }
  return false;
}

}  // namespace mrlr::graph
