#pragma once
// Binary graph container (.mgb), the fast path for paper-scale inputs
// (m = n^{1+c} edges): fixed-width little-endian blocks that stream in
// chunks, so neither side ever needs a second in-memory copy of the
// edge list, plus a trailing checksum so truncation or bit rot fails
// loudly instead of feeding a corrupt instance to an experiment.
//
// Layout (all fields little-endian):
//
//   offset  size  field
//   0       4     magic      0x3142474D ("MGB1")
//   4       4     version    1
//   8       8     n          vertex count (<= 2^32)
//   16      8     m          edge count
//   24      4     flags      bit 0: weighted; other bits must be zero
//   28      4     reserved   must be zero
//   32      8m    edges      m x { u32 u, u32 v }, endpoints < n, u != v
//   .       8m    weights    m x f64, finite and > 0 (present iff weighted)
//   .       8     checksum   order-dependent 64-bit mix of n, m, flags,
//                            every edge, and every weight bit pattern
//
// Readers throw graph::ParseError on bad magic, unsupported version,
// nonzero reserved bits, out-of-range or self-loop endpoints, bad
// weights, truncated blocks, checksum mismatch, or trailing bytes.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "mrlr/graph/graph.hpp"
#include "mrlr/graph/io.hpp"

namespace mrlr::graph {

inline constexpr std::uint32_t kMgbMagic = 0x3142474Du;  // "MGB1"
inline constexpr std::uint32_t kMgbVersion = 1;

/// Incremental .mgb writer for generator pipelines: declare (n, m,
/// weighted) up front, append the edge block and then the weight block
/// in chunks of any size, and finish() to emit the checksum trailer.
/// Appending more (or finishing with fewer) elements than declared is
/// API misuse and aborts via MRLR_REQUIRE.
class MgbWriter {
 public:
  MgbWriter(std::ostream& os, std::uint64_t n, std::uint64_t m,
            bool weighted);
  ~MgbWriter();

  MgbWriter(const MgbWriter&) = delete;
  MgbWriter& operator=(const MgbWriter&) = delete;

  void append_edges(std::span<const Edge> edges);
  void append_weights(std::span<const double> weights);
  void finish();

 private:
  std::ostream& os_;
  std::uint64_t n_;
  std::uint64_t m_;
  bool weighted_;
  std::uint64_t edges_written_ = 0;
  std::uint64_t weights_written_ = 0;
  std::uint64_t checksum_;
  bool finished_ = false;
};

/// Writes a graph as a .mgb stream (header, edge block, weight block
/// when weighted, checksum trailer).
void write_mgb(const Graph& g, std::ostream& os);
void write_mgb(const GraphData& d, std::ostream& os);

/// Writes the sub-graph induced by `edge_ids` (ids into g.edges(), in
/// the given order) as a complete .mgb stream: same vertex universe and
/// weighted flag as `g`, m = edge_ids.size(). This is the partition
/// block the job bootstrap ships — a worker parses it with the ordinary
/// .mgb reader, full validation and checksum included.
void write_mgb_subset(const Graph& g, std::span<const EdgeId> edge_ids,
                      std::ostream& os);

/// In-memory .mgb round trips for wire shipping: the byte vector is a
/// complete .mgb stream (bit-exact weights, so a reconstructed instance
/// hashes identically to the original).
std::vector<std::byte> serialize_mgb(const Graph& g);
Graph parse_mgb(std::span<const std::byte> bytes);

/// Parses a .mgb stream in chunks, validating as it goes. Throws
/// ParseError on any malformed input; the stream must end right after
/// the checksum.
Graph read_mgb(std::istream& is);

/// As read_mgb, but stops at the data layer (no CSR index).
GraphData read_mgb_data(std::istream& is);

}  // namespace mrlr::graph
