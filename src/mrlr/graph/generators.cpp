#include "mrlr/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::graph {

namespace {

/// Packs an undirected edge into a canonical 64-bit key for dedup.
/// Both endpoints must fit in 32 bits — max_simple_edges enforces the
/// kMaxGeneratorVertices bound before any generator reaches here.
std::uint64_t edge_key(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

std::uint64_t max_simple_edges(std::uint64_t n) {
  MRLR_REQUIRE(n <= kMaxGeneratorVertices,
               "generators: n exceeds the 32-bit vertex-id / edge_key "
               "packing limit (2^32)");
  // Divide the even factor first so the product never wraps: for
  // n = 2^32 the result 2^31 * (2^32 - 1) still fits in 64 bits.
  return (n % 2 == 0) ? (n / 2) * (n - 1) : n * ((n - 1) / 2);
}

Graph gnm(std::uint64_t n, std::uint64_t m, Rng& rng) {
  MRLR_REQUIRE(n >= 2 || m == 0, "gnm needs at least two vertices for edges");
  const std::uint64_t max_edges = max_simple_edges(n);
  MRLR_REQUIRE(m <= max_edges, "gnm: too many edges requested");

  std::vector<Edge> edges;
  edges.reserve(m);
  if (m > max_edges / 2) {
    // Dense case: enumerate all pairs and sample m of them.
    std::vector<Edge> all;
    all.reserve(max_edges);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) all.push_back({u, v});
    }
    const auto pick = rng.sample_without_replacement(max_edges, m);
    for (const auto i : pick) edges.push_back(all[i]);
  } else {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(m * 2);
    while (edges.size() < m) {
      const auto u = static_cast<VertexId>(rng.uniform(n));
      const auto v = static_cast<VertexId>(rng.uniform(n));
      if (u == v) continue;
      if (seen.insert(edge_key(u, v)).second) {
        edges.push_back({std::min(u, v), std::max(u, v)});
      }
    }
  }
  return Graph(n, std::move(edges));
}

Graph gnm_density(std::uint64_t n, double c, Rng& rng) {
  const std::uint64_t max_edges = max_simple_edges(n);
  const std::uint64_t m = std::min(ipow_real(n, 1.0 + c), max_edges);
  return gnm(n, m, rng);
}

Graph gnp(std::uint64_t n, double p, Rng& rng) {
  MRLR_REQUIRE(p >= 0.0 && p <= 1.0, "gnp: p out of range");
  const std::uint64_t total = max_simple_edges(n);  // also guards n <= 2^32
  std::vector<Edge> edges;
  if (p > 0.0) {
    // Geometric skipping so the cost is O(m), not O(n^2), for small p.
    const double log1mp = std::log1p(-p);
    if (p >= 1.0 || log1mp == 0.0) {
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
      }
    } else {
      std::uint64_t idx = 0;
      while (true) {
        const double u01 = std::max(rng.uniform01(), 0x1.0p-53);
        const auto skip =
            static_cast<std::uint64_t>(std::log(u01) / log1mp) + 1;
        if (skip > total - idx) break;
        idx += skip;
        // Decode linear index idx-1 into the (u, v) pair.
        const std::uint64_t k = idx - 1;
        // Row u satisfies k in [S(u), S(u+1)) where S(u) = u*n - u(u+3)/2... use search.
        std::uint64_t lo = 0, hi = n - 1;
        auto row_start = [&](std::uint64_t u) {
          return u * (2 * n - u - 1) / 2;
        };
        while (lo < hi) {
          const std::uint64_t mid = (lo + hi + 1) / 2;
          if (row_start(mid) <= k) {
            lo = mid;
          } else {
            hi = mid - 1;
          }
        }
        const std::uint64_t u = lo;
        const std::uint64_t v = u + 1 + (k - row_start(u));
        edges.push_back(
            {static_cast<VertexId>(u), static_cast<VertexId>(v)});
        if (idx >= total) break;
      }
    }
  }
  return Graph(n, std::move(edges));
}

Graph chung_lu_power_law(std::uint64_t n, std::uint64_t m, double beta,
                         Rng& rng, const ChungLuOptions& opts) {
  MRLR_REQUIRE(beta > 2.0, "chung_lu: beta must exceed 2");
  MRLR_REQUIRE(n >= 2, "chung_lu: need at least two vertices");
  // Target weights w_v ~ (v+1)^{-1/(beta-1)}, normalized so that
  // sum_v w_v = 2m (expected degree sum).
  std::vector<double> w(n);
  double total = 0.0;
  const double exponent = -1.0 / (beta - 1.0);
  for (std::uint64_t v = 0; v < n; ++v) {
    w[v] = std::pow(static_cast<double>(v + 1), exponent);
    total += w[v];
  }
  const double scale = 2.0 * static_cast<double>(m) / total;
  for (auto& x : w) x *= scale;
  const double sum_w = 2.0 * static_cast<double>(m);

  // Sample endpoints proportionally to w via the alias-free CDF method;
  // dedupe and reject self loops. Expected output close to m edges.
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (std::uint64_t v = 0; v < n; ++v) {
    acc += w[v] / sum_w;
    cdf[v] = acc;
  }
  auto draw = [&]() -> VertexId {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<VertexId>(it == cdf.end() ? n - 1
                                                 : it - cdf.begin());
  };

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  const std::uint64_t target = std::min(m, max_simple_edges(n));
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts =
      opts.max_attempts != 0 ? opts.max_attempts : 20 * target + 1000;
  while (edges.size() < target && attempts < max_attempts) {
    ++attempts;
    const VertexId u = draw();
    const VertexId v = draw();
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) {
      edges.push_back({std::min(u, v), std::max(u, v)});
    }
  }
  const std::uint64_t shortfall = target - edges.size();
  if (opts.shortfall != nullptr) *opts.shortfall = shortfall;
  if (shortfall > 0) {
    if (opts.strict) {
      throw GeneratorError(
          "chung_lu: attempt budget exhausted at " +
          std::to_string(edges.size()) + " of " + std::to_string(target) +
          " requested edges");
    }
    if (opts.shortfall == nullptr) {
      std::fprintf(stderr,
                   "mrlr: warning: chung_lu produced %llu of %llu "
                   "requested edges (attempt budget exhausted)\n",
                   static_cast<unsigned long long>(edges.size()),
                   static_cast<unsigned long long>(target));
    }
  }
  return Graph(n, std::move(edges));
}

Graph random_bipartite(std::uint64_t n_left, std::uint64_t n_right,
                       std::uint64_t m, Rng& rng) {
  MRLR_REQUIRE(n_left + n_right <= kMaxGeneratorVertices &&
                   n_left <= n_left + n_right,
               "random_bipartite: n exceeds the 32-bit vertex-id limit");
  // With both sides bounded by 2^32 and their sum too, the product is
  // at most 2^62 and cannot wrap.
  MRLR_REQUIRE(m <= n_left * n_right, "random_bipartite: too many edges");
  const std::uint64_t n = n_left + n_right;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  if (m > n_left * n_right / 2) {
    std::vector<Edge> all;
    all.reserve(n_left * n_right);
    for (VertexId u = 0; u < n_left; ++u) {
      for (std::uint64_t r = 0; r < n_right; ++r) {
        all.push_back({u, static_cast<VertexId>(n_left + r)});
      }
    }
    const auto pick = rng.sample_without_replacement(all.size(), m);
    for (const auto i : pick) edges.push_back(all[i]);
  } else {
    while (edges.size() < m) {
      const auto u = static_cast<VertexId>(rng.uniform(n_left));
      const auto v = static_cast<VertexId>(n_left + rng.uniform(n_right));
      if (seen.insert(edge_key(u, v)).second) edges.push_back({u, v});
    }
  }
  return Graph(n, std::move(edges));
}

Graph circulant(std::uint64_t n, std::uint64_t d) {
  MRLR_REQUIRE(d % 2 == 0 && d < n, "circulant: d must be even and < n");
  std::vector<Edge> edges;
  edges.reserve(n * d / 2);
  // Each (v, k) pair with k <= d/2 yields a distinct chord {v, v+k mod n}
  // (the reverse direction would need offset n-k > d/2), except the
  // antipodal chord 2k = n which both endpoints generate.
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t k = 1; k <= d / 2; ++k) {
      const std::uint64_t u = (v + k) % n;
      if (2 * k == n && v > u) continue;  // antipodal chord counted once
      edges.push_back({static_cast<VertexId>(std::min(v, u)),
                       static_cast<VertexId>(std::max(v, u))});
    }
  }
  return Graph(n, std::move(edges));
}

Graph complete(std::uint64_t n) {
  std::vector<Edge> edges;
  edges.reserve(max_simple_edges(n));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph(n, std::move(edges));
}

Graph star(std::uint64_t n) {
  MRLR_REQUIRE(n >= 1, "star: need a hub");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) edges.push_back({0, v});
  return Graph(n, std::move(edges));
}

Graph path(std::uint64_t n) {
  std::vector<Edge> edges;
  if (n >= 2) {
    edges.reserve(n - 1);
    for (VertexId v = 0; v + 1 < n; ++v) {
      edges.push_back({v, static_cast<VertexId>(v + 1)});
    }
  }
  return Graph(n, std::move(edges));
}

Graph cycle(std::uint64_t n) {
  MRLR_REQUIRE(n >= 3, "cycle: need at least three vertices");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto u = static_cast<VertexId>((v + 1) % n);
    edges.push_back({std::min(u, v), std::max(u, v)});
  }
  // Canonical de-dup: the loop above adds each edge once because each edge
  // {v, v+1} is emitted at v only; the wrap edge {n-1, 0} is emitted at n-1.
  return Graph(n, std::move(edges));
}

Graph planted_clique(std::uint64_t n, std::uint64_t m, std::uint64_t k,
                     Rng& rng) {
  MRLR_REQUIRE(k <= n, "planted_clique: clique too large");
  Graph base = gnm(n, m, rng);
  const auto members = rng.sample_without_replacement(n, k);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges = base.edges();
  seen.reserve(edges.size() * 2);
  for (const Edge& e : edges) seen.insert(edge_key(e.u, e.v));
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const auto u = static_cast<VertexId>(members[i]);
      const auto v = static_cast<VertexId>(members[j]);
      if (seen.insert(edge_key(u, v)).second) {
        edges.push_back({std::min(u, v), std::max(u, v)});
      }
    }
  }
  return Graph(n, std::move(edges));
}

namespace {
double draw_weight(WeightDist dist, Rng& rng) {
  switch (dist) {
    case WeightDist::kUniform:
      return rng.uniform_real(1.0, 100.0);
    case WeightDist::kExponential:
      return 1.0 + 10.0 * rng.exponential(1.0);
    case WeightDist::kIntegral:
      return static_cast<double>(rng.uniform_int(1, 1000));
    case WeightDist::kPolarized:
      return rng.bernoulli(0.1) ? rng.uniform_real(1000.0, 2000.0)
                                : rng.uniform_real(1.0, 2.0);
  }
  return 1.0;
}
}  // namespace

std::vector<double> random_edge_weights(const Graph& g, WeightDist dist,
                                        Rng& rng) {
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = draw_weight(dist, rng);
  return w;
}

std::vector<double> random_vertex_weights(std::uint64_t n, WeightDist dist,
                                          Rng& rng) {
  std::vector<double> w(n);
  for (auto& x : w) x = draw_weight(dist, rng);
  return w;
}

}  // namespace mrlr::graph
