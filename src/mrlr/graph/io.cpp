#include "mrlr/graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "mrlr/util/require.hpp"

namespace mrlr::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.num_vertices() << ' ' << g.num_edges()
     << (g.weighted() ? " weighted" : "") << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    os << ed.u << ' ' << ed.v;
    if (g.weighted()) os << ' ' << g.weight(e);
    os << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  MRLR_REQUIRE(next_content_line(), "edge list: missing header");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  std::string flag;
  header >> n >> m >> flag;
  const bool weighted = flag == "weighted";

  std::vector<Edge> edges;
  std::vector<double> weights;
  edges.reserve(m);
  if (weighted) weights.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    MRLR_REQUIRE(next_content_line(), "edge list: truncated file");
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    ls >> u >> v;
    MRLR_REQUIRE(u < n && v < n, "edge list: endpoint out of range");
    edges.push_back(
        {static_cast<VertexId>(u), static_cast<VertexId>(v)});
    if (weighted) {
      double w = 0.0;
      ls >> w;
      weights.push_back(w);
    }
  }
  return weighted ? Graph(n, std::move(edges), std::move(weights))
                  : Graph(n, std::move(edges));
}

}  // namespace mrlr::graph
