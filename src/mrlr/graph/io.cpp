#include "mrlr/graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <span>
#include <string>

#include "mrlr/util/require.hpp"

namespace mrlr::graph {

namespace {

[[noreturn]] void fail(std::uint64_t line_no, const std::string& what) {
  throw ParseError("edge list: line " + std::to_string(line_no) + ": " +
                   what);
}

/// Token walker over one line. std::from_chars does not skip leading
/// whitespace, so the cursor does; tokens are maximal runs of
/// non-blank characters.
struct Cursor {
  const char* p;
  const char* end;

  void skip_blanks() {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
  }
  bool at_end() {
    skip_blanks();
    return p == end;
  }
  std::string_view token() {
    skip_blanks();
    const char* start = p;
    while (p < end && *p != ' ' && *p != '\t') ++p;
    return {start, static_cast<std::size_t>(p - start)};
  }
};

std::uint64_t parse_u64(Cursor& c, std::uint64_t line_no, const char* what) {
  c.skip_blanks();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(c.p, c.end, value);
  if (ec != std::errc{} || ptr == c.p) {
    fail(line_no, std::string("expected ") + what);
  }
  c.p = ptr;
  return value;
}

double parse_weight(Cursor& c, std::uint64_t line_no) {
  c.skip_blanks();
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(c.p, c.end, value);
  if (ec != std::errc{} || ptr == c.p) fail(line_no, "missing edge weight");
  if (!std::isfinite(value) || value <= 0.0) {
    fail(line_no, "edge weight must be finite and positive");
  }
  c.p = ptr;
  return value;
}

// Batched std::to_chars formatting: doubles use the shortest
// round-trip representation, so a text round trip preserves weights
// exactly.
void write_edge_list_impl(std::uint64_t n, bool weighted,
                          std::span<const Edge> edges,
                          std::span<const double> weights,
                          std::ostream& os) {
  MRLR_REQUIRE(!weighted || weights.size() == edges.size(),
               "edge list: weighted graph data must carry one weight per "
               "edge");
  std::string buf;
  constexpr std::size_t kFlushAt = std::size_t{1} << 16;
  buf.reserve(kFlushAt + 128);
  char tmp[64];
  const auto append_u64 = [&](std::uint64_t v) {
    const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    buf.append(tmp, ptr);
  };
  const auto append_double = [&](double v) {
    const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    buf.append(tmp, ptr);
  };

  append_u64(n);
  buf += ' ';
  append_u64(edges.size());
  if (weighted) buf += " weighted";
  buf += '\n';
  for (std::size_t e = 0; e < edges.size(); ++e) {
    append_u64(edges[e].u);
    buf += ' ';
    append_u64(edges[e].v);
    if (weighted) {
      buf += ' ';
      append_double(weights[e]);
    }
    buf += '\n';
    if (buf.size() >= kFlushAt) {
      os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace

Graph GraphData::build() && {
  return weights.empty() ? Graph(n, std::move(edges))
                         : Graph(n, std::move(edges), std::move(weights));
}

void write_edge_list(const Graph& g, std::ostream& os) {
  write_edge_list_impl(g.num_vertices(), g.weighted(), g.edges(),
                       g.weights(), os);
}

void write_edge_list(const GraphData& d, std::ostream& os) {
  write_edge_list_impl(d.n, d.weighted, d.edges, d.weights, os);
}

GraphData read_edge_list_data(std::istream& is) {
  std::string line;
  std::uint64_t line_no = 0;
  const auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos || line[i] == '#') continue;
      return true;
    }
    return false;
  };
  const auto cursor = [&]() {
    return Cursor{line.data(), line.data() + line.size()};
  };

  if (!next_content_line()) throw ParseError("edge list: missing header");
  Cursor h = cursor();
  const std::uint64_t n = parse_u64(h, line_no, "vertex count in header");
  const std::uint64_t m = parse_u64(h, line_no, "edge count in header");
  bool weighted = false;
  if (!h.at_end()) {
    const std::string_view flag = h.token();
    if (flag != "weighted") {
      fail(line_no, "unrecognized header flag '" + std::string(flag) + "'");
    }
    weighted = true;
  }
  if (!h.at_end()) fail(line_no, "trailing characters after header");
  if (n > kMaxVertexCount) {
    fail(line_no, "vertex count exceeds the 32-bit vertex-id limit");
  }

  GraphData d;
  d.n = n;
  d.weighted = weighted;
  d.edges.reserve(std::min(m, kIoReserveCap));
  if (weighted) d.weights.reserve(std::min(m, kIoReserveCap));
  for (std::uint64_t i = 0; i < m; ++i) {
    if (!next_content_line()) {
      throw ParseError("edge list: truncated file: " + std::to_string(i) +
                       " of " + std::to_string(m) + " edges read");
    }
    Cursor c = cursor();
    const std::uint64_t u = parse_u64(c, line_no, "source endpoint");
    const std::uint64_t v = parse_u64(c, line_no, "target endpoint");
    if (u >= n || v >= n) fail(line_no, "endpoint out of range");
    if (u == v) fail(line_no, "self-loop");
    d.edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    if (weighted) d.weights.push_back(parse_weight(c, line_no));
    if (!c.at_end()) fail(line_no, "trailing characters after edge");
  }
  return d;
}

Graph read_edge_list(std::istream& is) {
  return read_edge_list_data(is).build();
}

}  // namespace mrlr::graph
