#include "mrlr/graph/graph.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::graph {

Graph::Graph(std::uint64_t num_vertices, std::vector<Edge> edges)
    : n_(num_vertices), edges_(std::move(edges)) {
  build_index();
}

Graph::Graph(std::uint64_t num_vertices, std::vector<Edge> edges,
             std::vector<double> weights)
    : n_(num_vertices), edges_(std::move(edges)), weights_(std::move(weights)) {
  MRLR_REQUIRE(weights_.empty() || weights_.size() == edges_.size(),
               "weight vector must match edge count");
  build_index();
}

void Graph::build_index() {
  offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges_) {
    MRLR_REQUIRE(e.u < n_ && e.v < n_, "edge endpoint out of range");
    MRLR_REQUIRE(e.u != e.v, "self-loops are not supported");
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::uint64_t v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  adj_.resize(2 * edges_.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const Edge& ed = edges_[e];
    adj_[cursor[ed.u]++] = Incidence{ed.v, e};
    adj_[cursor[ed.v]++] = Incidence{ed.u, e};
  }
  max_degree_ = 0;
  for (std::uint64_t v = 0; v < n_; ++v) {
    max_degree_ = std::max(max_degree_, degree(static_cast<VertexId>(v)));
  }
}

double Graph::total_weight() const {
  double s = 0.0;
  for (EdgeId e = 0; e < edges_.size(); ++e) s += weight(e);
  return s;
}

Graph Graph::with_weights(std::vector<double> weights) const {
  return Graph(n_, edges_, std::move(weights));
}

}  // namespace mrlr::graph
