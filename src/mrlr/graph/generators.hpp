#pragma once
// Synthetic instance generators.
//
// The paper's theorems are distribution-free but parameterized by the
// density exponent c (m = n^{1+c} edges); Leskovec et al. observed real
// graphs with c between 0.08 and 0.5+, so the generators sweep that range.
// All generators are deterministic given their Rng.

#include <cstdint>
#include <stdexcept>

#include "mrlr/graph/graph.hpp"
#include "mrlr/util/rng.hpp"

namespace mrlr::graph {

/// Thrown by generators that cannot honour their contract at runtime
/// (currently: chung_lu_power_law under ChungLuOptions::strict when the
/// attempt budget runs out before m edges are produced).
class GeneratorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The random generators dedupe candidate edges through a 64-bit packed
/// key (32 bits per endpoint), and VertexId itself is 32 bits, so every
/// generator requires n <= 2^32 — the library-wide kMaxVertexCount.
inline constexpr std::uint64_t kMaxGeneratorVertices = kMaxVertexCount;

/// n*(n-1)/2 — the edge count of K_n — computed without overflow for
/// any n <= kMaxGeneratorVertices; aborts (MRLR_REQUIRE) above that.
/// The naive expression n*(n-1)/2 wraps for n >= 2^32 and would
/// silently mis-size every density computation built on it.
std::uint64_t max_simple_edges(std::uint64_t n);

/// Uniform random simple graph with exactly m distinct edges (G(n,m)).
/// Requires m <= max_simple_edges(n).
Graph gnm(std::uint64_t n, std::uint64_t m, Rng& rng);

/// G(n, m = round(n^{1+c})), clamped to the complete graph. The standard
/// instance family for the paper's bounds.
Graph gnm_density(std::uint64_t n, double c, Rng& rng);

/// Erdos-Renyi G(n,p); expected m = p * n(n-1)/2.
Graph gnp(std::uint64_t n, double p, Rng& rng);

/// Knobs for chung_lu_power_law's rejection-sampling loop. The sampler
/// can exhaust its attempt budget before reaching m edges (skewed
/// weight sequences concentrate draws on few vertices); the shortfall
/// is never silent: strict mode throws GeneratorError, otherwise it is
/// written to *shortfall when given and warned to stderr when not.
struct ChungLuOptions {
  bool strict = false;                  ///< throw on shortfall
  std::uint64_t max_attempts = 0;       ///< 0 = default 20*m + 1000
  std::uint64_t* shortfall = nullptr;   ///< out: requested - produced
};

/// Chung-Lu power-law graph: vertex v gets weight ~ (v+1)^{-1/(beta-1)},
/// scaled so the expected edge count is approximately m. Produces the
/// heavy-tailed degree distributions of social networks; beta in (2, 3]
/// is typical. See ChungLuOptions for shortfall handling.
Graph chung_lu_power_law(std::uint64_t n, std::uint64_t m, double beta,
                         Rng& rng, const ChungLuOptions& opts = {});

/// Random bipartite graph: left vertices [0, n_left), right vertices
/// [n_left, n_left + n_right), m distinct cross edges.
Graph random_bipartite(std::uint64_t n_left, std::uint64_t n_right,
                       std::uint64_t m, Rng& rng);

/// Deterministic circulant graph: each vertex v is adjacent to
/// v +- 1, ..., v +- d/2 (mod n), giving a d-regular graph for even d < n.
Graph circulant(std::uint64_t n, std::uint64_t d);

/// Complete graph K_n.
Graph complete(std::uint64_t n);

/// Star with one hub (vertex 0) and n-1 leaves.
Graph star(std::uint64_t n);

/// Simple path 0-1-...-(n-1).
Graph path(std::uint64_t n);

/// Cycle on n >= 3 vertices.
Graph cycle(std::uint64_t n);

/// G(n,m) with a planted clique on k random vertices; the clique edges
/// are included in addition to the random ones (deduplicated).
Graph planted_clique(std::uint64_t n, std::uint64_t m, std::uint64_t k,
                     Rng& rng);

/// Weight distributions for weighted problem instances.
enum class WeightDist {
  kUniform,      ///< uniform real in [1, 100)
  kExponential,  ///< exp(1) scaled by 10, shifted by 1 (heavy tail)
  kIntegral,     ///< uniform integer in [1, 1000]
  kPolarized,    ///< mixture: 90% in [1,2), 10% in [1000, 2000) -- forces
                 ///< algorithms to respect weights, not just cardinality
};

/// Edge weights for g drawn from dist.
std::vector<double> random_edge_weights(const Graph& g, WeightDist dist,
                                        Rng& rng);

/// Vertex weights (for vertex cover instances).
std::vector<double> random_vertex_weights(std::uint64_t n, WeightDist dist,
                                          Rng& rng);

}  // namespace mrlr::graph
