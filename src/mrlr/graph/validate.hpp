#pragma once
// Solution validators: every invariant an algorithm output must satisfy
// is checked by an independent validator here (tests never trust the
// algorithm's own bookkeeping).

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::graph {

/// True if the edge set contains no two edges sharing an endpoint.
bool is_matching(const Graph& g, const std::vector<EdgeId>& matching);

/// True if `matching` is a matching and no edge of g can be added to it.
bool is_maximal_matching(const Graph& g, const std::vector<EdgeId>& matching);

/// True if no vertex v is used by more than b(v) edges.
bool is_b_matching(const Graph& g, const std::vector<EdgeId>& matching,
                   const std::vector<std::uint32_t>& b);

double matching_weight(const Graph& g, const std::vector<EdgeId>& matching);

/// True if no two vertices of `set` are adjacent.
bool is_independent_set(const Graph& g, const std::vector<VertexId>& set);

/// True if `set` is independent and every vertex outside it has a
/// neighbour inside it.
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<VertexId>& set);

/// True if every pair of vertices in `set` is adjacent.
bool is_clique(const Graph& g, const std::vector<VertexId>& set);

/// True if `set` is a clique and no vertex can be added keeping it one.
bool is_maximal_clique(const Graph& g, const std::vector<VertexId>& set);

/// True if every edge has at least one endpoint in `cover`.
bool is_vertex_cover(const Graph& g, const std::vector<VertexId>& cover);

double vertex_set_weight(const std::vector<double>& vertex_weights,
                         const std::vector<VertexId>& set);

/// True if `colour` (size n) assigns different colours to adjacent
/// vertices. Colours are arbitrary non-negative integers.
bool is_proper_vertex_colouring(const Graph& g,
                                const std::vector<std::uint32_t>& colour);

/// True if `colour` (size m) assigns different colours to edges sharing
/// an endpoint.
bool is_proper_edge_colouring(const Graph& g,
                              const std::vector<std::uint32_t>& colour);

/// Number of distinct colours used.
std::uint64_t num_colours(const std::vector<std::uint32_t>& colour);

/// True if the edge list contains two copies of the same vertex pair.
bool has_parallel_edges(const Graph& g);

}  // namespace mrlr::graph
