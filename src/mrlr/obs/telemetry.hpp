#pragma once
// Runtime telemetry: where wall-clock time goes *inside* a round.
//
// The engine's Metrics record the paper's cost model (rounds, words per
// machine, communication); this recorder captures the systems cost
// model — callback compute vs. arena merge vs. fork/serialize/transport
// vs. central scan — as steady-clock spans over a static phase
// taxonomy, plus monotonically-named counters (slab reuses, frames on
// the wire). Telemetry is always compiled in and OFF by default; when
// disabled, the only cost at every instrumentation site is one relaxed
// atomic load. It never touches the data plane, so enabling it must not
// change any determinism hash (tests pin this).
//
// Process model: the recorder is a process-wide singleton. The
// process-sharded backend forks workers per round; each worker inherits
// the recorder state (including the enabled flag and the clock epoch —
// steady_clock is CLOCK_MONOTONIC, shared by all processes on a host),
// takes a Mark at shard start, records spans attributed to its shard,
// and ships everything after the Mark back to the coordinator as a
// kShardTelemetry frame. merge_remote() validates the payload
// (exec::TransportError(kBadPayload) on anything malformed) and appends
// the spans with their original shard/round attribution, so a K=4 run
// yields one coherent profile. Counter deltas recorded after the Mark
// merge additively; the telemetry and status frames a worker writes
// *after* serializing are the one wire cost not attributed to the
// worker (the coordinator's receive-side counters still see them).
//
// Threading: record_span/add_counter take a mutex (contention is
// negligible — a handful of events per round); enable/disable/clear are
// control-plane calls and must not race a running round.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mrlr::obs {

/// Static phase taxonomy. Every span names one of these; free-form
/// detail goes in the span label.
enum class Phase : std::uint8_t {
  kRound = 0,        ///< one whole engine round (callback + merge + audit)
  kCallback,         ///< per-machine user callbacks (executor dispatch)
  kArenaMerge,       ///< sender-id-ordered frame merge after the barrier
  kCentral,          ///< a central-only round's callback phase
  kShardSerialize,   ///< worker: ShardDataPlane::serialize_machines
  kShardTransport,   ///< worker: shipping the data frame over the channel
  kWorkerWait,       ///< coordinator: waiting on one shard's frames
  kIoLoad,           ///< graph file ingestion (.mgb or text)
  kQueueWait,        ///< serve: admitted job waiting for an executor slot
  kJobRun,           ///< serve: one job's execution (fork to result)
};
inline constexpr std::size_t kNumPhases = 10;

/// Spans outside any engine round (e.g. io_load) carry this round id.
inline constexpr std::uint64_t kNoRound = ~std::uint64_t{0};

/// Stable lowercase name used on the wire, in exports, and in
/// BenchResult.extra keys ("round", "callback", "arena_merge", ...).
std::string_view phase_name(Phase p);
std::optional<Phase> phase_from_name(std::string_view name);

struct SpanRecord {
  Phase phase = Phase::kRound;
  std::uint32_t shard = 0;     ///< recording process's shard (0 = coordinator)
  std::uint64_t round = kNoRound;  ///< engine round index, or kNoRound
  std::uint64_t start_ns = 0;  ///< steady-clock ns since the enable() epoch
  std::uint64_t dur_ns = 0;
  std::string label;           ///< free-form detail (round label, file kind)
};

/// Point-in-time copy of the recorder, the unit exports and reports
/// consume.
struct TelemetrySnapshot {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
};

class Telemetry {
 public:
  static Telemetry& instance();

  /// Clears all recorded data, resets the clock epoch, and starts
  /// recording. Not to be called while rounds are in flight.
  void enable();
  /// Stops recording; already-recorded data stays readable.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock ns since the enable() epoch (0 before first enable).
  std::uint64_t now_ns() const;

  /// Records one completed span attributed to this process's shard.
  /// No-op when disabled.
  void record_span(Phase phase, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint64_t round = kNoRound,
                   std::string label = {});

  /// Adds to a named monotonic counter. No-op when disabled.
  void add_counter(std::string_view name, std::uint64_t delta);

  /// Shard attribution for subsequently recorded spans. Forked workers
  /// call this once at shard start; the coordinator stays at 0.
  void set_shard(std::uint32_t shard);
  std::uint32_t shard() const;

  // ---------------------------------------- cross-process shipping --

  /// Recorder position; a forked worker takes one at shard start so it
  /// ships only events recorded after the fork (the COW-inherited
  /// coordinator history must not be duplicated).
  struct Mark {
    std::size_t span_count = 0;
    std::map<std::string, std::uint64_t> counters;
  };
  Mark mark() const;

  /// Wire-encodes spans recorded after `mark` plus counter deltas since
  /// `mark` (little-endian u64 lanes, same discipline as the shard data
  /// plane).
  std::vector<std::byte> serialize_since(const Mark& mark) const;

  /// Decodes and appends a worker's shipped buffer. Every field is
  /// validated; throws exec::TransportError(kBadPayload) on a malformed
  /// payload or when a span's shard does not match `expected_shard`.
  void merge_remote(std::span<const std::byte> bytes,
                    std::uint32_t expected_shard);

  // ------------------------------------------------------ inspection --

  TelemetrySnapshot snapshot() const;
  std::size_t span_count() const;
  /// Copies spans [from, end) — the per-scenario window the bench
  /// runner folds into BenchResult.extra.
  std::vector<SpanRecord> spans_since(std::size_t from) const;
  /// Drops all recorded data (keeps the enabled flag and epoch).
  void clear();

 private:
  Telemetry() = default;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::uint32_t shard_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
  std::vector<SpanRecord> spans_;
  std::map<std::string, std::uint64_t> counters_;
};

/// RAII span: samples the clock on construction and records on
/// destruction. Arms only if telemetry is enabled at construction, so
/// the disabled cost is one relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(Phase phase, std::uint64_t round = kNoRound,
                      std::string label = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Phase phase_;
  std::uint64_t round_;
  std::uint64_t start_ = 0;
  std::string label_;
  bool armed_ = false;
};

/// Counter shorthand for instrumentation sites: one relaxed load when
/// telemetry is off.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  Telemetry& t = Telemetry::instance();
  if (t.enabled()) t.add_counter(name, delta);
}

}  // namespace mrlr::obs
