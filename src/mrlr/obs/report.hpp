#pragma once
// Profile aggregation over a telemetry snapshot: per-phase and
// per-shard totals with self time (total minus time spent in nested
// spans on the same shard track), the table tools/trace_report renders.
//
// Self time is computed per shard by time containment: spans recorded
// by one process nest properly (RAII), so sorting by start and keeping
// an open-span stack attributes each span's duration to its nearest
// enclosing span. Worker spans (shard > 0) overlap the coordinator's
// round span in wall time but live on their own track, so "% of round"
// is measured against the summed kRound durations, not wall time.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "mrlr/obs/telemetry.hpp"

namespace mrlr::obs {

struct PhaseStat {
  std::uint64_t spans = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

struct ShardProfile {
  std::uint32_t shard = 0;
  std::map<Phase, PhaseStat> phases;
};

struct ProfileReport {
  std::map<Phase, PhaseStat> by_phase;  ///< summed over all shards
  std::vector<ShardProfile> by_shard;   ///< ascending shard id
  std::uint64_t round_total_ns = 0;     ///< sum of kRound span durations
  std::map<std::string, std::uint64_t> counters;
};

ProfileReport build_report(const TelemetrySnapshot& snap);

/// Renders the per-phase table, the per-shard breakdown, and the
/// counters. `markdown` emits GitHub-flavoured pipe tables (the CI
/// artifact form); otherwise fixed-width console tables.
void render_report(const ProfileReport& report, std::ostream& os,
                   bool markdown);

}  // namespace mrlr::obs
