#include "mrlr/obs/telemetry.hpp"

#include <cstring>

#include "mrlr/exec/shard_transport.hpp"

namespace mrlr::obs {

namespace {

// Index-aligned with the Phase enum.
constexpr std::string_view kPhaseNames[kNumPhases] = {
    "round",           "callback",        "arena_merge", "central",
    "shard_serialize", "shard_transport", "worker_wait", "io_load",
    "queue_wait",      "job_run",
};

// Wire format version for serialize_since/merge_remote payloads —
// independent of the frame protocol version so the telemetry encoding
// can evolve without a transport version bump.
constexpr std::uint64_t kWireVersion = 1;

// Sanity caps: labels and counter names are short identifiers, never
// bulk data. An adversarial length fails the cap before any allocation.
constexpr std::uint64_t kMaxStringBytes = 1 << 12;

[[noreturn]] void bad_payload(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "telemetry payload: " + what);
}

/// Bounds-checked reader over the shipped byte span (the same cursor
/// discipline as the engine's shard data plane).
struct Cursor {
  std::span<const std::byte> in;

  std::uint64_t u64(const char* what) {
    if (in.size() < 8) bad_payload(std::string("truncated reading ") + what);
    const std::uint64_t v = exec::read_u64(in, 0);
    in = in.subspan(8);
    return v;
  }

  std::string str(std::uint64_t len, const char* what) {
    if (len > kMaxStringBytes) {
      bad_payload(std::string(what) + " length " + std::to_string(len) +
                  " exceeds the cap");
    }
    if (in.size() < len) {
      bad_payload(std::string("truncated reading ") + what);
    }
    std::string s(reinterpret_cast<const char*>(in.data()), len);
    in = in.subspan(len);
    return s;
  }
};

void append_string(std::vector<std::byte>& out, std::string_view s) {
  exec::append_u64(out, s.size());
  const auto n = out.size();
  out.resize(n + s.size());
  if (!s.empty()) std::memcpy(out.data() + n, s.data(), s.size());
}

}  // namespace

std::string_view phase_name(Phase p) {
  return kPhaseNames[static_cast<std::size_t>(p)];
}

std::optional<Phase> phase_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (kPhaseNames[i] == name) return static_cast<Phase>(i);
  }
  return std::nullopt;
}

Telemetry& Telemetry::instance() {
  static Telemetry t;
  return t;
}

void Telemetry::enable() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  counters_.clear();
  shard_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Telemetry::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t Telemetry::now_ns() const {
  if (epoch_.time_since_epoch().count() == 0) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Telemetry::record_span(Phase phase, std::uint64_t start_ns,
                            std::uint64_t end_ns, std::uint64_t round,
                            std::string label) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  spans_.push_back(SpanRecord{phase, shard_, round, start_ns,
                              end_ns >= start_ns ? end_ns - start_ns : 0,
                              std::move(label)});
}

void Telemetry::add_counter(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  counters_[std::string(name)] += delta;
}

void Telemetry::set_shard(std::uint32_t shard) {
  std::lock_guard<std::mutex> lk(mu_);
  shard_ = shard;
}

std::uint32_t Telemetry::shard() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shard_;
}

Telemetry::Mark Telemetry::mark() const {
  std::lock_guard<std::mutex> lk(mu_);
  return Mark{spans_.size(), counters_};
}

std::vector<std::byte> Telemetry::serialize_since(const Mark& mark) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::byte> out;
  exec::append_u64(out, kWireVersion);

  const std::size_t from =
      mark.span_count <= spans_.size() ? mark.span_count : spans_.size();
  exec::append_u64(out, spans_.size() - from);
  for (std::size_t i = from; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    exec::append_u64(out, static_cast<std::uint64_t>(s.phase));
    exec::append_u64(out, s.shard);
    exec::append_u64(out, s.round);
    exec::append_u64(out, s.start_ns);
    exec::append_u64(out, s.dur_ns);
    append_string(out, s.label);
  }

  // Counter deltas since the mark (new counters count from zero).
  std::vector<std::pair<std::string_view, std::uint64_t>> deltas;
  for (const auto& [name, value] : counters_) {
    const auto it = mark.counters.find(name);
    const std::uint64_t base = it == mark.counters.end() ? 0 : it->second;
    if (value > base) deltas.emplace_back(name, value - base);
  }
  exec::append_u64(out, deltas.size());
  for (const auto& [name, delta] : deltas) {
    append_string(out, name);
    exec::append_u64(out, delta);
  }
  return out;
}

void Telemetry::merge_remote(std::span<const std::byte> bytes,
                             std::uint32_t expected_shard) {
  Cursor cur{bytes};
  const std::uint64_t version = cur.u64("wire version");
  if (version != kWireVersion) {
    bad_payload("unsupported wire version " + std::to_string(version));
  }

  const std::uint64_t span_count = cur.u64("span count");
  // Each span costs at least 6 u64 lanes on the wire, so a fabricated
  // count cannot out-allocate the payload backing it.
  if (span_count > cur.in.size() / 48) {
    bad_payload("span count exceeds remaining payload");
  }
  std::vector<SpanRecord> incoming;
  incoming.reserve(span_count);
  for (std::uint64_t i = 0; i < span_count; ++i) {
    const std::uint64_t phase = cur.u64("span phase");
    if (phase >= kNumPhases) {
      bad_payload("unknown phase " + std::to_string(phase));
    }
    const std::uint64_t shard = cur.u64("span shard");
    if (shard != expected_shard) {
      bad_payload("span attributed to shard " + std::to_string(shard) +
                  " arrived from shard " + std::to_string(expected_shard));
    }
    SpanRecord s;
    s.phase = static_cast<Phase>(phase);
    s.shard = static_cast<std::uint32_t>(shard);
    s.round = cur.u64("span round");
    s.start_ns = cur.u64("span start");
    s.dur_ns = cur.u64("span duration");
    s.label = cur.str(cur.u64("label length"), "span label");
    incoming.push_back(std::move(s));
  }

  const std::uint64_t counter_count = cur.u64("counter count");
  if (counter_count > cur.in.size() / 16) {
    bad_payload("counter count exceeds remaining payload");
  }
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  counter_deltas.reserve(counter_count);
  for (std::uint64_t i = 0; i < counter_count; ++i) {
    std::string name = cur.str(cur.u64("counter name length"),
                               "counter name");
    if (name.empty()) bad_payload("empty counter name");
    counter_deltas.emplace_back(std::move(name), cur.u64("counter value"));
  }
  if (!cur.in.empty()) bad_payload("trailing bytes after the last counter");

  std::lock_guard<std::mutex> lk(mu_);
  for (SpanRecord& s : incoming) spans_.push_back(std::move(s));
  for (const auto& [name, delta] : counter_deltas) {
    counters_[name] += delta;
  }
}

TelemetrySnapshot Telemetry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return TelemetrySnapshot{spans_, counters_};
}

std::size_t Telemetry::span_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

std::vector<SpanRecord> Telemetry::spans_since(std::size_t from) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (from >= spans_.size()) return {};
  return {spans_.begin() + static_cast<std::ptrdiff_t>(from), spans_.end()};
}

void Telemetry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  counters_.clear();
}

ScopedSpan::ScopedSpan(Phase phase, std::uint64_t round, std::string label)
    : phase_(phase), round_(round), label_(std::move(label)) {
  Telemetry& t = Telemetry::instance();
  if (t.enabled()) {
    armed_ = true;
    start_ = t.now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  Telemetry& t = Telemetry::instance();
  t.record_span(phase_, start_, t.now_ns(), round_, std::move(label_));
}

}  // namespace mrlr::obs
