#include "mrlr/obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "mrlr/util/table.hpp"

namespace mrlr::obs {

namespace {

std::string fmt_seconds(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) / 1e9);
  return buf;
}

std::string fmt_percent(std::uint64_t part_ns, std::uint64_t whole_ns) {
  if (whole_ns == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(part_ns) /
                    static_cast<double>(whole_ns));
  return buf;
}

void emit_markdown_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows,
                         std::ostream& os) {
  os << "|";
  for (const std::string& h : headers) os << " " << h << " |";
  os << "\n|";
  for (std::size_t i = 0; i < headers.size(); ++i) os << " --- |";
  os << "\n";
  for (const auto& row : rows) {
    os << "|";
    for (const std::string& cell : row) os << " " << cell << " |";
    os << "\n";
  }
}

void emit_table(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows,
                std::ostream& os, bool markdown) {
  if (markdown) {
    emit_markdown_table(headers, rows, os);
    return;
  }
  Table t(headers);
  for (const auto& row : rows) {
    t.row();
    for (const std::string& cell : row) t.cell(cell);
  }
  t.print(os);
}

}  // namespace

ProfileReport build_report(const TelemetrySnapshot& snap) {
  ProfileReport report;
  report.counters = snap.counters;

  // Group span indices by shard, then compute self times per shard by
  // time containment with an open-span stack.
  std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    by_shard[snap.spans[i].shard].push_back(i);
  }

  std::vector<std::uint64_t> self(snap.spans.size(), 0);
  for (auto& [shard, indices] : by_shard) {
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                const SpanRecord& sa = snap.spans[a];
                const SpanRecord& sb = snap.spans[b];
                if (sa.start_ns != sb.start_ns) {
                  return sa.start_ns < sb.start_ns;
                }
                return sa.dur_ns > sb.dur_ns;  // enclosing span first
              });
    struct Open {
      std::uint64_t end_ns;
      std::size_t index;
    };
    std::vector<Open> stack;
    for (const std::size_t i : indices) {
      const SpanRecord& s = snap.spans[i];
      while (!stack.empty() && s.start_ns >= stack.back().end_ns) {
        stack.pop_back();
      }
      self[i] = s.dur_ns;
      if (!stack.empty()) {
        // Attribute this span's time to its nearest enclosing span.
        // Clamp: clock jitter can make a child nominally outlast its
        // parent's remaining self time.
        std::uint64_t& parent_self = self[stack.back().index];
        parent_self -= std::min(parent_self, s.dur_ns);
      }
      stack.push_back(Open{s.start_ns + s.dur_ns, i});
    }
  }

  for (const auto& [shard, indices] : by_shard) {
    ShardProfile profile;
    profile.shard = shard;
    for (const std::size_t i : indices) {
      const SpanRecord& s = snap.spans[i];
      PhaseStat& shard_stat = profile.phases[s.phase];
      shard_stat.spans += 1;
      shard_stat.total_ns += s.dur_ns;
      shard_stat.self_ns += self[i];
      PhaseStat& all_stat = report.by_phase[s.phase];
      all_stat.spans += 1;
      all_stat.total_ns += s.dur_ns;
      all_stat.self_ns += self[i];
      if (s.phase == Phase::kRound) report.round_total_ns += s.dur_ns;
    }
    report.by_shard.push_back(std::move(profile));
  }
  return report;
}

void render_report(const ProfileReport& report, std::ostream& os,
                   bool markdown) {
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [phase, stat] : report.by_phase) {
      rows.push_back({std::string(phase_name(phase)),
                      std::to_string(stat.spans), fmt_seconds(stat.total_ns),
                      fmt_seconds(stat.self_ns),
                      fmt_percent(stat.total_ns, report.round_total_ns)});
    }
    if (markdown) os << "### Per-phase totals\n\n";
    emit_table({"phase", "spans", "total_s", "self_s", "% of round"}, rows,
               os, markdown);
    os << "\n";
  }

  if (report.by_shard.size() > 1) {
    std::vector<std::vector<std::string>> rows;
    for (const ShardProfile& profile : report.by_shard) {
      for (const auto& [phase, stat] : profile.phases) {
        rows.push_back({std::to_string(profile.shard),
                        std::string(phase_name(phase)),
                        std::to_string(stat.spans),
                        fmt_seconds(stat.total_ns),
                        fmt_seconds(stat.self_ns)});
      }
    }
    if (markdown) os << "### Per-shard breakdown\n\n";
    emit_table({"shard", "phase", "spans", "total_s", "self_s"}, rows, os,
               markdown);
    os << "\n";
  }

  if (!report.counters.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, value] : report.counters) {
      rows.push_back({name, std::to_string(value)});
    }
    if (markdown) os << "### Counters\n\n";
    emit_table({"counter", "value"}, rows, os, markdown);
    os << "\n";
  }
}

}  // namespace mrlr::obs
