#pragma once
// Telemetry file formats.
//
//   * JSONL (versioned): line 1 is a header object
//     {"mrlr_telemetry": <version>, "clock": "steady-ns"}; every
//     following line is one span or counter object. Line-oriented so
//     files concatenate and stream; read_telemetry_jsonl parses it
//     back (tools/trace_report, tests).
//
//   * Chrome trace_event JSON: one document with a traceEvents array of
//     "X" (complete) events — open in chrome://tracing or Perfetto.
//     Shards render as separate tracks (tid = shard), counters land in
//     otherData. Export-only; trace_report consumes the JSONL form.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "mrlr/obs/telemetry.hpp"

namespace mrlr::obs {

inline constexpr std::uint64_t kTelemetryFileVersion = 1;

enum class ExportFormat { kJsonl, kChrome };

/// "jsonl" / "chrome" (the --telemetry-format values).
std::optional<ExportFormat> export_format_from_name(std::string_view name);

void write_telemetry(const TelemetrySnapshot& snap, ExportFormat format,
                     std::ostream& os);

/// Throws std::runtime_error on I/O failure.
void write_telemetry_file(const TelemetrySnapshot& snap, ExportFormat format,
                          const std::string& path);

/// Strict JSONL reader: throws bench::JsonError on a malformed line,
/// a missing/unsupported header, or an unknown record type/phase.
TelemetrySnapshot read_telemetry_jsonl(std::istream& is);

/// Throws bench::JsonError on parse problems and std::runtime_error on
/// I/O failure.
TelemetrySnapshot read_telemetry_file(const std::string& path);

}  // namespace mrlr::obs
