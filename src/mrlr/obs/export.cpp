#include "mrlr/obs/export.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "mrlr/bench/json.hpp"

namespace mrlr::obs {

namespace {

using bench::Json;
using bench::JsonError;

/// u64 -> JSON number, guarded: JSON numbers are doubles, so anything
/// past 2^53 would silently lose bits on the round trip.
Json num_u64(std::uint64_t v, const char* field) {
  if (v > (std::uint64_t{1} << 53)) {
    throw JsonError(std::string("telemetry: field '") + field +
                    "' exceeds the exact-double range");
  }
  return Json::number(static_cast<double>(v));
}

std::uint64_t get_u64(const Json& j, std::string_view key) {
  const double v = j.at(key).as_number();
  if (v < 0 || v > 9007199254740992.0) {
    throw JsonError("telemetry: field '" + std::string(key) +
                    "' out of integer range");
  }
  return static_cast<std::uint64_t>(v);
}

Json span_to_json(const SpanRecord& s) {
  Json j = Json::object();
  j.set("type", Json::string("span"));
  j.set("phase", Json::string(std::string(phase_name(s.phase))));
  j.set("shard", num_u64(s.shard, "shard"));
  // Out-of-round spans (io_load) omit the key: kNoRound is not
  // representable as a JSON number.
  if (s.round != kNoRound) j.set("round", num_u64(s.round, "round"));
  j.set("start_ns", num_u64(s.start_ns, "start_ns"));
  j.set("dur_ns", num_u64(s.dur_ns, "dur_ns"));
  if (!s.label.empty()) j.set("label", Json::string(s.label));
  return j;
}

void write_jsonl(const TelemetrySnapshot& snap, std::ostream& os) {
  Json header = Json::object();
  header.set("mrlr_telemetry",
             Json::number(static_cast<double>(kTelemetryFileVersion)));
  header.set("clock", Json::string("steady-ns"));
  os << header.dump() << "\n";
  for (const SpanRecord& s : snap.spans) {
    os << span_to_json(s).dump() << "\n";
  }
  for (const auto& [name, value] : snap.counters) {
    Json j = Json::object();
    j.set("type", Json::string("counter"));
    j.set("name", Json::string(name));
    j.set("value", num_u64(value, name.c_str()));
    os << j.dump() << "\n";
  }
}

void write_chrome(const TelemetrySnapshot& snap, std::ostream& os) {
  Json events = Json::array();
  for (const SpanRecord& s : snap.spans) {
    Json e = Json::object();
    e.set("name", Json::string(std::string(phase_name(s.phase))));
    e.set("cat", Json::string("mrlr"));
    e.set("ph", Json::string("X"));
    // trace_event timestamps are microseconds (fractions allowed).
    e.set("ts", Json::number(static_cast<double>(s.start_ns) / 1e3));
    e.set("dur", Json::number(static_cast<double>(s.dur_ns) / 1e3));
    e.set("pid", Json::number(1));
    e.set("tid", Json::number(static_cast<double>(s.shard)));
    Json args = Json::object();
    if (s.round != kNoRound) args.set("round", num_u64(s.round, "round"));
    if (!s.label.empty()) args.set("label", Json::string(s.label));
    e.set("args", std::move(args));
    events.push(std::move(e));
  }
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, num_u64(value, name.c_str()));
  }
  Json other = Json::object();
  other.set("mrlr_telemetry",
            Json::number(static_cast<double>(kTelemetryFileVersion)));
  other.set("counters", std::move(counters));
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json::string("ms"));
  doc.set("otherData", std::move(other));
  os << doc.dump(2) << "\n";
}

}  // namespace

std::optional<ExportFormat> export_format_from_name(std::string_view name) {
  if (name == "jsonl") return ExportFormat::kJsonl;
  if (name == "chrome") return ExportFormat::kChrome;
  return std::nullopt;
}

void write_telemetry(const TelemetrySnapshot& snap, ExportFormat format,
                     std::ostream& os) {
  if (format == ExportFormat::kJsonl) {
    write_jsonl(snap, os);
  } else {
    write_chrome(snap, os);
  }
}

void write_telemetry_file(const TelemetrySnapshot& snap, ExportFormat format,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_telemetry(snap, format, out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

TelemetrySnapshot read_telemetry_jsonl(std::istream& is) {
  TelemetrySnapshot snap;
  std::string line;
  bool saw_header = false;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const Json j = [&] {
      try {
        return Json::parse(line);
      } catch (const JsonError& e) {
        throw JsonError("telemetry line " + std::to_string(line_no) + ": " +
                        e.what());
      }
    }();
    if (!saw_header) {
      const Json* version = j.find("mrlr_telemetry");
      if (version == nullptr) {
        throw JsonError("telemetry: first line is not an mrlr_telemetry "
                        "header");
      }
      if (get_u64(j, "mrlr_telemetry") != kTelemetryFileVersion) {
        throw JsonError("telemetry: unsupported file version");
      }
      saw_header = true;
      continue;
    }
    const std::string& type = j.at("type").as_string();
    if (type == "span") {
      SpanRecord s;
      const std::string& phase = j.at("phase").as_string();
      const auto p = phase_from_name(phase);
      if (!p) throw JsonError("telemetry: unknown phase '" + phase + "'");
      s.phase = *p;
      s.shard = static_cast<std::uint32_t>(get_u64(j, "shard"));
      s.round = j.find("round") != nullptr ? get_u64(j, "round") : kNoRound;
      s.start_ns = get_u64(j, "start_ns");
      s.dur_ns = get_u64(j, "dur_ns");
      if (const Json* label = j.find("label")) s.label = label->as_string();
      snap.spans.push_back(std::move(s));
    } else if (type == "counter") {
      snap.counters[j.at("name").as_string()] += get_u64(j, "value");
    } else {
      throw JsonError("telemetry: unknown record type '" + type + "'");
    }
  }
  if (!saw_header) {
    throw JsonError("telemetry: empty file (missing header line)");
  }
  return snap;
}

TelemetrySnapshot read_telemetry_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  TelemetrySnapshot snap = read_telemetry_jsonl(in);
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return snap;
}

}  // namespace mrlr::obs
