#pragma once
// The literal MRC programming model of Karloff, Suri and Vassilvitskii:
// data is a multiset of (key, value) pairs; one MapReduce round applies a
// *mapper* to every pair, shuffles the emitted pairs by key, and applies
// a *reducer* to each key group. The paper's algorithms are written
// against the friendlier Engine interface (Section 1.3 notes the map/
// reduce framing is "not particularly relevant" to them), but this layer
// exists so the substrate genuinely implements the model the paper is
// set in — and it is used by tests to cross-check the engine's
// accounting against the canonical formulation.
//
// Cost accounting: one MRC round costs two engine rounds (map+shuffle
// delivery, then reduce), and the shuffle traffic is audited against the
// per-machine cap like all other traffic. Keys are hashed to machines;
// the reducer for a key runs on the machine owning that key.

#include <functional>
#include <string_view>
#include <vector>

#include "mrlr/mrc/engine.hpp"

namespace mrlr::mrc {

struct KeyValue {
  Word key = 0;
  std::vector<Word> value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

/// Mapper: consumes one pair, emits any number of pairs.
using Mapper = std::function<std::vector<KeyValue>(const KeyValue&)>;

/// Reducer: consumes a key and all values shuffled to it (in
/// deterministic sender/arrival order), emits any number of pairs that
/// become the key's data for the next round.
using Reducer = std::function<std::vector<KeyValue>(
    Word key, const std::vector<std::vector<Word>>& values)>;

class MapReduceJob {
 public:
  /// Distributes `input` round-robin across the engine's machines (the
  /// MRC model's arbitrary initial partition).
  MapReduceJob(Engine& engine, std::vector<KeyValue> input);

  /// Executes one MRC round (two engine rounds).
  void round(std::string_view label, const Mapper& map,
             const Reducer& reduce);

  /// Current data across all machines, sorted by (key, value) for
  /// deterministic inspection.
  std::vector<KeyValue> collect() const;

  /// Words of data resident on machine m.
  std::uint64_t resident_words(MachineId m) const;

  Engine& engine() { return engine_; }

 private:
  MachineId machine_of_key(Word key) const;

  Engine& engine_;
  // data_[m] = pairs currently living on machine m.
  std::vector<std::vector<KeyValue>> data_;
};

}  // namespace mrlr::mrc
