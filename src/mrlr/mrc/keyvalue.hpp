#pragma once
// The literal MRC programming model of Karloff, Suri and Vassilvitskii:
// data is a multiset of (key, value) pairs; one MapReduce round applies a
// *mapper* to every pair, shuffles the emitted pairs by key, and applies
// a *reducer* to each key group. The paper's algorithms are written
// against the friendlier Engine interface (Section 1.3 notes the map/
// reduce framing is "not particularly relevant" to them), but this layer
// exists so the substrate genuinely implements the model the paper is
// set in — and it is used by tests to cross-check the engine's
// accounting against the canonical formulation.
//
// Cost accounting: one MRC round costs two engine rounds (map+shuffle
// delivery, then reduce), and the shuffle traffic is audited against the
// per-machine cap like all other traffic. Keys are hashed to machines;
// the reducer for a key runs on the machine owning that key. A pair
// costs 2 + |value| words wherever it lives — key, length, value — so
// resident data and shuffle traffic are charged under one cost model.

#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/mrc/engine.hpp"

namespace mrlr::mrc {

/// Thrown by decode_kv_frames when a shuffle message's framing is
/// corrupt (truncated header or a declared value length running past
/// the end of the payload).
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses one shuffle payload framed as repeated [key, value_len,
/// value...] records, invoking fn(key, value) per record with a view
/// into the payload. Validates the framing: a trailing partial header
/// or a value_len exceeding the remaining words throws FramingError
/// instead of reading out of bounds.
template <typename Fn>
void decode_kv_frames(std::span<const Word> payload, Fn&& fn) {
  std::size_t i = 0;
  while (i < payload.size()) {
    if (payload.size() - i < 2) {
      throw FramingError(
          "kv shuffle framing: truncated record header at word " +
          std::to_string(i) + " of " + std::to_string(payload.size()));
    }
    const Word key = payload[i];
    const Word len = payload[i + 1];
    i += 2;
    if (len > payload.size() - i) {
      throw FramingError(
          "kv shuffle framing: key " + std::to_string(key) +
          " declares value_len " + std::to_string(len) + " but only " +
          std::to_string(payload.size() - i) + " words remain");
    }
    fn(key, payload.subspan(i, static_cast<std::size_t>(len)));
    i += static_cast<std::size_t>(len);
  }
}

struct KeyValue {
  Word key = 0;
  std::vector<Word> value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

/// Mapper: consumes one pair, emits any number of pairs.
using Mapper = std::function<std::vector<KeyValue>(const KeyValue&)>;

/// Reducer: consumes a key and all values shuffled to it (in
/// deterministic sender/arrival order), emits any number of pairs that
/// become the key's data for the next round.
using Reducer = std::function<std::vector<KeyValue>(
    Word key, const std::vector<std::vector<Word>>& values)>;

class MapReduceJob {
 public:
  /// Distributes `input` round-robin across the engine's machines (the
  /// MRC model's arbitrary initial partition).
  MapReduceJob(Engine& engine, std::vector<KeyValue> input);

  /// Executes one MRC round (two engine rounds).
  void round(std::string_view label, const Mapper& map,
             const Reducer& reduce);

  /// Current data across all machines, sorted by (key, value) for
  /// deterministic inspection.
  std::vector<KeyValue> collect() const;

  /// Words of data resident on machine m, charged under the same cost
  /// model as the shuffle framing: 2 + |value| words per pair.
  std::uint64_t resident_words(MachineId m) const;

  Engine& engine() { return engine_; }

 private:
  MachineId machine_of_key(Word key) const;

  Engine& engine_;
  // data_[m] = pairs currently living on machine m.
  std::vector<std::vector<KeyValue>> data_;
  // map_scratch_[m][d] = machine m's staging buffer for destination d in
  // the map round; cleared (capacity kept) each round so steady-state
  // rounds stay allocation-free. Slot m is touched only by machine m's
  // callback.
  std::vector<std::vector<std::vector<Word>>> map_scratch_;
};

}  // namespace mrlr::mrc
