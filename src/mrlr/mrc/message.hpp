#pragma once
// Inter-machine messages. The cost model is word-based: one Word per
// vertex id, edge endpoint, weight, or counter. Message framing is free
// (as in the standard MRC accounting, which counts words communicated).

#include <cstdint>
#include <vector>

#include "mrlr/mrc/config.hpp"

namespace mrlr::mrc {

struct Message {
  MachineId from = 0;
  std::vector<Word> payload;

  std::uint64_t words() const { return payload.size(); }
};

}  // namespace mrlr::mrc
