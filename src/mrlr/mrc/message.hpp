#pragma once
// Inter-machine messages. The cost model is word-based: one Word per
// vertex id, edge endpoint, weight, or counter. Message framing is free
// (as in the standard MRC accounting, which counts words communicated).
//
// Since PR 2 the engine stores payloads in per-machine flat arenas (one
// contiguous Word buffer per sender, plus a small frame index), so the
// primary read API is MessageView — a non-owning span into the sender's
// delivered slab. The owning Message struct remains the materialized
// form used by the legacy MachineContext::inbox() shim and by tests
// that want to hold message contents beyond the round.

#include <cstdint>
#include <span>
#include <vector>

#include "mrlr/mrc/config.hpp"

namespace mrlr::mrc {

/// Owning message: a heap-allocated payload copy. Produced on demand by
/// the compatibility shims; the hot path never allocates these.
struct Message {
  MachineId from = 0;
  std::vector<Word> payload;

  std::uint64_t words() const { return payload.size(); }
};

/// Zero-copy view of one delivered message: `payload` points into the
/// sending machine's arena slab, which the engine keeps alive for
/// exactly the round in which the message is readable. Views must not
/// be retained across rounds.
struct MessageView {
  MachineId from = 0;
  std::span<const Word> payload;

  std::uint64_t words() const { return payload.size(); }
};

}  // namespace mrlr::mrc
