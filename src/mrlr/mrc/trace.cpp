#include "mrlr/mrc/trace.hpp"

#include <ostream>

namespace mrlr::mrc {

void write_trace_csv(const Metrics& metrics, std::ostream& os) {
  os << "round,label,total_sent,max_outbox,max_inbox,max_resident,"
        "central_inbox,violation\n";
  std::uint64_t i = 0;
  for (const auto& r : metrics.per_round()) {
    os << i++ << ',' << r.label << ',' << r.total_sent << ',' << r.max_outbox
       << ',' << r.max_inbox << ',' << r.max_resident << ','
       << r.central_inbox << ',' << (r.space_violation ? 1 : 0) << '\n';
  }
}

void print_trace(const Metrics& metrics, std::ostream& os) {
  std::uint64_t i = 0;
  for (const auto& r : metrics.per_round()) {
    os << "  round " << i++ << " [" << r.label << "] sent=" << r.total_sent
       << " max_in=" << r.max_inbox << " max_res=" << r.max_resident
       << " central_in=" << r.central_inbox
       << (r.space_violation ? "  ** SPACE VIOLATION **" : "") << '\n';
  }
}

void print_summary(const Metrics& metrics, std::ostream& os) {
  os << "rounds=" << metrics.rounds()
     << " max_machine_words=" << metrics.max_machine_words()
     << " max_central_inbox=" << metrics.max_central_inbox()
     << " total_comm=" << metrics.total_communication()
     << " violations=" << metrics.violations();
}

}  // namespace mrlr::mrc
