#include "mrlr/mrc/engine.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::mrc {

SpaceLimitExceeded::SpaceLimitExceeded(std::string what, std::uint64_t words_,
                                       std::uint64_t cap_)
    : std::runtime_error(std::move(what)), words(words_), cap(cap_) {}

std::uint64_t MachineContext::num_machines() const {
  return engine_.num_machines();
}

const std::vector<Message>& MachineContext::inbox() const {
  return engine_.inboxes_[id_];
}

std::uint64_t MachineContext::inbox_words() const {
  std::uint64_t w = 0;
  for (const auto& m : inbox()) w += m.words();
  return w;
}

void MachineContext::send(MachineId to, std::vector<Word> payload) {
  MRLR_REQUIRE(to < engine_.num_machines(), "send to nonexistent machine");
  engine_.outbox_words_[id_] += payload.size();
  engine_.next_[to].push_back(Message{id_, std::move(payload)});
}

void MachineContext::send(MachineId to, std::initializer_list<Word> payload) {
  send(to, std::vector<Word>(payload));
}

void MachineContext::charge_resident(std::uint64_t words) {
  engine_.resident_words_[id_] =
      std::max(engine_.resident_words_[id_], words);
}

Engine::Engine(Topology topology) : topology_(topology) {
  MRLR_REQUIRE(topology_.num_machines >= 1, "need at least one machine");
  MRLR_REQUIRE(topology_.fanout >= 2, "broadcast fanout must be >= 2");
  inboxes_.resize(topology_.num_machines);
  next_.resize(topology_.num_machines);
  outbox_words_.assign(topology_.num_machines, 0);
  resident_words_.assign(topology_.num_machines, 0);
}

void Engine::run_round(std::string_view label,
                       const std::function<void(MachineContext&)>& fn) {
  std::fill(outbox_words_.begin(), outbox_words_.end(), 0);
  std::fill(resident_words_.begin(), resident_words_.end(), 0);

  const auto machines = static_cast<MachineId>(topology_.num_machines);
  for (MachineId m = 0; m < machines; ++m) {
    MachineContext ctx(*this, m);
    fn(ctx);
  }

  RoundMetrics rm;
  rm.label = std::string(label);
  std::uint64_t worst = 0;
  MachineId worst_machine = 0;
  for (MachineId m = 0; m < machines; ++m) {
    std::uint64_t in = 0;
    for (const auto& msg : inboxes_[m]) in += msg.words();
    rm.max_inbox = std::max(rm.max_inbox, in);
    rm.max_outbox = std::max(rm.max_outbox, outbox_words_[m]);
    rm.max_resident = std::max(rm.max_resident, resident_words_[m]);
    rm.total_sent += outbox_words_[m];
    if (m == kCentral) rm.central_inbox = in;
    const std::uint64_t peak = std::max({in, outbox_words_[m],
                                         resident_words_[m]});
    if (peak > worst) {
      worst = peak;
      worst_machine = m;
    }
  }
  rm.space_violation = worst > topology_.words_per_machine;
  metrics_.record(rm);
  if (rm.space_violation && topology_.enforce) {
    throw SpaceLimitExceeded(
        "machine " + std::to_string(worst_machine) + " used " +
            std::to_string(worst) + " words in round '" + std::string(label) +
            "' (cap " + std::to_string(topology_.words_per_machine) + ")",
        worst, topology_.words_per_machine);
  }

  // Deliver: next-round mailboxes become current, cleared for reuse.
  for (MachineId m = 0; m < machines; ++m) {
    inboxes_[m] = std::move(next_[m]);
    next_[m].clear();
  }
}

void Engine::run_central_round(
    std::string_view label, const std::function<void(MachineContext&)>& fn) {
  run_round(label, [&](MachineContext& ctx) {
    if (ctx.is_central()) fn(ctx);
  });
}

const std::vector<Message>& Engine::pending_inbox(MachineId m) const {
  MRLR_REQUIRE(m < num_machines(), "pending_inbox: bad machine id");
  return next_[m];
}

}  // namespace mrlr::mrc
