#include "mrlr/mrc/engine.hpp"

#include <algorithm>
#include <cstring>

#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::mrc {

SpaceLimitExceeded::SpaceLimitExceeded(std::string what, std::uint64_t words_,
                                       std::uint64_t cap_)
    : std::runtime_error(std::move(what)), words(words_), cap(cap_) {}

std::uint64_t MachineContext::num_machines() const {
  return engine_.num_machines();
}

const std::vector<Message>& MachineContext::inbox() const {
  return engine_.materialized_inbox(id_);
}

void MachineContext::send(MachineId to, const std::vector<Word>& payload) {
  send_batch(to, payload);
}

void MachineContext::send(MachineId to, std::initializer_list<Word> payload) {
  send_batch(to, std::span<const Word>(payload.begin(), payload.size()));
}

void MachineContext::send_batch(MachineId to, std::span<const Word> payload) {
  MRLR_REQUIRE(to < engine_.num_machines(), "send to nonexistent machine");
  MRLR_REQUIRE(!engine_.writer_open_[id_],
               "send while this machine's MessageWriter is open");
  Engine::Outbox& out = engine_.staging_[id_];
  const std::uint64_t offset = out.words.size();
  out.words.insert(out.words.end(), payload.begin(), payload.end());
  out.frames.push_back({to, offset, payload.size()});
  engine_.outbox_words_[id_] += payload.size();
}

MessageWriter MachineContext::begin_message(MachineId to) {
  MRLR_REQUIRE(to < engine_.num_machines(), "send to nonexistent machine");
  MRLR_REQUIRE(!engine_.writer_open_[id_],
               "at most one MessageWriter per machine may be open");
  return MessageWriter(engine_, id_, to);
}

void MachineContext::charge_resident(std::uint64_t words) {
  engine_.resident_words_[id_] =
      std::max(engine_.resident_words_[id_], words);
}

Engine::Engine(Topology topology)
    : Engine(topology, exec::make_executor(topology.num_threads,
                                           topology.num_shards)) {}

Engine::Engine(Topology topology, std::shared_ptr<exec::Executor> executor)
    : topology_(topology), executor_(std::move(executor)) {
  MRLR_REQUIRE(topology_.num_machines >= 1, "need at least one machine");
  MRLR_REQUIRE(topology_.fanout >= 2, "broadcast fanout must be >= 2");
  MRLR_REQUIRE(executor_ != nullptr, "engine needs an executor");
  const std::uint64_t machines = topology_.num_machines;
  staging_.resize(machines);
  slabs_.resize(machines);
  inbox_frames_.resize(machines);
  inbox_words_.assign(machines, 0);
  next_frames_.resize(machines);
  next_inbox_words_.assign(machines, 0);
  writer_open_.assign(machines, 0);
  outbox_words_.assign(machines, 0);
  resident_words_.assign(machines, 0);
  inbox_cache_.resize(machines);
  inbox_cache_valid_.assign(machines, 0);
  pending_cache_.resize(machines);
}

Engine::~Engine() {
  if (job_started_) {
    // end_job must not throw (Executor contract); belt and braces for a
    // destructor anyway.
    try {
      executor_->end_job();
    } catch (...) {
    }
  }
}

RoundId Engine::define_round(std::string label, RoundFn fn) {
  MRLR_REQUIRE(!job_started_,
               "define_round after the job started: worker processes "
               "snapshot the round registry at spawn");
  MRLR_REQUIRE(fn != nullptr, "define_round needs a callback");
  rounds_.push_back(Registered{std::move(label), std::move(fn)});
  return static_cast<RoundId>(rounds_.size() - 1);
}

void Engine::invoke_round(RoundId round, std::span<const Word> params) {
  MRLR_REQUIRE(round < rounds_.size(), "invoke_round: undefined round id");
  if (!job_started_) {
    job_started_ = true;
    executor_->start_job(topology_.num_machines, this);
  }
  round_body(rounds_[round].label, /*central_only=*/false, [&] {
    executor_->run_job_round(
        round, params, topology_.num_machines,
        [&](std::uint64_t m) { run_registered(round, m, params); }, this);
  });
}

void Engine::invoke_round(RoundId round, std::initializer_list<Word> params) {
  invoke_round(round, std::span<const Word>(params.begin(), params.size()));
}

void Engine::run_round(std::string_view label,
                       const std::function<void(MachineContext&)>& fn) {
  run_round_impl(label, fn, /*central_only=*/false);
}

void Engine::run_round_impl(std::string_view label,
                            const std::function<void(MachineContext&)>& fn,
                            bool central_only) {
  round_body(label, central_only, [&] {
    // The sharded entry point: in-process backends fall through to
    // plain run_machines; the process backend rejects ad-hoc sharded
    // rounds (persistent workers only run registered rounds).
    // Central-only rounds pass no data plane — the central machine
    // always lives in the coordinator process and every other callback
    // is a no-op, so there is nothing to ship.
    executor_->run_machines_sharded(
        0, topology_.num_machines,
        [&](std::uint64_t m) {
          MachineContext ctx(*this, static_cast<MachineId>(m));
          fn(ctx);
        },
        central_only ? nullptr : this);
  });
}

void Engine::round_body(std::string_view label, bool central_only,
                        const std::function<void()>& dispatch) {
  std::fill(outbox_words_.begin(), outbox_words_.end(), 0);
  std::fill(resident_words_.begin(), resident_words_.end(), 0);

  // Telemetry never touches the data plane: when disabled the only cost
  // is one relaxed load, and when enabled it only samples clocks, so
  // traces, metrics, and hashes stay byte-identical either way.
  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = tel.enabled();
  const std::uint64_t round_ix = metrics_.rounds();
  const std::uint64_t round_start = telemetry ? tel.now_ns() : 0;
  std::uint64_t t0 = round_start;

  const auto machines = static_cast<MachineId>(topology_.num_machines);
  dispatch();
  if (telemetry) {
    tel.record_span(
        central_only ? obs::Phase::kCentral : obs::Phase::kCallback, t0,
        tel.now_ns(), round_ix, std::string(label));
    t0 = tel.now_ns();
  }

  // Merge staged frames in sender-id order: delivery order — and with
  // it every downstream inbox scan — matches the sequential simulation
  // regardless of which threads ran which machines. Only the frame
  // indexes move here; payload words stay where the senders wrote them.
  for (MachineId s = 0; s < machines; ++s) {
    MRLR_REQUIRE(!writer_open_[s],
                 "MessageWriter left open across the round barrier");
    for (const Frame& f : staging_[s].frames) {
      next_frames_[f.to].push_back({s, f.offset, f.len});
      next_inbox_words_[f.to] += f.len;
    }
    // Consumed before the audit can throw: if this round violates the
    // cap, a subsequent round must not re-merge (and double-deliver)
    // these frames. The payload words stay put — next_frames_ points
    // into them (pending_inbox reads them, and delivery will move the
    // slab wholesale next round).
    staging_[s].frames.clear();
  }
  if (telemetry) {
    tel.record_span(obs::Phase::kArenaMerge, t0, tel.now_ns(), round_ix);
  }

  RoundMetrics rm;
  rm.label = std::string(label);
  bool violated = false;
  std::uint64_t offender_words = 0;
  MachineId offender = 0;
  for (MachineId m = 0; m < machines; ++m) {
    const std::uint64_t in = inbox_words_[m];
    rm.max_inbox = std::max(rm.max_inbox, in);
    rm.max_outbox = std::max(rm.max_outbox, outbox_words_[m]);
    rm.max_resident = std::max(rm.max_resident, resident_words_[m]);
    rm.total_sent += outbox_words_[m];
    if (m == kCentral) rm.central_inbox = in;
    const std::uint64_t peak = std::max({in, outbox_words_[m],
                                         resident_words_[m]});
    if (peak > topology_.words_per_machine && !violated) {
      violated = true;
      offender = m;
      offender_words = peak;
    }
  }
  rm.space_violation = violated;
  metrics_.record(rm);
  if (violated && topology_.enforce) {
    // Delivery is skipped: the staged arenas stay pending, observable
    // through pending_inbox for post-mortem inspection.
    throw SpaceLimitExceeded(
        "machine " + std::to_string(offender) + " used " +
            std::to_string(offender_words) + " words in round '" +
            std::string(label) + "' (cap " +
            std::to_string(topology_.words_per_machine) + ")",
        offender_words, topology_.words_per_machine);
  }

  // Deliver: the staging arenas move wholesale into the slab role (no
  // payload copy), and the spent slabs — whose views died with this
  // round — are recycled as next round's staging buffers, keeping their
  // capacity so steady-state rounds never touch the allocator.
  staging_.swap(slabs_);
  if (telemetry) {
    // Recycled slabs that kept their capacity are the allocations
    // steady-state rounds avoid.
    std::uint64_t reused = 0;
    for (const Outbox& out : staging_) {
      if (out.words.capacity() > 0) ++reused;
    }
    tel.add_counter("engine.slab_reuses", reused);
    tel.add_counter("engine.rounds", 1);
  }
  for (Outbox& out : staging_) {
    out.words.clear();
    out.frames.clear();
  }
  inbox_frames_.swap(next_frames_);
  inbox_words_.swap(next_inbox_words_);
  for (MachineId m = 0; m < machines; ++m) {
    next_frames_[m].clear();
    next_inbox_words_[m] = 0;
  }
  std::fill(inbox_cache_valid_.begin(), inbox_cache_valid_.end(), 0);
  if (telemetry) {
    tel.record_span(obs::Phase::kRound, round_start, tel.now_ns(), round_ix,
                    std::string(label));
  }
}

void Engine::run_central_round(
    std::string_view label, const std::function<void(MachineContext&)>& fn) {
  run_round_impl(
      label,
      [&](MachineContext& ctx) {
        if (ctx.is_central()) fn(ctx);
      },
      /*central_only=*/true);
}

void Engine::materialize(const std::vector<InboxFrame>& frames,
                         const std::vector<Outbox>& arenas,
                         std::vector<Message>& out) {
  out.clear();
  out.reserve(frames.size());
  for (const InboxFrame& f : frames) {
    const Word* base = arenas[f.from].words.data() + f.offset;
    out.push_back(Message{f.from, std::vector<Word>(base, base + f.len)});
  }
}

const std::vector<Message>& Engine::materialized_inbox(MachineId m) const {
  if (!inbox_cache_valid_[m]) {
    materialize(inbox_frames_[m], slabs_, inbox_cache_[m]);
    inbox_cache_valid_[m] = 1;
  }
  return inbox_cache_[m];
}

void Engine::check_machine_id(MachineId m, const char* what) const {
  if (m >= num_machines()) {
    throw std::out_of_range(
        std::string("Engine::") + what + ": machine id " +
        std::to_string(m) + " out of range [0, " +
        std::to_string(num_machines()) + ")");
  }
}

const std::vector<Message>& Engine::pending_inbox(MachineId m) const {
  check_machine_id(m, "pending_inbox");
  materialize(next_frames_[m], staging_, pending_cache_[m]);
  return pending_cache_[m];
}

std::uint64_t Engine::inbox_words(MachineId m) const {
  check_machine_id(m, "inbox_words");
  return inbox_words_[m];
}

std::uint64_t Engine::inbox_size(MachineId m) const {
  check_machine_id(m, "inbox_size");
  return inbox_frames_[m].size();
}

// ----------------------------------------------- shard data plane --

namespace {

using exec::append_u64;

[[noreturn]] void bad_payload(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "engine shard payload: " + what);
}

/// Cursor over the apply-side byte span; every read is bounds-checked
/// so truncated or adversarial payloads fail typed, never read OOB.
struct Cursor {
  std::span<const std::byte> in;

  std::uint64_t u64(const char* what) {
    if (in.size() < 8) bad_payload(std::string("truncated reading ") + what);
    const std::uint64_t v = exec::read_u64(in, 0);
    in = in.subspan(8);
    return v;
  }

  void words(std::vector<Word>& out, std::uint64_t count) {
    if (in.size() < count * sizeof(Word)) {
      bad_payload("truncated reading arena words");
    }
    out.resize(count);
    if (count > 0) {
      std::memcpy(out.data(), in.data(), count * sizeof(Word));
      in = in.subspan(count * sizeof(Word));
    }
  }
};

}  // namespace

void Engine::serialize_machines(std::uint64_t first, std::uint64_t last,
                                std::vector<std::byte>& out) const {
  for (std::uint64_t m = first; m < last; ++m) {
    const Outbox& o = staging_[m];
    append_u64(out, outbox_words_[m]);
    append_u64(out, resident_words_[m]);
    append_u64(out, writer_open_[m]);
    append_u64(out, o.frames.size());
    for (const Frame& f : o.frames) {
      append_u64(out, f.to);
      append_u64(out, f.offset);
      append_u64(out, f.len);
    }
    const auto n = out.size();
    const auto bytes = o.words.size() * sizeof(Word);
    append_u64(out, o.words.size());
    out.resize(n + 8 + bytes);
    if (bytes > 0) {
      std::memcpy(out.data() + n + 8, o.words.data(), bytes);
    }
  }
}

void Engine::apply_machines(std::uint64_t first, std::uint64_t last,
                            std::span<const std::byte> bytes) {
  Cursor cur{bytes};
  for (std::uint64_t m = first; m < last; ++m) {
    outbox_words_[m] = cur.u64("outbox words");
    resident_words_[m] = cur.u64("resident words");
    const std::uint64_t writer_open = cur.u64("writer-open flag");
    if (writer_open > 1) bad_payload("invalid writer-open flag");
    writer_open_[m] = static_cast<char>(writer_open);

    const std::uint64_t frame_count = cur.u64("frame count");
    // An adversarial count cannot out-allocate the payload that must
    // back it: each frame costs 24 bytes on the wire.
    if (frame_count > cur.in.size() / 24) {
      bad_payload("frame count exceeds remaining payload");
    }
    Outbox& o = staging_[m];
    o.frames.clear();
    o.frames.reserve(frame_count);
    for (std::uint64_t i = 0; i < frame_count; ++i) {
      const std::uint64_t to = cur.u64("frame destination");
      const std::uint64_t offset = cur.u64("frame offset");
      const std::uint64_t len = cur.u64("frame length");
      if (to >= num_machines()) {
        bad_payload("frame destination " + std::to_string(to) +
                    " out of range");
      }
      o.frames.push_back({static_cast<MachineId>(to), offset, len});
    }
    const std::uint64_t word_count = cur.u64("arena word count");
    if (word_count > cur.in.size() / sizeof(Word)) {
      bad_payload("arena word count exceeds remaining payload");
    }
    cur.words(o.words, word_count);
    for (const Frame& f : o.frames) {
      if (f.len > word_count || f.offset > word_count - f.len) {
        bad_payload("frame extent [" + std::to_string(f.offset) + ", +" +
                    std::to_string(f.len) + ") outside the arena");
      }
    }
  }
  if (!cur.in.empty()) bad_payload("trailing bytes after the last machine");
}

// ------------------------------------------------ shard job plane --

void Engine::serialize_round_input(std::uint64_t first, std::uint64_t last,
                                   std::vector<std::byte>& out) const {
  for (std::uint64_t m = first; m < last; ++m) {
    append_u64(out, inbox_words_[m]);
    append_u64(out, inbox_frames_[m].size());
    for (const InboxFrame& f : inbox_frames_[m]) {
      append_u64(out, f.from);
      append_u64(out, f.len);
      const auto n = out.size();
      out.resize(n + f.len * sizeof(Word));
      if (f.len > 0) {
        std::memcpy(out.data() + n, slabs_[f.from].words.data() + f.offset,
                    f.len * sizeof(Word));
      }
    }
  }
}

void Engine::apply_round_input(std::uint64_t first, std::uint64_t last,
                               std::span<const std::byte> bytes) {
  // Worker side: only machines [first, last) run here and their inboxes
  // are rebuilt from the wire below, so every slab and inbox index from
  // the previous round is stale — clear them all (capacity is kept, so
  // steady-state rounds still avoid the allocator).
  for (Outbox& o : slabs_) {
    o.words.clear();
    o.frames.clear();
  }
  for (std::vector<InboxFrame>& f : inbox_frames_) f.clear();
  std::fill(inbox_words_.begin(), inbox_words_.end(), 0);
  std::fill(inbox_cache_valid_.begin(), inbox_cache_valid_.end(), 0);
  for (std::uint64_t m = first; m < last; ++m) {
    staging_[m].words.clear();
    staging_[m].frames.clear();
    outbox_words_[m] = 0;
    resident_words_[m] = 0;
    writer_open_[m] = 0;
  }

  Cursor cur{bytes};
  for (std::uint64_t m = first; m < last; ++m) {
    const std::uint64_t in_words = cur.u64("inbox word total");
    const std::uint64_t frame_count = cur.u64("inbox frame count");
    // Each frame costs at least 16 bytes on the wire, so a hostile
    // count cannot out-allocate the payload backing it.
    if (frame_count > cur.in.size() / 16) {
      bad_payload("inbox frame count exceeds remaining payload");
    }
    std::uint64_t total = 0;
    inbox_frames_[m].reserve(frame_count);
    for (std::uint64_t i = 0; i < frame_count; ++i) {
      const std::uint64_t from = cur.u64("message sender");
      const std::uint64_t len = cur.u64("message length");
      if (from >= num_machines()) {
        bad_payload("message sender " + std::to_string(from) +
                    " out of range");
      }
      if (len > cur.in.size() / sizeof(Word)) {
        bad_payload("message length exceeds remaining payload");
      }
      std::vector<Word>& slab = slabs_[from].words;
      const std::uint64_t offset = slab.size();
      slab.resize(offset + len);
      if (len > 0) {
        std::memcpy(slab.data() + offset, cur.in.data(),
                    len * sizeof(Word));
        cur.in = cur.in.subspan(len * sizeof(Word));
      }
      inbox_frames_[m].push_back(
          {static_cast<MachineId>(from), offset, len});
      total += len;
    }
    if (total != in_words) {
      bad_payload("inbox word total does not match its messages");
    }
    inbox_words_[m] = in_words;
  }
  if (!cur.in.empty()) bad_payload("trailing bytes after the last machine");
}

void Engine::run_registered(std::uint64_t round_id, std::uint64_t machine,
                            std::span<const std::uint64_t> params) {
  MRLR_REQUIRE(round_id < rounds_.size(),
               "run_registered: undefined round id");
  MachineContext ctx(*this, static_cast<MachineId>(machine));
  rounds_[round_id].fn(ctx, params);
}

}  // namespace mrlr::mrc
