#include "mrlr/mrc/engine.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::mrc {

SpaceLimitExceeded::SpaceLimitExceeded(std::string what, std::uint64_t words_,
                                       std::uint64_t cap_)
    : std::runtime_error(std::move(what)), words(words_), cap(cap_) {}

std::uint64_t MachineContext::num_machines() const {
  return engine_.num_machines();
}

const std::vector<Message>& MachineContext::inbox() const {
  return engine_.inboxes_[id_];
}

std::uint64_t MachineContext::inbox_words() const {
  std::uint64_t w = 0;
  for (const auto& m : inbox()) w += m.words();
  return w;
}

void MachineContext::send(MachineId to, std::vector<Word> payload) {
  MRLR_REQUIRE(to < engine_.num_machines(), "send to nonexistent machine");
  engine_.outbox_words_[id_] += payload.size();
  engine_.staging_[id_].push_back({to, Message{id_, std::move(payload)}});
}

void MachineContext::send(MachineId to, std::initializer_list<Word> payload) {
  send(to, std::vector<Word>(payload));
}

void MachineContext::charge_resident(std::uint64_t words) {
  engine_.resident_words_[id_] =
      std::max(engine_.resident_words_[id_], words);
}

Engine::Engine(Topology topology)
    : Engine(topology, exec::make_executor(topology.num_threads)) {}

Engine::Engine(Topology topology, std::shared_ptr<exec::Executor> executor)
    : topology_(topology), executor_(std::move(executor)) {
  MRLR_REQUIRE(topology_.num_machines >= 1, "need at least one machine");
  MRLR_REQUIRE(topology_.fanout >= 2, "broadcast fanout must be >= 2");
  MRLR_REQUIRE(executor_ != nullptr, "engine needs an executor");
  inboxes_.resize(topology_.num_machines);
  next_.resize(topology_.num_machines);
  staging_.resize(topology_.num_machines);
  outbox_words_.assign(topology_.num_machines, 0);
  resident_words_.assign(topology_.num_machines, 0);
}

void Engine::run_round(std::string_view label,
                       const std::function<void(MachineContext&)>& fn) {
  std::fill(outbox_words_.begin(), outbox_words_.end(), 0);
  std::fill(resident_words_.begin(), resident_words_.end(), 0);

  const auto machines = static_cast<MachineId>(topology_.num_machines);
  executor_->run_machines(0, topology_.num_machines, [&](std::uint64_t m) {
    MachineContext ctx(*this, static_cast<MachineId>(m));
    fn(ctx);
  });

  // Merge staged messages in sender-id order: delivery order — and with
  // it every downstream inbox scan — matches the sequential simulation
  // regardless of which threads ran which machines.
  for (MachineId s = 0; s < machines; ++s) {
    for (StagedMessage& sm : staging_[s]) {
      next_[sm.to].push_back(std::move(sm.msg));
    }
    staging_[s].clear();
  }

  RoundMetrics rm;
  rm.label = std::string(label);
  bool violated = false;
  std::uint64_t offender_words = 0;
  MachineId offender = 0;
  for (MachineId m = 0; m < machines; ++m) {
    std::uint64_t in = 0;
    for (const auto& msg : inboxes_[m]) in += msg.words();
    rm.max_inbox = std::max(rm.max_inbox, in);
    rm.max_outbox = std::max(rm.max_outbox, outbox_words_[m]);
    rm.max_resident = std::max(rm.max_resident, resident_words_[m]);
    rm.total_sent += outbox_words_[m];
    if (m == kCentral) rm.central_inbox = in;
    const std::uint64_t peak = std::max({in, outbox_words_[m],
                                         resident_words_[m]});
    if (peak > topology_.words_per_machine && !violated) {
      violated = true;
      offender = m;
      offender_words = peak;
    }
  }
  rm.space_violation = violated;
  metrics_.record(rm);
  if (violated && topology_.enforce) {
    throw SpaceLimitExceeded(
        "machine " + std::to_string(offender) + " used " +
            std::to_string(offender_words) + " words in round '" +
            std::string(label) + "' (cap " +
            std::to_string(topology_.words_per_machine) + ")",
        offender_words, topology_.words_per_machine);
  }

  // Deliver: next-round mailboxes become current, cleared for reuse.
  for (MachineId m = 0; m < machines; ++m) {
    inboxes_[m] = std::move(next_[m]);
    next_[m].clear();
  }
}

void Engine::run_central_round(
    std::string_view label, const std::function<void(MachineContext&)>& fn) {
  run_round(label, [&](MachineContext& ctx) {
    if (ctx.is_central()) fn(ctx);
  });
}

const std::vector<Message>& Engine::pending_inbox(MachineId m) const {
  if (m >= num_machines()) {
    throw std::out_of_range(
        "Engine::pending_inbox: machine id " + std::to_string(m) +
        " out of range [0, " + std::to_string(num_machines()) + ")");
  }
  return next_[m];
}

}  // namespace mrlr::mrc
