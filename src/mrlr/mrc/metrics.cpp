#include "mrlr/mrc/metrics.hpp"

#include <algorithm>

namespace mrlr::mrc {

void Metrics::record(RoundMetrics r) {
  max_machine_words_ =
      std::max({max_machine_words_, r.max_inbox, r.max_resident, r.max_outbox});
  max_central_inbox_ = std::max(max_central_inbox_, r.central_inbox);
  total_comm_ += r.total_sent;
  if (r.space_violation) ++violations_;
  rounds_.push_back(std::move(r));
}

void Metrics::clear() {
  rounds_.clear();
  max_machine_words_ = 0;
  max_central_inbox_ = 0;
  total_comm_ = 0;
  violations_ = 0;
}

}  // namespace mrlr::mrc
