#pragma once
// Cluster topology for the simulated MapReduce (MRC / MPC) model of
// Karloff, Suri and Vassilvitskii, as used by the paper.
//
// The paper's conventions (Section 1.3): a graph with n vertices and
// m = n^{1+c} edges is processed by M = n^{c-mu} machines, each with
// O(n^{1+mu}) words of memory, c > mu > 0. The simulator makes the
// constants explicit: `words_per_machine` is the hard cap the engine
// audits every round.

#include <cstdint>

#include "mrlr/util/math.hpp"

namespace mrlr::mrc {

using MachineId = std::uint32_t;
using Word = std::uint64_t;

/// Identity of the central machine (the paper's "blue lines" run here).
inline constexpr MachineId kCentral = 0;

struct Topology {
  /// Number of machines, M >= 1.
  std::uint64_t num_machines = 1;

  /// Per-machine memory cap in words. Audited each round against the
  /// maximum of (inbox words, declared resident words, outbox words).
  std::uint64_t words_per_machine = 1ull << 20;

  /// Fanout of broadcast / converge-cast trees (the paper's n^mu-ary
  /// trees in Theorem 2.4 and Section 4.1). Must be >= 2.
  std::uint64_t fanout = 2;

  /// When true the engine throws SpaceLimitExceeded on a violation;
  /// when false it records the violation in the metrics and continues
  /// (useful for benches that chart how close algorithms run to the cap).
  bool enforce = true;

  /// Execution backend for simulating the machines of one round:
  /// 1 = serial (the historical sequential simulation), N > 1 = a
  /// persistent pool of N threads, 0 = a pool sized to the hardware.
  /// Never affects results: rounds, words, traces, and algorithm
  /// outputs are byte-identical at any setting.
  std::uint64_t num_threads = 1;

  /// Process-sharded backend: K > 1 partitions the machines into K
  /// contiguous shards, shard 0 in the coordinator process and each
  /// other shard in a persistent worker process that ships its staged
  /// arenas back over the shard transport. Composes with num_threads:
  /// every shard runs its machine range on a shard-local pool of that
  /// many threads (K x T concurrent callbacks job-wide). Requires a
  /// process-clean round callback (see exec/process_shard_executor.hpp).
  /// 0 or 1 = no sharding. Results stay byte-identical to the serial
  /// backend at any (K, T).
  std::uint64_t num_shards = 1;

  /// Builds the paper's standard graph topology: M = ceil(n^{c-mu})
  /// machines with slack * n^{1+mu} words each.
  ///
  /// `slack` absorbs the constants the paper hides in O(n^{1+mu}): the
  /// sampling steps are only guaranteed to fit within a constant factor
  /// of eta = n^{1+mu} (e.g. |U'| <= 6*eta in Algorithm 1).
  static Topology for_graph_problem(std::uint64_t n, double c, double mu,
                                    double slack = 16.0);

  /// Topology for set cover with ground set size m and space m^{1+mu}
  /// (Theorem 4.6 regime where m << n).
  static Topology for_ground_set(std::uint64_t m, double c, double mu,
                                 double slack = 16.0);
};

inline Topology Topology::for_graph_problem(std::uint64_t n, double c,
                                            double mu, double slack) {
  Topology t;
  t.num_machines = ipow_real(n, c - mu, /*min_value=*/1);
  const std::uint64_t eta = ipow_real(n, 1.0 + mu, /*min_value=*/1);
  t.words_per_machine =
      static_cast<std::uint64_t>(slack * static_cast<double>(eta)) + 64;
  t.fanout = ipow_real(n, mu, /*min_value=*/2);
  return t;
}

inline Topology Topology::for_ground_set(std::uint64_t m, double c, double mu,
                                         double slack) {
  Topology t;
  t.num_machines = ipow_real(m, c - mu, /*min_value=*/1);
  const std::uint64_t cap = ipow_real(m, 1.0 + mu, /*min_value=*/1);
  t.words_per_machine =
      static_cast<std::uint64_t>(slack * static_cast<double>(cap)) + 64;
  t.fanout = ipow_real(m, mu, /*min_value=*/2);
  return t;
}

}  // namespace mrlr::mrc
