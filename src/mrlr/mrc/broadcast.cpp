#include "mrlr/mrc/broadcast.hpp"

#include <algorithm>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::mrc {

MachineId tree_parent(MachineId m, std::uint64_t fanout) {
  MRLR_REQUIRE(m != kCentral, "root has no parent");
  return static_cast<MachineId>((static_cast<std::uint64_t>(m) - 1) / fanout);
}

unsigned tree_depth(MachineId m, std::uint64_t fanout) {
  unsigned d = 0;
  std::uint64_t x = m;
  while (x != 0) {
    x = (x - 1) / fanout;
    ++d;
  }
  return d;
}

std::uint64_t broadcast_rounds(std::uint64_t machines, std::uint64_t fanout) {
  if (machines <= 1) return 0;
  // Depth of the deepest machine in the heap-ordered fanout tree.
  unsigned depth = 0;
  std::uint64_t filled = 1;     // machines within current depth
  std::uint64_t level = 1;      // size of next level
  while (filled < machines) {
    level *= fanout;
    filled += level;
    ++depth;
  }
  return depth;
}

std::uint64_t broadcast_from_central(
    Engine& engine, const std::vector<Word>& payload, std::string_view label,
    std::vector<std::vector<Word>>* received) {
  const std::uint64_t machines = engine.num_machines();
  const std::uint64_t fanout = engine.topology().fanout;
  if (received) {
    received->assign(machines, {});
    (*received)[kCentral] = payload;
  }
  if (machines <= 1) return 0;

  std::vector<char> has(machines, 0);
  has[kCentral] = 1;
  std::uint64_t rounds = 0;
  bool all = false;
  while (!all) {
    // Holders forward to their (non-holding) children; one tree level
    // becomes complete per round.
    engine.run_round(label, [&](MachineContext& ctx) {
      const MachineId m = ctx.id();
      if (!has[m]) return;
      ctx.charge_resident(payload.size());
      for (std::uint64_t k = 1; k <= fanout; ++k) {
        const std::uint64_t child = static_cast<std::uint64_t>(m) * fanout + k;
        if (child >= machines) break;
        ctx.send_batch(static_cast<MachineId>(child), payload);
      }
    });
    ++rounds;
    all = true;
    for (std::uint64_t m = 0; m < machines; ++m) {
      const bool is_new_holder =
          !has[m] && tree_depth(static_cast<MachineId>(m), fanout) == rounds;
      if (is_new_holder) {
        has[m] = 1;
        if (received) (*received)[m] = payload;
      }
      if (!has[m]) all = false;
    }
  }
  // Drain the final deliveries so the next algorithm round starts clean.
  engine.run_round(label, [&](MachineContext&) {});
  return rounds + 1;
}

JobBroadcast::JobBroadcast(Engine& engine, std::string label, ApplyFn apply)
    : engine_(&engine),
      apply_(std::move(apply)),
      held_(engine.num_machines()),
      gen_(engine.num_machines(), 0) {
  const std::uint64_t machines = engine.num_machines();
  const std::uint64_t fanout = engine.topology().fanout;
  round_ = engine.define_round(
      std::move(label),
      [this, machines, fanout](MachineContext& ctx,
                               std::span<const Word> ps) {
        const MachineId m = ctx.id();
        const std::uint64_t gen = ps[0];
        const bool drain = ps[2] != 0;
        if (gen_[m] != gen && ctx.inbox_size() > 0) {
          const MessageView msg = ctx.message(0);
          held_[m].assign(msg.payload.begin(), msg.payload.end());
          gen_[m] = gen;
        }
        if (gen_[m] != gen) return;  // payload has not reached m yet
        if (drain) {
          if (apply_) apply_(ctx, held_[m]);
          return;
        }
        ctx.charge_resident(held_[m].size());
        for (std::uint64_t k = 1; k <= fanout; ++k) {
          const std::uint64_t child =
              static_cast<std::uint64_t>(m) * fanout + k;
          if (child >= machines) break;
          ctx.send_batch(static_cast<MachineId>(child), held_[m]);
        }
      });
}

std::uint64_t JobBroadcast::run(std::vector<Word> payload) {
  // The central machine is coordinator-resident, so seeding its slot
  // host-side is process-clean.
  ++generation_;
  held_[kCentral] = std::move(payload);
  gen_[kCentral] = generation_;
  const std::uint64_t depth =
      broadcast_rounds(engine_->num_machines(), engine_->topology().fanout);
  for (std::uint64_t r = 1; r <= depth; ++r) {
    engine_->invoke_round(round_, {generation_, r, 0});
  }
  engine_->invoke_round(round_, {generation_, depth + 1, 1});
  return depth + 1;
}

std::uint64_t aggregate_sum(Engine& engine, const std::vector<Word>& values,
                            std::string_view label, Word* sum_out) {
  const std::uint64_t machines = engine.num_machines();
  MRLR_REQUIRE(values.size() == machines,
               "aggregate_sum: one value per machine required");
  const std::uint64_t fanout = engine.topology().fanout;
  if (machines == 1) {
    if (sum_out) *sum_out = values[0];
    return 0;
  }

  unsigned max_depth = 0;
  for (std::uint64_t m = 0; m < machines; ++m) {
    max_depth = std::max(max_depth,
                         tree_depth(static_cast<MachineId>(m), fanout));
  }

  // partial[m] accumulates the subtree sum held at machine m.
  std::vector<Word> partial = values;
  std::vector<char> sent(machines, 0);
  std::uint64_t rounds = 0;
  for (unsigned depth = max_depth; depth >= 1; --depth) {
    engine.run_round(label, [&](MachineContext& ctx) {
      const MachineId m = ctx.id();
      // Fold in children's partial sums delivered this round.
      for (const MessageView msg : ctx.messages()) {
        MRLR_REQUIRE(msg.payload.size() == 1, "aggregate: 1-word messages");
        partial[m] += msg.payload[0];
      }
      ctx.charge_resident(1);
      if (m != kCentral && tree_depth(m, fanout) == depth && !sent[m]) {
        ctx.send(tree_parent(m, fanout), {partial[m]});
      }
    });
    for (std::uint64_t m = 0; m < machines; ++m) {
      if (m != kCentral &&
          tree_depth(static_cast<MachineId>(m), fanout) == depth) {
        sent[m] = 1;
      }
    }
    ++rounds;
  }
  // One more round so the root folds in the depth-1 messages.
  engine.run_round(label, [&](MachineContext& ctx) {
    const MachineId m = ctx.id();
    for (const MessageView msg : ctx.messages()) partial[m] += msg.payload[0];
    ctx.charge_resident(1);
  });
  ++rounds;
  if (sum_out) *sum_out = partial[kCentral];
  return rounds;
}

std::uint64_t allreduce_sum(Engine& engine, const std::vector<Word>& values,
                            std::string_view label, Word* sum_out) {
  Word total = 0;
  std::uint64_t rounds = aggregate_sum(engine, values, label, &total);
  rounds += broadcast_from_central(engine, {total}, label);
  if (sum_out) *sum_out = total;
  return rounds;
}

}  // namespace mrlr::mrc
