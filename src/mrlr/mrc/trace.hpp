#pragma once
// Execution trace reporting: turn an Engine's metrics into tables / CSV
// for the bench harness and EXPERIMENTS.md.

#include <iosfwd>

#include "mrlr/mrc/metrics.hpp"

namespace mrlr::mrc {

/// One line per round: label, words sent, max inbox/outbox/resident,
/// central inbox, violation flag.
void write_trace_csv(const Metrics& metrics, std::ostream& os);

/// Compact human-readable dump (used by examples and failed-test output).
void print_trace(const Metrics& metrics, std::ostream& os);

/// One-line summary: "rounds=R maxwords=W central=C comm=T".
void print_summary(const Metrics& metrics, std::ostream& os);

}  // namespace mrlr::mrc
