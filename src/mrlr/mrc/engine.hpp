#pragma once
// The synchronous round engine: the simulated MapReduce cluster.
//
// Execution model (matching Karloff et al.'s MRC formalization):
//   * state lives on machines; machine 0 is the central machine;
//   * a round runs a user callback once per machine, giving it the
//     machine's inbox (messages sent in the previous round) and letting
//     it emit messages for the next round;
//   * after all machines have run, the engine audits per-machine space
//     (inbox words, declared resident words, outbox words against the
//     topology's cap), records metrics, and delivers the messages.
//
// Machines within a round are data-independent, so the engine routes the
// per-machine callbacks through an exec::Executor: the serial backend
// runs them in machine order on the calling thread, the thread-pool
// backend runs them concurrently (Topology::num_threads). Either way the
// simulation is deterministic: each machine's send() appends only to its
// own staging outbox, and staged messages are merged into next-round
// inboxes in machine-id order after the round barrier, so traces,
// metrics, and SpaceLimitExceeded behavior are byte-identical across
// backends and thread counts. Since the quantities the paper bounds are
// rounds and words (not wall-clock), the backend is irrelevant to the
// measured results; determinism makes every experiment replayable from
// its seed.
//
// Per-machine algorithm state is owned by the algorithms themselves
// (typically a std::vector sized by num_machines); the engine owns only
// the mailboxes and the cost accounting. Under a threaded backend, round
// callbacks must write only machine-disjoint algorithm state (per-machine
// slots or id-strided vector elements); shared reductions belong in
// per-machine slots merged after the round returns.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/exec/executor.hpp"
#include "mrlr/mrc/config.hpp"
#include "mrlr/mrc/message.hpp"
#include "mrlr/mrc/metrics.hpp"

namespace mrlr::mrc {

/// Thrown when Topology::enforce is set and a machine exceeds its
/// word cap in some round. The reported machine is the lowest-id
/// offender of the round, independent of the execution backend.
class SpaceLimitExceeded : public std::runtime_error {
 public:
  SpaceLimitExceeded(std::string what, std::uint64_t words,
                     std::uint64_t cap);
  std::uint64_t words;
  std::uint64_t cap;
};

class Engine;

/// Handle passed to the per-machine round callback. Under a threaded
/// backend each machine's context is used from one worker thread; all
/// members touch only that machine's slots, so contexts never contend.
class MachineContext {
 public:
  MachineId id() const { return id_; }
  std::uint64_t num_machines() const;
  bool is_central() const { return id_ == kCentral; }

  /// Messages delivered to this machine at the start of the round.
  const std::vector<Message>& inbox() const;

  /// Total words in the inbox.
  std::uint64_t inbox_words() const;

  /// Queue a message for delivery at the start of the next round.
  void send(MachineId to, std::vector<Word> payload);
  void send(MachineId to, std::initializer_list<Word> payload);

  /// Declare the words of algorithm state resident on this machine during
  /// this round. Algorithms must call this with an honest figure; the
  /// engine audits it against the topology cap.
  void charge_resident(std::uint64_t words);

 private:
  friend class Engine;
  MachineContext(Engine& engine, MachineId id) : engine_(engine), id_(id) {}
  Engine& engine_;
  MachineId id_;
};

class Engine {
 public:
  /// Builds the execution backend from topology.num_threads.
  explicit Engine(Topology topology);

  /// Uses a caller-provided backend (e.g. a pool shared across engines,
  /// or a specific executor under test). `executor` must not be null.
  Engine(Topology topology, std::shared_ptr<exec::Executor> executor);

  const Topology& topology() const { return topology_; }
  std::uint64_t num_machines() const { return topology_.num_machines; }
  const exec::Executor& executor() const { return *executor_; }

  /// Execute one synchronous round. `fn` is invoked once per machine
  /// (possibly concurrently; see the header comment for the rules).
  /// `label` names the phase in the execution trace.
  void run_round(std::string_view label,
                 const std::function<void(MachineContext&)>& fn);

  /// Convenience: run a round in which only the central machine does work
  /// (the paper's blue lines). Other machines still participate (their
  /// inboxes are cleared) but run no user code.
  void run_central_round(std::string_view label,
                         const std::function<void(MachineContext&)>& fn);

  const Metrics& metrics() const { return metrics_; }

  /// Direct access for algorithms that need to inspect what a machine
  /// will receive next round (testing only). Throws std::out_of_range
  /// for machine ids outside [0, num_machines()).
  const std::vector<Message>& pending_inbox(MachineId m) const;

 private:
  friend class MachineContext;

  /// A message queued by one machine during the current round, waiting
  /// for the post-barrier merge into next_.
  struct StagedMessage {
    MachineId to;
    Message msg;
  };

  Topology topology_;
  std::shared_ptr<exec::Executor> executor_;
  Metrics metrics_;
  // inboxes_[m] = messages delivered to machine m this round.
  std::vector<std::vector<Message>> inboxes_;
  // next_[m] = messages queued for machine m for the next round.
  std::vector<std::vector<Message>> next_;
  // staging_[m] = messages machine m sent this round; only machine m's
  // callback writes its slot, so sends never contend. Merged into next_
  // in machine-id order after the barrier.
  std::vector<std::vector<StagedMessage>> staging_;
  // Per-round scratch, reset in run_round; slot m is written only by
  // machine m's callback.
  std::vector<std::uint64_t> outbox_words_;
  std::vector<std::uint64_t> resident_words_;
};

}  // namespace mrlr::mrc
