#pragma once
// The synchronous round engine: the simulated MapReduce cluster.
//
// Execution model (matching Karloff et al.'s MRC formalization):
//   * state lives on machines; machine 0 is the central machine;
//   * a round runs a user callback once per machine, giving it the
//     machine's inbox (messages sent in the previous round) and letting
//     it emit messages for the next round;
//   * after all machines have run, the engine audits per-machine space
//     (inbox words, declared resident words, outbox words against the
//     topology's cap), records metrics, and delivers the messages.
//
// Machines within a round are data-independent, so the engine routes the
// per-machine callbacks through an exec::Executor: the serial backend
// runs them in machine order on the calling thread, the thread-pool
// backend runs them concurrently (Topology::num_threads), and the
// process-sharded backend (Topology::num_shards) runs them in
// persistent worker processes spawned once per job; each round the
// engine ships every worker its machines' inboxes and the workers ship
// their staged arenas back through the engine's ShardJobPlane
// implementation. Either way the
// simulation is deterministic: each machine's sends append only to its
// own staging arena, and staged messages are merged into next-round
// inboxes in machine-id order after the round barrier, so traces,
// metrics, and SpaceLimitExceeded behavior are byte-identical across
// backends, thread counts, and shard counts. Since the quantities the paper bounds are
// rounds and words (not wall-clock), the backend is irrelevant to the
// measured results; determinism makes every experiment replayable from
// its seed.
//
// Message storage (the flat-buffer shuffle): each machine's staging slot
// is one contiguous Word buffer plus a small (to, offset, len) frame
// index — no per-message heap allocation. The post-barrier merge builds
// per-destination frame indexes in sender-id order and then moves the
// arena slabs wholesale into the delivered position; payload words are
// written exactly once, at send time. Callbacks read their inbox as
// MessageView spans into the senders' slabs via messages(); the owning
// inbox() remains as a compatibility shim that materializes Message
// copies on demand.
//
// Per-machine algorithm state is owned by the algorithms themselves
// (typically a std::vector sized by num_machines); the engine owns only
// the mailboxes and the cost accounting. Under a threaded backend, round
// callbacks must write only machine-disjoint algorithm state (per-machine
// slots or id-strided vector elements); shared reductions belong in
// per-machine slots merged after the round returns. Batched sends follow
// the same rule: a MessageWriter appends to its own machine's arena, so
// at most one writer per machine may be open at a time, and plain sends
// may not interleave with an open writer.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/util/require.hpp"

#include "mrlr/exec/executor.hpp"
#include "mrlr/mrc/config.hpp"
#include "mrlr/mrc/message.hpp"
#include "mrlr/mrc/metrics.hpp"

namespace mrlr::mrc {

/// Thrown when Topology::enforce is set and a machine exceeds its
/// word cap in some round. The reported machine is the lowest-id
/// offender of the round, independent of the execution backend.
class SpaceLimitExceeded : public std::runtime_error {
 public:
  SpaceLimitExceeded(std::string what, std::uint64_t words,
                     std::uint64_t cap);
  std::uint64_t words;
  std::uint64_t cap;
};

class Engine;
class MachineContext;

/// Zero-copy batched message builder: words push straight into the
/// sending machine's staging arena; the frame is committed when the
/// writer is destroyed (or discarded entirely via cancel()). If the
/// writer dies during exception unwind the partial message is rolled
/// back, not committed — a half-built record must never become
/// deliverable traffic. At most one writer per machine may be open at a
/// time, and MachineContext::send may not be called while one is open —
/// frames must stay contiguous.
class MessageWriter {
 public:
  MessageWriter(const MessageWriter&) = delete;
  MessageWriter& operator=(const MessageWriter&) = delete;
  ~MessageWriter();

  void push(Word w);
  void append(std::span<const Word> words);

  /// Words written so far.
  std::uint64_t size() const;
  bool empty() const { return size() == 0; }

  /// Rolls the arena back to the pre-writer state: no message is sent
  /// and nothing is charged. The writer is dead afterwards.
  void cancel();

 private:
  friend class MachineContext;
  MessageWriter(Engine& engine, MachineId from, MachineId to);

  Engine* engine_;
  MachineId from_;
  MachineId to_;
  std::uint64_t begin_;
  int uncaught_on_open_;
  bool done_ = false;
};

/// Lightweight range over one machine's delivered messages, yielding
/// MessageView spans into the senders' slabs. Valid only during the
/// round in which it was obtained.
class InboxView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = MessageView;
    using difference_type = std::ptrdiff_t;

    MessageView operator*() const;
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++i_;
      return t;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    friend class InboxView;
    iterator(const Engine* engine, MachineId m, std::size_t i)
        : engine_(engine), m_(m), i_(i) {}
    const Engine* engine_;
    MachineId m_;
    std::size_t i_;
  };

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  MessageView operator[](std::size_t i) const;
  iterator begin() const { return iterator(engine_, m_, 0); }
  iterator end() const { return iterator(engine_, m_, size()); }

 private:
  friend class MachineContext;
  InboxView(const Engine& engine, MachineId m) : engine_(&engine), m_(m) {}
  const Engine* engine_;
  MachineId m_;
};

/// Handle passed to the per-machine round callback. Under a threaded
/// backend each machine's context is used from one worker thread; all
/// members touch only that machine's slots, so contexts never contend.
class MachineContext {
 public:
  MachineId id() const { return id_; }
  std::uint64_t num_machines() const;
  bool is_central() const { return id_ == kCentral; }

  /// Zero-copy view of the messages delivered to this machine at the
  /// start of the round, in (sender id, send order) order. Views are
  /// invalidated by the end of the round.
  InboxView messages() const;

  /// Number of messages delivered this round.
  std::size_t inbox_size() const;

  /// The i-th delivered message as a zero-copy view.
  MessageView message(std::size_t i) const;

  /// Compatibility shim: the inbox as owning Message objects,
  /// materialized (and cached) on demand. Prefer messages().
  const std::vector<Message>& inbox() const;

  /// Total words in the inbox (precomputed; O(1)).
  std::uint64_t inbox_words() const;

  /// Queue a message for delivery at the start of the next round. The
  /// payload is copied once into this machine's staging arena (and not
  /// consumed — callers may reuse their buffer).
  void send(MachineId to, const std::vector<Word>& payload);
  void send(MachineId to, std::initializer_list<Word> payload);

  /// Span-based send: copies `payload` into the arena without requiring
  /// the caller to own a std::vector.
  void send_batch(MachineId to, std::span<const Word> payload);

  /// Zero-copy batched send: returns a writer appending directly to
  /// this machine's arena. The message is framed when the writer dies.
  MessageWriter begin_message(MachineId to);

  /// Declare the words of algorithm state resident on this machine during
  /// this round. Algorithms must call this with an honest figure; the
  /// engine audits it against the topology cap.
  void charge_resident(std::uint64_t words);

 private:
  friend class Engine;
  MachineContext(Engine& engine, MachineId id) : engine_(engine), id_(id) {}
  Engine& engine_;
  MachineId id_;
};

/// Identifier of a round registered with Engine::define_round.
using RoundId = std::uint32_t;

class Engine : private exec::ShardJobPlane {
 public:
  /// Builds the execution backend from topology.num_threads /
  /// topology.num_shards.
  explicit Engine(Topology topology);

  /// Uses a caller-provided backend (e.g. a pool shared across engines,
  /// or a specific executor under test). `executor` must not be null.
  Engine(Topology topology, std::shared_ptr<exec::Executor> executor);

  /// Ends the persistent job, if one started (tears worker processes
  /// down on backends that spawned them).
  ~Engine() override;

  const Topology& topology() const { return topology_; }
  std::uint64_t num_machines() const { return topology_.num_machines; }
  const exec::Executor& executor() const { return *executor_; }

  /// Registered round callback: the machine context plus the invoke
  /// parameters (small per-invocation words, e.g. iteration number or a
  /// packed probability — the coordinator ships them to every worker).
  using RoundFn =
      std::function<void(MachineContext&, std::span<const Word>)>;

  /// Registers a round for the job. All rounds must be defined before
  /// the first invoke_round (worker-backed executors snapshot the
  /// registry when the job starts); definition after that throws.
  /// `label` names the phase in the execution trace each time the round
  /// is invoked.
  RoundId define_round(std::string label, RoundFn fn);

  /// Execute one synchronous round of a registered callback. The first
  /// invocation starts the job on the executor (spawning persistent
  /// workers under the process backend). `params` is broadcast to every
  /// machine's callback.
  void invoke_round(RoundId round, std::span<const Word> params = {});
  void invoke_round(RoundId round, std::initializer_list<Word> params);

  /// Execute one synchronous round. `fn` is invoked once per machine
  /// (possibly concurrently; see the header comment for the rules).
  /// `label` names the phase in the execution trace. Ad-hoc rounds
  /// cannot ship to persistent workers, so under the process backend
  /// with more than one shard this throws — drivers use define_round /
  /// invoke_round instead.
  void run_round(std::string_view label,
                 const std::function<void(MachineContext&)>& fn);

  /// Convenience: run a round in which only the central machine does work
  /// (the paper's blue lines). Other machines still participate (their
  /// inboxes are cleared) but run no user code.
  void run_central_round(std::string_view label,
                         const std::function<void(MachineContext&)>& fn);

  const Metrics& metrics() const { return metrics_; }

  /// Control-plane peek at delivered traffic: total words (O(1)) and
  /// message count in the inbox machine m will read in the round now
  /// starting. Between rounds this is the coordinator's merged view, so
  /// it is identical across every backend.
  ///
  /// The process-clean driver contract. Under `--backend process` the
  /// non-central machines run in persistent worker processes that fork
  /// once, at job start; after the setup frames ship, nothing in
  /// coordinator memory is visible to them. A driver is *process-clean*
  /// — and therefore portable to every backend with bit-identical
  /// results — iff its registered (define_round) callbacks touch only:
  ///
  ///   * job-immutable data captured before the first invoke_round (the
  ///     graph, parameters, footprints, an unforked root Rng copy);
  ///   * per-machine state that only that machine's own callbacks
  ///     mutate (worker-resident between rounds — owner-strided vector
  ///     slots are the idiom);
  ///   * invoke_round parameters, inbox messages, and RNG streams
  ///     derived deterministically from (round/iteration, machine id);
  ///
  /// and its host-side code between rounds uses only
  /// coordinator-visible state: these peeks, metrics(), central-round
  /// effects (the central machine is always coordinator-resident, so
  /// central state and run_central_round closures are unrestricted).
  /// Host -> machine communication goes through invoke params or
  /// central sends; machine -> host through messages to the central
  /// machine.
  ///
  /// Every driver in the tree is ported to this contract and runs under
  /// every backend: rlr_matching, rlr_bmatching, rlr_setcover /
  /// rlr_vertex_cover, filtering_matching / filtering_vertex_cover /
  /// filtering_weighted_matching, coreset_matching, greedy_setcover_mr,
  /// sample_prune_setcover, hungry_mis, luby_mis, hungry_clique,
  /// colouring (greedy + Luby), and luby_mr.
  ///
  /// These peeks exist precisely so control flow (e.g. a sampling fail
  /// check, a "did anyone send?" termination test) can stay on the
  /// coordinator without materializing inboxes or breaking the
  /// contract. Throws std::out_of_range for machine ids outside
  /// [0, num_machines()).
  std::uint64_t inbox_words(MachineId m) const;
  std::uint64_t inbox_size(MachineId m) const;

  /// Direct access for algorithms that need to inspect what a machine
  /// will receive next round (testing only; materialized on demand).
  /// Non-empty only after a round that threw SpaceLimitExceeded, since
  /// delivery otherwise completes within run_round. Throws
  /// std::out_of_range for machine ids outside [0, num_machines()).
  const std::vector<Message>& pending_inbox(MachineId m) const;

 private:
  friend class MachineContext;
  friend class MessageWriter;
  friend class InboxView;

  /// ShardDataPlane: wire encoding of machines [first, last) for the
  /// process-sharded backend — per machine, the accounting slots
  /// (outbox words, resident words, writer-open flag) followed by the
  /// staged frame index and the arena word buffer verbatim (the flat
  /// slab layout already is a wire format). apply_machines validates
  /// every field and throws exec::TransportError(kBadPayload) on
  /// malformed bytes; after it installs a shard, the ordinary
  /// id-ordered merge in run_round proceeds unchanged.
  void serialize_machines(std::uint64_t first, std::uint64_t last,
                          std::vector<std::byte>& out) const override;
  void apply_machines(std::uint64_t first, std::uint64_t last,
                      std::span<const std::byte> bytes) override;

  /// ShardJobPlane: per-round inbox shipping for persistent workers —
  /// per machine, the delivered word total and frame count, then each
  /// message as (sender, length, payload words). apply_round_input
  /// rebuilds the worker-local inbox index and slabs from the bytes and
  /// resets the range's per-round scratch; it validates every field and
  /// throws exec::TransportError(kBadPayload) on malformed bytes.
  void serialize_round_input(std::uint64_t first, std::uint64_t last,
                             std::vector<std::byte>& out) const override;
  void apply_round_input(std::uint64_t first, std::uint64_t last,
                         std::span<const std::byte> bytes) override;
  void run_registered(std::uint64_t round_id, std::uint64_t machine,
                      std::span<const std::uint64_t> params) override;
  std::uint64_t registered_rounds() const override {
    return rounds_.size();
  }
  std::string_view round_label(std::uint64_t i) const override {
    return rounds_[i].label;
  }

  void check_machine_id(MachineId m, const char* what) const;

  /// Shared body of run_round / run_central_round. `central_only`
  /// rounds skip the shard data plane: only the coordinator-resident
  /// central machine does work, so a process backend has nothing to
  /// ship.
  void run_round_impl(std::string_view label,
                      const std::function<void(MachineContext&)>& fn,
                      bool central_only);

  /// Round prologue/epilogue shared by run_round_impl and invoke_round:
  /// resets per-round scratch, runs `dispatch` (the executor call),
  /// then merges staged frames, records metrics, audits space, and
  /// delivers.
  void round_body(std::string_view label, bool central_only,
                  const std::function<void()>& dispatch);

  /// One message in a sender's staging arena: destination plus the
  /// [offset, offset+len) extent in that arena's word buffer.
  struct Frame {
    MachineId to;
    std::uint64_t offset;
    std::uint64_t len;
  };

  /// Per-sender round arena: one flat word buffer plus the frame index.
  /// Buffers keep their capacity across rounds, so steady-state rounds
  /// allocate nothing.
  struct Outbox {
    std::vector<Word> words;
    std::vector<Frame> frames;
  };

  /// Inbox index entry: the message occupies
  /// slabs_[from].words[offset, offset+len).
  struct InboxFrame {
    MachineId from;
    std::uint64_t offset;
    std::uint64_t len;
  };

  /// Zero-copy view of delivered message i of machine m.
  MessageView view_message(MachineId m, std::size_t i) const {
    const InboxFrame& f = inbox_frames_[m][i];
    return {f.from, {slabs_[f.from].words.data() + f.offset,
                     static_cast<std::size_t>(f.len)}};
  }

  const std::vector<Message>& materialized_inbox(MachineId m) const;

  /// Copies the messages a frame index describes out of their arenas
  /// into owning Message objects (the compatibility-shim slow path).
  static void materialize(const std::vector<InboxFrame>& frames,
                          const std::vector<Outbox>& arenas,
                          std::vector<Message>& out);

  Topology topology_;
  std::shared_ptr<exec::Executor> executor_;
  Metrics metrics_;
  /// Rounds registered via define_round; frozen once the job starts
  /// (worker processes inherit the registry at spawn, so it must never
  /// change afterwards).
  struct Registered {
    std::string label;
    RoundFn fn;
  };
  std::vector<Registered> rounds_;
  bool job_started_ = false;
  // staging_[m] = machine m's outgoing arena for the current round; only
  // machine m's callback (its sends and writers) touches it, so sends
  // never contend. After the barrier the arenas are merged by frame
  // index and then moved wholesale into slabs_.
  std::vector<Outbox> staging_;
  // slabs_[s] = sender s's arena from the previous round, backing this
  // round's inboxes. Spent slabs are recycled as staging buffers.
  std::vector<Outbox> slabs_;
  // inbox_frames_[m] = this round's messages for machine m, in
  // (sender id, send order) order; words live in slabs_.
  std::vector<std::vector<InboxFrame>> inbox_frames_;
  std::vector<std::uint64_t> inbox_words_;  // per-destination totals
  // Merge scratch for the next round's inbox index.
  std::vector<std::vector<InboxFrame>> next_frames_;
  std::vector<std::uint64_t> next_inbox_words_;
  // writer_open_[m] = machine m has a live MessageWriter (its frame is
  // still growing, so no other send may interleave).
  std::vector<char> writer_open_;
  // Per-round scratch, reset in run_round; slot m is written only by
  // machine m's callback.
  std::vector<std::uint64_t> outbox_words_;
  std::vector<std::uint64_t> resident_words_;
  // Lazy materialization caches for the compatibility shims. Slot m is
  // only touched by machine m's thread (inbox) or by the host between
  // rounds (pending), so no synchronization is needed.
  mutable std::vector<std::vector<Message>> inbox_cache_;
  mutable std::vector<char> inbox_cache_valid_;
  mutable std::vector<std::vector<Message>> pending_cache_;
};

// ------------------------------------------------------------ inline --
// Hot-path members live here so shuffle-heavy algorithm loops inline
// them; everything below only touches the calling machine's slots.

inline MessageView InboxView::operator[](std::size_t i) const {
  return engine_->view_message(m_, i);
}

inline std::size_t InboxView::size() const {
  return engine_->inbox_frames_[m_].size();
}

inline MessageView InboxView::iterator::operator*() const {
  return engine_->view_message(m_, i_);
}

inline InboxView MachineContext::messages() const {
  return InboxView(engine_, id_);
}

inline std::size_t MachineContext::inbox_size() const {
  return engine_.inbox_frames_[id_].size();
}

inline MessageView MachineContext::message(std::size_t i) const {
  return engine_.view_message(id_, i);
}

inline std::uint64_t MachineContext::inbox_words() const {
  return engine_.inbox_words_[id_];
}

inline MessageWriter::MessageWriter(Engine& engine, MachineId from,
                                    MachineId to)
    : engine_(&engine), from_(from), to_(to),
      begin_(engine.staging_[from].words.size()),
      uncaught_on_open_(std::uncaught_exceptions()) {
  engine.writer_open_[from] = 1;
}

inline MessageWriter::~MessageWriter() {
  if (done_) return;
  if (std::uncaught_exceptions() > uncaught_on_open_) {
    // Dying on the unwind path: roll the partial message back.
    cancel();
    return;
  }
  Engine::Outbox& out = engine_->staging_[from_];
  const std::uint64_t len = out.words.size() - begin_;
  out.frames.push_back({to_, begin_, len});
  engine_->outbox_words_[from_] += len;
  engine_->writer_open_[from_] = 0;
}

inline void MessageWriter::push(Word w) {
  MRLR_DEBUG_REQUIRE(!done_, "MessageWriter: push after cancel");
  engine_->staging_[from_].words.push_back(w);
}

inline void MessageWriter::append(std::span<const Word> words) {
  MRLR_DEBUG_REQUIRE(!done_, "MessageWriter: append after cancel");
  auto& buf = engine_->staging_[from_].words;
  buf.insert(buf.end(), words.begin(), words.end());
}

inline std::uint64_t MessageWriter::size() const {
  MRLR_DEBUG_REQUIRE(!done_, "MessageWriter: size after cancel");
  return engine_->staging_[from_].words.size() - begin_;
}

inline void MessageWriter::cancel() {
  engine_->staging_[from_].words.resize(begin_);
  engine_->writer_open_[from_] = 0;
  done_ = true;
}

}  // namespace mrlr::mrc
