#pragma once
// The synchronous round engine: the simulated MapReduce cluster.
//
// Execution model (matching Karloff et al.'s MRC formalization):
//   * state lives on machines; machine 0 is the central machine;
//   * a round runs a user callback once per machine, in machine order,
//     giving it the machine's inbox (messages sent in the previous round)
//     and letting it emit messages for the next round;
//   * after all machines have run, the engine audits per-machine space
//     (inbox words, declared resident words, outbox words against the
//     topology's cap), records metrics, and delivers the messages.
//
// Machines are simulated sequentially and deterministically; since the
// quantities the paper bounds are rounds and words (not wall-clock), the
// simulation order is irrelevant to the measured results, but determinism
// makes every experiment replayable from its seed.
//
// Per-machine algorithm state is owned by the algorithms themselves
// (typically a std::vector sized by num_machines); the engine owns only
// the mailboxes and the cost accounting.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/mrc/config.hpp"
#include "mrlr/mrc/message.hpp"
#include "mrlr/mrc/metrics.hpp"

namespace mrlr::mrc {

/// Thrown when Topology::enforce is set and a machine exceeds its
/// word cap in some round.
class SpaceLimitExceeded : public std::runtime_error {
 public:
  SpaceLimitExceeded(std::string what, std::uint64_t words,
                     std::uint64_t cap);
  std::uint64_t words;
  std::uint64_t cap;
};

class Engine;

/// Handle passed to the per-machine round callback.
class MachineContext {
 public:
  MachineId id() const { return id_; }
  std::uint64_t num_machines() const;
  bool is_central() const { return id_ == kCentral; }

  /// Messages delivered to this machine at the start of the round.
  const std::vector<Message>& inbox() const;

  /// Total words in the inbox.
  std::uint64_t inbox_words() const;

  /// Queue a message for delivery at the start of the next round.
  void send(MachineId to, std::vector<Word> payload);
  void send(MachineId to, std::initializer_list<Word> payload);

  /// Declare the words of algorithm state resident on this machine during
  /// this round. Algorithms must call this with an honest figure; the
  /// engine audits it against the topology cap.
  void charge_resident(std::uint64_t words);

 private:
  friend class Engine;
  MachineContext(Engine& engine, MachineId id) : engine_(engine), id_(id) {}
  Engine& engine_;
  MachineId id_;
};

class Engine {
 public:
  explicit Engine(Topology topology);

  const Topology& topology() const { return topology_; }
  std::uint64_t num_machines() const { return topology_.num_machines; }

  /// Execute one synchronous round. `fn` is invoked once per machine.
  /// `label` names the phase in the execution trace.
  void run_round(std::string_view label,
                 const std::function<void(MachineContext&)>& fn);

  /// Convenience: run a round in which only the central machine does work
  /// (the paper's blue lines). Other machines still participate (their
  /// inboxes are cleared) but run no user code.
  void run_central_round(std::string_view label,
                         const std::function<void(MachineContext&)>& fn);

  const Metrics& metrics() const { return metrics_; }

  /// Direct access for algorithms that need to inspect what a machine
  /// will receive next round (testing only).
  const std::vector<Message>& pending_inbox(MachineId m) const;

 private:
  friend class MachineContext;

  Topology topology_;
  Metrics metrics_;
  // inboxes_[m] = messages delivered to machine m this round.
  std::vector<std::vector<Message>> inboxes_;
  // next_[m] = messages queued for machine m for the next round.
  std::vector<std::vector<Message>> next_;
  // Per-round scratch, reset in run_round.
  std::vector<std::uint64_t> outbox_words_;
  std::vector<std::uint64_t> resident_words_;
};

}  // namespace mrlr::mrc
