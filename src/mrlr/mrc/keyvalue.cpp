#include "mrlr/mrc/keyvalue.hpp"

#include <algorithm>
#include <map>

#include "mrlr/util/rng.hpp"

namespace mrlr::mrc {

MapReduceJob::MapReduceJob(Engine& engine, std::vector<KeyValue> input)
    : engine_(engine), data_(engine.num_machines()),
      map_scratch_(engine.num_machines(),
                   std::vector<std::vector<Word>>(engine.num_machines())) {
  for (std::size_t i = 0; i < input.size(); ++i) {
    data_[i % engine_.num_machines()].push_back(std::move(input[i]));
  }
}

MachineId MapReduceJob::machine_of_key(Word key) const {
  // Stateless splitmix64 hash spreads adversarial key patterns.
  std::uint64_t s = key;
  return static_cast<MachineId>(splitmix64_next(s) %
                                engine_.num_machines());
}

std::uint64_t MapReduceJob::resident_words(MachineId m) const {
  // Same cost model as the shuffle framing: key + length + value.
  std::uint64_t words = 0;
  for (const KeyValue& kv : data_[m]) words += 2 + kv.value.size();
  return words;
}

void MapReduceJob::round(std::string_view label, const Mapper& map,
                         const Reducer& reduce) {
  // Engine round 1: map local pairs, ship emissions keyed by target.
  // Message framing: [key, value_len, value...] repeated.
  engine_.run_round(label, [&](MachineContext& ctx) {
    ctx.charge_resident(resident_words(ctx.id()));
    // Group emissions per destination to cut message overhead; the
    // buffers are handed to the arena in one span copy each, and kept
    // (capacity intact) across rounds.
    std::vector<std::vector<Word>>& out = map_scratch_[ctx.id()];
    for (std::vector<Word>& buf : out) buf.clear();
    for (const KeyValue& kv : data_[ctx.id()]) {
      for (KeyValue& emitted : map(kv)) {
        auto& buf = out[machine_of_key(emitted.key)];
        buf.push_back(emitted.key);
        buf.push_back(emitted.value.size());
        buf.insert(buf.end(), emitted.value.begin(), emitted.value.end());
      }
    }
    for (MachineId m = 0; m < engine_.num_machines(); ++m) {
      if (!out[m].empty()) ctx.send_batch(m, out[m]);
    }
  });

  // Engine round 2: group received values by key and reduce.
  std::vector<std::vector<KeyValue>> next(engine_.num_machines());
  engine_.run_round(label, [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words());
    // std::map gives deterministic key order; values keep arrival order.
    std::map<Word, std::vector<std::vector<Word>>> groups;
    for (const MessageView msg : ctx.messages()) {
      decode_kv_frames(msg.payload, [&](Word key, std::span<const Word> v) {
        groups[key].emplace_back(v.begin(), v.end());
      });
    }
    for (const auto& [key, values] : groups) {
      for (KeyValue& out : reduce(key, values)) {
        next[ctx.id()].push_back(std::move(out));
      }
    }
  });
  data_ = std::move(next);
}

std::vector<KeyValue> MapReduceJob::collect() const {
  std::vector<KeyValue> all;
  for (const auto& part : data_) {
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end(), [](const KeyValue& a, const KeyValue& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  });
  return all;
}

}  // namespace mrlr::mrc
