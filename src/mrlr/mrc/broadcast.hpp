#pragma once
// Broadcast and converge-cast trees (Theorem 2.4 and Section 4.1 of the
// paper). Sending a payload of B words from the central machine directly
// to all M machines would cost B*M outbox words on the central machine,
// which can exceed its O(n^{1+mu}) cap; instead machines are arranged in a
// fanout-F tree (F = topology().fanout, the paper's n^mu), and the payload
// is forwarded level by level in ceil(log_F M) genuine engine rounds.
//
// These helpers run *real* rounds on the engine: the traffic is audited
// against the space cap like any algorithm traffic, so the space-safety
// claim of Theorem 2.4 is checked rather than assumed.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mrlr/mrc/engine.hpp"

namespace mrlr::mrc {

/// Position of machine m in the fanout-F heap-ordered tree rooted at the
/// central machine: children of m are m*F+1 ... m*F+F.
MachineId tree_parent(MachineId m, std::uint64_t fanout);

/// Depth of machine m in that tree (root has depth 0).
unsigned tree_depth(MachineId m, std::uint64_t fanout);

/// Rounds a fanout-`fanout` broadcast needs to reach `machines` machines.
std::uint64_t broadcast_rounds(std::uint64_t machines, std::uint64_t fanout);

/// Deliver `payload` from the central machine to every machine.
/// Returns the number of rounds consumed (0 when there is one machine).
/// On completion, `received` (if non-null) holds one copy per machine.
///
/// Host-driven (the holder set and payload live in captured host state),
/// so this form runs on in-process backends only; process-clean drivers
/// use JobBroadcast below.
std::uint64_t broadcast_from_central(
    Engine& engine, const std::vector<Word>& payload, std::string_view label,
    std::vector<std::vector<Word>>* received = nullptr);

/// Process-clean tree broadcast: one registered round, re-invoked
/// depth+1 times per run(). Construct before the job starts (the
/// constructor registers the round). Each machine stores the first copy
/// of the current generation's payload it sees and forwards it down the
/// tree; the final (drain) round consumes the leaf deliveries and runs
/// `apply` on every machine with the payload — the hook is where a
/// driver updates its per-machine worker-resident state from the
/// broadcast. All holder state is per-machine slots mutated only by
/// that machine's own callback, so persistent workers carry it across
/// rounds; the traffic, charges, and round count match
/// broadcast_from_central (depth rounds + 1 drain) except on
/// single-machine topologies, where the drain round still runs so
/// `apply` fires.
class JobBroadcast {
 public:
  using ApplyFn = std::function<void(MachineContext&, std::span<const Word>)>;

  JobBroadcast(Engine& engine, std::string label, ApplyFn apply = nullptr);

  /// Broadcasts `payload` from the central machine; returns rounds
  /// consumed. Host-side (the central machine is coordinator-resident).
  std::uint64_t run(std::vector<Word> payload);

 private:
  Engine* engine_;
  ApplyFn apply_;
  RoundId round_;
  std::uint64_t generation_ = 0;
  // Per-machine slots: only machine m's callback touches index m.
  std::vector<std::vector<Word>> held_;
  std::vector<std::uint64_t> gen_;
};

/// Converge-cast: machine m contributes values[m]; the tree sums them
/// upward and the root learns the total. Returns rounds consumed, and
/// writes the total through `sum_out`.
std::uint64_t aggregate_sum(Engine& engine, const std::vector<Word>& values,
                            std::string_view label, Word* sum_out);

/// Converge-cast followed by broadcast: every machine learns the sum.
/// Returns rounds consumed; writes the total through `sum_out`.
std::uint64_t allreduce_sum(Engine& engine, const std::vector<Word>& values,
                            std::string_view label, Word* sum_out);

}  // namespace mrlr::mrc
