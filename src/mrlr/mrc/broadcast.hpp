#pragma once
// Broadcast and converge-cast trees (Theorem 2.4 and Section 4.1 of the
// paper). Sending a payload of B words from the central machine directly
// to all M machines would cost B*M outbox words on the central machine,
// which can exceed its O(n^{1+mu}) cap; instead machines are arranged in a
// fanout-F tree (F = topology().fanout, the paper's n^mu), and the payload
// is forwarded level by level in ceil(log_F M) genuine engine rounds.
//
// These helpers run *real* rounds on the engine: the traffic is audited
// against the space cap like any algorithm traffic, so the space-safety
// claim of Theorem 2.4 is checked rather than assumed.

#include <cstdint>
#include <string_view>
#include <vector>

#include "mrlr/mrc/engine.hpp"

namespace mrlr::mrc {

/// Position of machine m in the fanout-F heap-ordered tree rooted at the
/// central machine: children of m are m*F+1 ... m*F+F.
MachineId tree_parent(MachineId m, std::uint64_t fanout);

/// Depth of machine m in that tree (root has depth 0).
unsigned tree_depth(MachineId m, std::uint64_t fanout);

/// Rounds a fanout-`fanout` broadcast needs to reach `machines` machines.
std::uint64_t broadcast_rounds(std::uint64_t machines, std::uint64_t fanout);

/// Deliver `payload` from the central machine to every machine.
/// Returns the number of rounds consumed (0 when there is one machine).
/// On completion, `received` (if non-null) holds one copy per machine.
std::uint64_t broadcast_from_central(
    Engine& engine, const std::vector<Word>& payload, std::string_view label,
    std::vector<std::vector<Word>>* received = nullptr);

/// Converge-cast: machine m contributes values[m]; the tree sums them
/// upward and the root learns the total. Returns rounds consumed, and
/// writes the total through `sum_out`.
std::uint64_t aggregate_sum(Engine& engine, const std::vector<Word>& values,
                            std::string_view label, Word* sum_out);

/// Converge-cast followed by broadcast: every machine learns the sum.
/// Returns rounds consumed; writes the total through `sum_out`.
std::uint64_t allreduce_sum(Engine& engine, const std::vector<Word>& values,
                            std::string_view label, Word* sum_out);

}  // namespace mrlr::mrc
