#pragma once
// Round-by-round cost accounting: the quantities Figure 1 of the paper
// bounds (rounds, words per machine) plus communication totals.

#include <cstdint>
#include <string>
#include <vector>

namespace mrlr::mrc {

/// Costs of one synchronous round.
struct RoundMetrics {
  std::string label;              ///< algorithm-provided phase label
  std::uint64_t total_sent = 0;   ///< words sent by all machines
  std::uint64_t max_outbox = 0;   ///< max words sent by one machine
  std::uint64_t max_inbox = 0;    ///< max words received by one machine
  std::uint64_t max_resident = 0; ///< max declared resident words
  std::uint64_t central_inbox = 0;  ///< words received by machine 0
  bool space_violation = false;
};

/// Aggregate over a whole algorithm execution.
class Metrics {
 public:
  void record(RoundMetrics r);

  std::uint64_t rounds() const { return rounds_.size(); }
  const std::vector<RoundMetrics>& per_round() const { return rounds_; }

  /// Max over rounds of max(inbox, resident, outbox) on any machine:
  /// the "space per machine" column of Figure 1.
  std::uint64_t max_machine_words() const { return max_machine_words_; }

  /// Max words ever received by the central machine in one round.
  std::uint64_t max_central_inbox() const { return max_central_inbox_; }

  /// Total words communicated over the whole execution.
  std::uint64_t total_communication() const { return total_comm_; }

  std::uint64_t violations() const { return violations_; }

  void clear();

 private:
  std::vector<RoundMetrics> rounds_;
  std::uint64_t max_machine_words_ = 0;
  std::uint64_t max_central_inbox_ = 0;
  std::uint64_t total_comm_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace mrlr::mrc
