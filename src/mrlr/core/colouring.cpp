#include "mrlr/core/colouring.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "mrlr/seq/colouring.hpp"
#include "mrlr/seq/misra_gries.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::Edge;
using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::Word;

namespace {

struct Partition {
  std::uint64_t kappa = 1;
  std::uint64_t eta = 1;
  std::uint64_t group_edge_cap = 0;  // 13 * n^{1+mu}
};

Partition plan_partition(const graph::Graph& g, const MrParams& params) {
  Partition p;
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double c = params.c >= 0.0
                       ? params.c
                       : density_exponent(n, g.num_edges());
  p.eta = ipow_real(n, 1.0 + params.mu, 1);
  const double exp_kappa = (c - params.mu) / 2.0;
  p.kappa = std::max<std::uint64_t>(1, ipow_real(n, exp_kappa, 1));
  p.group_edge_cap = 13 * p.eta;
  return p;
}

}  // namespace

ColouringResult mr_vertex_colouring(const graph::Graph& g,
                                    const MrParams& params) {
  const Partition plan = plan_partition(g, params);
  ColouringResult res;
  res.groups = plan.kappa;

  mrc::Topology topo;
  topo.num_machines = plan.kappa;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack *
                               static_cast<double>(plan.group_edge_cap)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(
      2, ipow_real(std::max<std::uint64_t>(g.num_vertices(), 2), params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  // Random group per vertex (job-immutable once drawn).
  Rng rng(params.seed);
  std::vector<std::uint32_t> group(g.num_vertices());
  for (auto& x : group) x = static_cast<std::uint32_t>(rng.uniform(plan.kappa));

  // Count intra-group edges; the paper fails if any group is too big.
  std::vector<std::uint64_t> group_edges(plan.kappa, 0);
  for (const Edge& e : g.edges()) {
    if (group[e.u] == group[e.v]) ++group_edges[group[e.u]];
  }
  res.failed = std::any_of(group_edges.begin(), group_edges.end(),
                           [&](std::uint64_t ge) {
                             return ge > plan.group_edge_cap;
                           });

  // Round 1: every vertex ships its intra-group adjacency to machine
  // group(v) (Algorithm 5 line 7).
  const mrc::RoundId r_ship = engine.define_round(
      "ship-groups", [&](MachineContext& ctx, std::span<const Word>) {
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if (owner_of(v, plan.kappa) != ctx.id()) continue;
          mrc::MessageWriter msg =
              ctx.begin_message(static_cast<mrc::MachineId>(group[v]));
          msg.push(v);
          for (const graph::Incidence& inc : g.neighbours(v)) {
            if (group[inc.neighbour] == group[v]) {
              msg.push(inc.neighbour);
            }
          }
        }
      });

  // Round 2: each machine colours its induced subgraph greedily with
  // Delta_i + 1 colours and ships {palette size, (v, colour)...} to
  // central; disjoint palettes are realized via offsets there.
  const mrc::RoundId r_colour = engine.define_round(
      "colour-groups", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(2 * group_edges[ctx.id()] + 2);
        // Build machine i's induced subgraph.
        std::vector<VertexId> members;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if (group[v] == ctx.id()) members.push_back(v);
        }
        std::vector<std::uint32_t> local_id(g.num_vertices(), 0);
        for (std::uint32_t k = 0; k < members.size(); ++k) {
          local_id[members[k]] = k;
        }
        std::vector<Edge> edges;
        for (const Edge& e : g.edges()) {
          if (group[e.u] == ctx.id() && group[e.v] == ctx.id()) {
            edges.push_back({local_id[e.u], local_id[e.v]});
          }
        }
        const graph::Graph sub(members.size(), std::move(edges));
        const auto colours = seq::greedy_colouring(sub);
        std::uint64_t used = 0;
        for (const std::uint32_t c : colours) {
          used = std::max<std::uint64_t>(used, c + 1);
        }
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        msg.push(ctx.id());
        msg.push(used);
        for (std::uint32_t k = 0; k < members.size(); ++k) {
          msg.push(members[k]);
          msg.push(colours[k]);
        }
      });

  std::vector<std::uint32_t> local_colour(g.num_vertices(), 0);
  std::vector<std::uint64_t> palette(plan.kappa, 0);
  if (!res.failed) {
    engine.invoke_round(r_ship);
    engine.invoke_round(r_colour);
    // Round 3: central assembles the per-group colourings from its
    // inbox (one message per group, merged in sender-id order).
    engine.run_central_round("collect-colours", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words());
      for (const mrc::MessageView msg : ctx.messages()) {
        const auto i = static_cast<std::size_t>(msg.payload[0]);
        palette[i] = msg.payload[1];
        for (std::size_t k = 2; k + 1 < msg.payload.size(); k += 2) {
          local_colour[msg.payload[k]] =
              static_cast<std::uint32_t>(msg.payload[k + 1]);
        }
      }
    });
  }

  // Palette offsets (prefix sums) make colours globally distinct per
  // group: colour(v) = offset[group(v)] + c_i(v), mirroring the paper's
  // output pair (i, c_i(v)).
  std::vector<std::uint64_t> offset(plan.kappa + 1, 0);
  std::partial_sum(palette.begin(), palette.end(), offset.begin() + 1);
  res.colour.assign(g.num_vertices(), 0);
  if (!res.failed) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      res.colour[v] =
          static_cast<std::uint32_t>(offset[group[v]] + local_colour[v]);
    }
    res.colours_used = offset[plan.kappa];
  }
  res.outcome.failed = res.failed;
  res.outcome.fill_from(engine.metrics());
  return res;
}

ColouringResult mr_edge_colouring(const graph::Graph& g,
                                  const MrParams& params) {
  const Partition plan = plan_partition(g, params);
  ColouringResult res;
  res.groups = plan.kappa;

  mrc::Topology topo;
  topo.num_machines = plan.kappa;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack *
                               static_cast<double>(plan.group_edge_cap)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(
      2, ipow_real(std::max<std::uint64_t>(g.num_vertices(), 2), params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  // Random group per *edge* (Remark 6.5).
  Rng rng(params.seed);
  std::vector<std::uint32_t> group(g.num_edges());
  for (auto& x : group) x = static_cast<std::uint32_t>(rng.uniform(plan.kappa));

  std::vector<std::uint64_t> group_edges(plan.kappa, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) ++group_edges[group[e]];
  res.failed = std::any_of(group_edges.begin(), group_edges.end(),
                           [&](std::uint64_t ge) {
                             return ge > plan.group_edge_cap;
                           });

  const mrc::RoundId r_ship = engine.define_round(
      "ship-groups", [&](MachineContext& ctx, std::span<const Word>) {
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          if (owner_of(e, plan.kappa) != ctx.id()) continue;
          const Edge& ed = g.edge(e);
          ctx.send(static_cast<mrc::MachineId>(group[e]), {e, ed.u, ed.v});
        }
      });

  const mrc::RoundId r_colour = engine.define_round(
      "colour-groups", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(3 * group_edges[ctx.id()] + 2);
        // Build machine i's edge-group subgraph on the touched vertices.
        std::vector<EdgeId> members;
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          if (group[e] == ctx.id()) members.push_back(e);
        }
        if (members.empty()) return;
        std::vector<VertexId> verts;
        for (const EdgeId e : members) {
          verts.push_back(g.edge(e).u);
          verts.push_back(g.edge(e).v);
        }
        std::sort(verts.begin(), verts.end());
        verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
        std::vector<std::uint32_t> local_id(g.num_vertices(), 0);
        for (std::uint32_t k = 0; k < verts.size(); ++k) local_id[verts[k]] = k;
        std::vector<Edge> edges;
        edges.reserve(members.size());
        for (const EdgeId e : members) {
          edges.push_back({local_id[g.edge(e).u], local_id[g.edge(e).v]});
        }
        const graph::Graph sub(verts.size(), std::move(edges));
        const auto colours = seq::misra_gries_edge_colouring(sub);
        std::uint64_t used = 0;
        for (const std::uint32_t c : colours) {
          used = std::max<std::uint64_t>(used, c + 1);
        }
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        msg.push(ctx.id());
        msg.push(used);
        for (std::uint32_t k = 0; k < members.size(); ++k) {
          msg.push(members[k]);
          msg.push(colours[k]);
        }
      });

  std::vector<std::uint32_t> local_colour(g.num_edges(), 0);
  std::vector<std::uint64_t> palette(plan.kappa, 0);
  if (!res.failed) {
    engine.invoke_round(r_ship);
    engine.invoke_round(r_colour);
    engine.run_central_round("collect-colours", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words());
      for (const mrc::MessageView msg : ctx.messages()) {
        const auto i = static_cast<std::size_t>(msg.payload[0]);
        palette[i] = msg.payload[1];
        for (std::size_t k = 2; k + 1 < msg.payload.size(); k += 2) {
          local_colour[msg.payload[k]] =
              static_cast<std::uint32_t>(msg.payload[k + 1]);
        }
      }
    });
  }

  std::vector<std::uint64_t> offset(plan.kappa + 1, 0);
  std::partial_sum(palette.begin(), palette.end(), offset.begin() + 1);
  res.colour.assign(g.num_edges(), 0);
  if (!res.failed) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      res.colour[e] =
          static_cast<std::uint32_t>(offset[group[e]] + local_colour[e]);
    }
    res.colours_used = offset[plan.kappa];
  }
  res.outcome.failed = res.failed;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
