#include "mrlr/core/params.hpp"

namespace mrlr::core {

mrc::Word allreduce_sum_direct(mrc::Engine& engine,
                               const std::vector<mrc::Word>& values,
                               std::string_view label) {
  const std::uint64_t machines = engine.num_machines();
  if (machines == 1) return values[0];

  mrc::Word total = 0;
  engine.run_round(label, [&](mrc::MachineContext& ctx) {
    ctx.charge_resident(1);
    if (!ctx.is_central()) ctx.send(mrc::kCentral, {values[ctx.id()]});
  });
  engine.run_round(label, [&](mrc::MachineContext& ctx) {
    if (!ctx.is_central()) return;
    mrc::Word sum = values[mrc::kCentral];
    for (const mrc::MessageView msg : ctx.messages()) sum += msg.payload[0];
    total = sum;
    ctx.charge_resident(1);
    for (std::uint64_t m = 1; m < machines; ++m) {
      ctx.send(static_cast<mrc::MachineId>(m), {sum});
    }
  });
  // One drain round so recipients' inboxes are consumed within this
  // helper and the caller starts from a clean slate.
  engine.run_round(label, [&](mrc::MachineContext& ctx) {
    ctx.charge_resident(1);
  });
  return total;
}

std::vector<mrc::Word> allreduce_sum_vec(
    mrc::Engine& engine, const std::vector<std::vector<mrc::Word>>& values,
    std::string_view label) {
  const std::uint64_t machines = engine.num_machines();
  const std::size_t k = values[0].size();
  if (machines == 1) return values[0];

  std::vector<mrc::Word> total(k, 0);
  engine.run_round(label, [&](mrc::MachineContext& ctx) {
    ctx.charge_resident(k);
    if (!ctx.is_central()) ctx.send_batch(mrc::kCentral, values[ctx.id()]);
  });
  engine.run_round(label, [&](mrc::MachineContext& ctx) {
    if (!ctx.is_central()) return;
    total = values[mrc::kCentral];
    for (const mrc::MessageView msg : ctx.messages()) {
      for (std::size_t i = 0; i < k; ++i) total[i] += msg.payload[i];
    }
    ctx.charge_resident(k);
    for (std::uint64_t m = 1; m < machines; ++m) {
      ctx.send_batch(static_cast<mrc::MachineId>(m), total);
    }
  });
  engine.run_round(label, [&](mrc::MachineContext& ctx) {
    ctx.charge_resident(k);
  });
  return total;
}

}  // namespace mrlr::core
