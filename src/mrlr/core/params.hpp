#pragma once
// Shared parameters and small communication helpers for the paper's
// MapReduce algorithms.

#include <bit>
#include <cstdint>
#include <vector>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/mrc/engine.hpp"
#include "mrlr/util/rng.hpp"

namespace mrlr::core {

/// Knobs common to all algorithms. The paper's conventions:
///   * mu — space exponent: machines have ~n^{1+mu} words;
///   * c  — density exponent: the input has ~n^{1+c} items. When
///     negative, it is derived from the instance (m = n^{1+c});
///   * slack — constant factor absorbed by the O(n^{1+mu}) space bound
///     (Algorithm 1 needs 6*eta for its sample, Algorithm 4 needs 8*eta).
struct MrParams {
  double mu = 0.2;
  double c = -1.0;
  std::uint64_t seed = 1;
  double slack = 16.0;
  /// Safety valve for tests: abort the algorithm (failed=true) if it has
  /// not converged after this many outer iterations.
  std::uint64_t max_iterations = 10000;
  /// When false, the engine records space violations instead of throwing.
  bool enforce_space = true;
  /// Execution backend, forwarded to Topology::num_threads: 1 = serial,
  /// N > 1 = persistent N-thread pool, 0 = pool sized to the hardware.
  /// Results are byte-identical at any setting; only wall-clock changes.
  std::uint64_t num_threads = 1;
  /// Process-sharded backend, forwarded to Topology::num_shards by
  /// every driver (all are process-clean; see the contract on the peek
  /// accessors in mrc/engine.hpp). K > 1 = K persistent worker shard
  /// processes spawned once per job, 0/1 = in-process. Composes with
  /// num_threads: each shard runs its machine range on a shard-local
  /// pool of num_threads threads (K x T concurrent callbacks). Results
  /// stay byte-identical at any (K, T) setting.
  std::uint64_t num_shards = 1;
  /// Sample-size multiplier ablation (DESIGN.md §5): scales the paper's
  /// sampling probability (2*eta/|U_r| for Alg. 1, eta/|E_i| for Alg. 4).
  double sample_boost = 1.0;
};

/// Round-robin ownership of `count` items over `machines` machines.
/// Deterministic and balanced; items are placed "arbitrarily" in the
/// paper, and round-robin gives per-machine load count/M exactly.
inline mrc::MachineId owner_of(std::uint64_t item, std::uint64_t machines) {
  return static_cast<mrc::MachineId>(item % machines);
}

/// Bit-exact packing of weights into message words.
inline mrc::Word pack_double(double x) {
  return std::bit_cast<std::uint64_t>(x);
}
inline double unpack_double(mrc::Word w) { return std::bit_cast<double>(w); }

/// Two-round direct sum-allreduce for one small value per machine:
/// round 1 every machine sends its value to the central machine, round 2
/// the central machine sends the total back to everyone. Valid whenever
/// M (machine count) words fit in memory, which holds in the paper's
/// regime M = n^{c-mu} <= n^{1+mu}; the engine audits it regardless.
/// Returns the sum.
mrc::Word allreduce_sum_direct(mrc::Engine& engine,
                               const std::vector<mrc::Word>& values,
                               std::string_view label);

/// Component-wise sum-allreduce of one small vector per machine (e.g. the
/// per-degree-class counts of Algorithm 6). Same round structure as
/// allreduce_sum_direct. values[machine] must all have equal length.
std::vector<mrc::Word> allreduce_sum_vec(
    mrc::Engine& engine, const std::vector<std::vector<mrc::Word>>& values,
    std::string_view label);

/// Outcome fields shared by all the paper's algorithms.
struct MrOutcome {
  bool failed = false;           ///< a paper "fail" line fired
  std::uint64_t iterations = 0;  ///< outer-loop iterations
  std::uint64_t rounds = 0;      ///< engine rounds consumed
  std::uint64_t max_machine_words = 0;
  std::uint64_t max_central_inbox = 0;
  std::uint64_t total_communication = 0;
  std::uint64_t space_violations = 0;

  void fill_from(const mrc::Metrics& m) {
    rounds = m.rounds();
    max_machine_words = m.max_machine_words();
    max_central_inbox = m.max_central_inbox();
    total_communication = m.total_communication();
    space_violations = m.violations();
  }

  friend bool operator==(const MrOutcome&, const MrOutcome&) = default;
};

}  // namespace mrlr::core
