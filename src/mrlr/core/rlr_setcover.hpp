#pragma once
// Randomized local ratio for minimum weight set cover — Algorithm 1,
// Theorem 2.3, and the MapReduce schedule of Theorem 2.4.
//
// Outline (per outer iteration r):
//   1. all machines count their active elements -> |U_r| (allreduce);
//   2. each active element joins the sample U' independently with
//      probability p = min(1, 2*eta / |U_r|), eta = n^{1+mu}; sampled
//      elements ship their dual sets T_j to the central machine
//      (fail if |U'| > 6*eta);
//   3. the central machine runs the sequential local ratio method on the
//      sample, extending its persistent residual-weight state; sets whose
//      residual reaches zero join the cover C;
//   4. the newly covered set ids are broadcast down a fanout-n^mu tree;
//      every machine deactivates its elements intersecting C.
// The loop ends when no active element remains; Theorem 2.3 shows
// ceil(c/mu) iterations suffice w.h.p., and the cover is f-approximate
// because Algorithm 1 is an instantiation of the sequential method with
// a randomized processing order.
//
// The f = 2 case (weighted vertex cover) replaces the tree broadcast by
// two direct forwarding rounds (central -> set owner -> element owners),
// which is what drops the round bound from O((c/mu)^2) to O(c/mu).

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"
#include "mrlr/setcover/set_system.hpp"

namespace mrlr::core {

struct RlrSetCoverResult {
  std::vector<setcover::SetId> cover;
  double weight = 0.0;
  double lower_bound = 0.0;  ///< local ratio certificate: OPT >= this
  MrOutcome outcome;
};

/// General-f algorithm (Theorem 2.4, O((c/mu)^2) rounds).
RlrSetCoverResult rlr_set_cover(const setcover::SetSystem& sys,
                                const MrParams& params);

struct RlrVertexCoverResult {
  std::vector<graph::VertexId> cover;
  double weight = 0.0;
  double lower_bound = 0.0;
  MrOutcome outcome;
};

/// f = 2 specialization for weighted vertex cover (Theorem 2.4,
/// O(c/mu) rounds via direct bit forwarding).
RlrVertexCoverResult rlr_vertex_cover(const graph::Graph& g,
                                      const std::vector<double>& weights,
                                      const MrParams& params);

}  // namespace mrlr::core
