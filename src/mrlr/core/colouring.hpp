#pragma once
// (1 + o(1)) * Delta vertex and edge colouring in O(1) MapReduce rounds —
// Algorithm 5 and Theorems 6.4 / 6.6.
//
// Vertex variant: randomly partition V into kappa = n^{(c-mu)/2} groups.
// Each induced subgraph has max degree (1 + o(1)) * Delta / kappa w.h.p.
// (Lemma 6.1) and at most 13 * n^{1+mu} edges w.h.p. (Lemma 6.2, by
// Hajnal-Szemeredi), so machine i colours group i greedily with
// Delta_i + 1 colours; vertex v's final colour is (i, c_i(v)), realized
// here as offset_i + c_i(v) with disjoint per-group palettes. Total
// colours <= sum_i (Delta_i + 1) = (1 + o(1)) * Delta.
//
// Edge variant (Remark 6.5): partition the *edges* into kappa groups and
// colour each group with Misra-Gries (Delta_i + 1 colours); disjoint
// palettes keep edges sharing a vertex across groups conflict-free.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::core {

struct ColouringResult {
  std::vector<std::uint32_t> colour;  ///< per vertex (or per edge)
  std::uint64_t colours_used = 0;
  std::uint64_t groups = 0;           ///< kappa
  bool failed = false;                ///< a group exceeded 13*n^{1+mu} edges
  MrOutcome outcome;
};

/// Theorem 6.4. Requires mu < c for a nontrivial partition; with
/// params.c < 0 the density exponent is derived from the graph.
ColouringResult mr_vertex_colouring(const graph::Graph& g,
                                    const MrParams& params);

/// Theorem 6.6 via Remark 6.5.
ColouringResult mr_edge_colouring(const graph::Graph& g,
                                  const MrParams& params);

}  // namespace mrlr::core
