#pragma once
// Randomized local ratio for maximum weight matching — Algorithm 4,
// Theorems 5.5/5.6, and the mu = 0 regime of Appendix C.
//
// Outline (per outer iteration i):
//   1. allreduce the number of alive edges |E_i| (modified weight > 0,
//      not stacked);
//   2. every vertex v builds a sample E'_v of its alive incident edges:
//      all of them when |E_i| < 4*eta, otherwise i.i.d. with probability
//      p = min(eta/|E_i|, 1); samples ship (edge id, weight) pairs to the
//      central machine; fail if sum_v |E'_v| > 8*eta;
//   3. the central machine, which maintains phi(v) = total reduction at v
//      (Theorem 5.6's stateful representation), scans vertices in order:
//      the heaviest still-alive sampled edge at v gets a weight reduction
//      and is pushed on the stack;
//   4. central sends phi to vertex owners, vertex owners forward phi to
//      the owners of incident edges; edges recompute aliveness.
// When no alive edge remains, the stack is unwound greedily into a
// matching. 2-approximate for any sampling outcome (Theorem 5.1); the
// sampling makes the degree drop by n^{mu/4} per iteration w.h.p.
// (Lemma 5.4), giving O(c/mu) iterations, or O(log n) when eta = n
// (mu = 0, Lemma C.1's 0.975 expected decay).
//
// This driver is process-clean (ported to the process-sharded backend,
// MrParams::num_shards): non-central machines communicate exclusively
// through engine messages — the central scan decodes the sample from
// its inbox, and the driver's fail check reads the engine's merged
// accounting (Engine::inbox_words) rather than host-side counters.
// Central state (the phi table and stack) lives on machine 0, which the
// process backend always runs in the coordinator.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::core {

struct RlrMatchingResult {
  std::vector<graph::EdgeId> matching;
  double weight = 0.0;
  std::uint64_t stack_size = 0;  ///< edges stacked before unwinding
  MrOutcome outcome;
};

/// params.mu == 0 selects the Appendix C regime (eta = n, O(n) space,
/// O(log n) rounds).
RlrMatchingResult rlr_matching(const graph::Graph& g, const MrParams& params);

}  // namespace mrlr::core
