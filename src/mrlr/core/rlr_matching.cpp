#include "mrlr/core/rlr_matching.hpp"

#include <algorithm>

#include "mrlr/seq/local_ratio_matching.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

RlrMatchingResult rlr_matching(const graph::Graph& g,
                               const MrParams& params) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const std::uint64_t eta =
      std::max<std::uint64_t>(1, ipow_real(std::max<std::uint64_t>(n, 2),
                                           1.0 + params.mu));

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(1, ceil_div(std::max<std::uint64_t>(m, 1), eta));
  // Central words in one iteration: at most 8*eta sampled edges (the
  // Algorithm 4 fail threshold, scaled by sample_boost) at 2 words each,
  // or 4*|E_i| < 16*eta words in the ship-all endgame, plus the decoded
  // per-vertex sample table (one word per sampled edge and one list head
  // per vertex) the central scan rebuilds from its inbox, plus the phi
  // table (n words). slack/16 scales that requirement (the default
  // slack of 16 grants it exactly; smaller slack under-provisions, which
  // the failure-injection tests use to prove the audit is live).
  topo.words_per_machine =
      static_cast<std::uint64_t>(
          (params.slack / 16.0) *
          (24.0 * std::max(1.0, params.sample_boost) *
               static_cast<double>(eta) +
           2.0 * static_cast<double>(n))) +
      64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  // Central state: phi values + stack (Theorem 5.6). The central
  // machine is always coordinator-resident, so this stays a plain host
  // object under every backend.
  seq::MatchingLocalRatio lr(g);
  const std::uint64_t central_footprint = n + 2;

  // Edge e lives on owner_of(e); vertex v (and its adjacency list) on
  // owner_of(v). Footprints per machine (job-immutable).
  std::vector<std::uint64_t> footprint(machines, 0);

  // Worker-resident per-machine state (the process-clean contract):
  // every slot below is mutated only by its owner machine's callbacks,
  // so a persistent worker keeps its shard's slots current across
  // rounds without ever reading coordinator memory.
  //
  // An edge is alive iff its modified weight w(e) - phi(u) - phi(v) is
  // positive: process() raises both endpoint phis by the (positive)
  // modified weight, so a stacked edge's modified weight is negative
  // forever after — aliveness is a pure function of phi. Edge owners
  // keep the two phi halves separately (so the float subtraction order
  // matches MatchingLocalRatio::modified_weight exactly) and notify
  // the endpoint owners when an edge dies; aliveness is monotone, so
  // death notices are the only view updates ever needed.
  std::vector<std::uint64_t> alive_cnt(machines, 0);  // owned alive edges
  std::vector<double> phi_u_acc(m, 0.0);  // edge-owner slots
  std::vector<double> phi_v_acc(m, 0.0);
  std::vector<char> owner_alive(m, 0);    // edge-owner slots
  std::vector<char> alive_at_u(m, 0);     // owner_of(u) slots
  std::vector<char> alive_at_v(m, 0);     // owner_of(v) slots
  for (EdgeId e = 0; e < m; ++e) {
    const MachineId o = owner_of(e, machines);
    footprint[o] += 4;  // id + endpoints + weight
    ++alive_cnt[o];     // first-iteration count is all edges (historic)
    const char alive0 = g.weight(e) > 0.0 ? 1 : 0;  // == lr.edge_alive now
    owner_alive[e] = alive0;
    alive_at_u[e] = alive0;
    alive_at_v[e] = alive0;
  }
  for (VertexId v = 0; v < n; ++v) {
    footprint[owner_of(v, machines)] += 1 + g.degree(v);
  }

  RlrMatchingResult res;
  Rng root_rng(params.seed);

  // --- Registered rounds: defined before the first invoke so worker
  // processes inherit the full registry at spawn. ---

  // Owned-alive count to central; also consumes the death notices the
  // previous iteration's recompute round addressed to vertex owners.
  const mrc::RoundId r_count = engine.define_round(
      "count|Ei|", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()] + 1);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (const Word w : msg.payload) {
            const auto e = static_cast<EdgeId>(w);
            const graph::Edge& ed = g.edge(e);
            if (owner_of(ed.u, machines) == ctx.id()) alive_at_u[e] = 0;
            if (owner_of(ed.v, machines) == ctx.id()) alive_at_v[e] = 0;
          }
        }
        ctx.send(mrc::kCentral, {alive_cnt[ctx.id()]});
      });

  // Per-vertex sampling; ship (edge, weight) pairs to central. Every
  // owned vertex sends exactly one message (possibly empty) in
  // ascending vertex order, so the central machine can attribute
  // message i of sender s to vertex s + i*M without the vertex id on
  // the wire — empty frames carry zero payload words, so the engine's
  // word accounting is unchanged by the placeholders. All sample state
  // flows through the engine (no host-side side channels).
  const mrc::RoundId r_sample = engine.define_round(
      "sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t iter = ps[0];
        const bool ship_all = ps[1] != 0;
        const double p = unpack_double(ps[2]);
        ctx.charge_resident(footprint[ctx.id()]);
        Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
        for (VertexId v = static_cast<VertexId>(ctx.id()); v < n;
             v = static_cast<VertexId>(v + machines)) {
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          for (const graph::Incidence& inc : g.neighbours(v)) {
            const graph::Edge& ed = g.edge(inc.edge);
            const bool alive =
                ed.u == v ? alive_at_u[inc.edge] : alive_at_v[inc.edge];
            if (!alive) continue;
            if (ship_all || rng.bernoulli(p)) {
              msg.push(inc.edge);
              msg.push(pack_double(g.weight(inc.edge)));
            }
          }
        }
      });

  // Vertex owners forward phi to incident edge owners, tagged with the
  // vertex so the edge owner knows which endpoint's half it is.
  const mrc::RoundId r_forward_phi = engine.define_round(
      "forward-phi", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
            const auto v = static_cast<VertexId>(msg.payload[k]);
            const Word phi_w = msg.payload[k + 1];
            for (const graph::Incidence& inc : g.neighbours(v)) {
              ctx.send(owner_of(inc.edge, machines), {inc.edge, v, phi_w});
            }
          }
        }
      });

  // Edge owners refresh their phi halves, recompute aliveness, update
  // their owned-alive count, and send death notices to the endpoint
  // owners (delivered into the next iteration's count round).
  const mrc::RoundId r_recompute = engine.define_round(
      "recompute-alive", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 2 < msg.payload.size(); k += 3) {
            const auto e = static_cast<EdgeId>(msg.payload[k]);
            const auto v = static_cast<VertexId>(msg.payload[k + 1]);
            const double phi = unpack_double(msg.payload[k + 2]);
            if (g.edge(e).u == v) {
              phi_u_acc[e] = phi;
            } else {
              phi_v_acc[e] = phi;
            }
          }
        }
        std::uint64_t count = 0;
        for (EdgeId e = static_cast<EdgeId>(ctx.id()); e < m;
             e = static_cast<EdgeId>(e + machines)) {
          const double mw = g.weight(e) - phi_u_acc[e] - phi_v_acc[e];
          const bool alive = mw > 0.0;
          if (alive) ++count;
          if (owner_alive[e] && !alive) {
            const graph::Edge& ed = g.edge(e);
            ctx.send(owner_of(ed.u, machines), {e});
            ctx.send(owner_of(ed.v, machines), {e});
          }
          owner_alive[e] = alive ? 1 : 0;
        }
        alive_cnt[ctx.id()] = count;
      });

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    // --- 1. |E_i|: owned counts to central, summed centrally. ---
    engine.invoke_round(r_count, {iter});
    std::uint64_t ei = 0;
    engine.run_central_round("sum|Ei|", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word w : msg.payload) ei += w;
      }
    });
    if (ei == 0) break;
    ++res.outcome.iterations;

    const bool ship_all = ei < 4 * eta;
    const double p =
        ship_all ? 1.0
                 : std::min(1.0, params.sample_boost *
                                     static_cast<double>(eta) /
                                     static_cast<double>(ei));

    // --- 2. Per-vertex sampling. ---
    engine.invoke_round(
        r_sample,
        {iter, static_cast<Word>(ship_all ? 1 : 0), pack_double(p)});
    // Merged coordinator-side accounting: every sampled edge is exactly
    // one (id, weight) pair in the central inbox, identically under
    // every backend.
    const std::uint64_t total_sampled =
        engine.inbox_words(mrc::kCentral) / 2;

    if (!ship_all &&
        total_sampled > static_cast<std::uint64_t>(
                            8.0 * params.sample_boost *
                            static_cast<double>(eta))) {
      res.outcome.failed = true;
      break;
    }

    // --- 3. Central scan: heaviest alive sampled edge per vertex. ---
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      // Resident: phi table + stack, the inbox, and the decoded sample
      // table (a list head per vertex plus one word per sampled edge).
      ctx.charge_resident(central_footprint + ctx.inbox_words() +
                          ctx.inbox_words() / 2 + n);
      // Decode the inbox back into per-vertex sample lists. Messages
      // arrive sender-major, and each sender's messages are its owned
      // vertices ascending, so (sender, index-within-sender) names the
      // vertex; per-vertex draw order is preserved, keeping the scan
      // below byte-identical to the pre-wire-format implementation.
      std::vector<std::vector<EdgeId>> sampled(n);
      mrc::MachineId prev_from = 0;
      std::uint64_t index = 0;
      bool started = false;
      for (const mrc::MessageView msg : ctx.messages()) {
        if (!started || msg.from != prev_from) {
          prev_from = msg.from;
          index = 0;
          started = true;
        }
        const std::uint64_t v64 = prev_from + index * machines;
        ++index;
        MRLR_DEBUG_REQUIRE(v64 < n, "sample message beyond vertex range");
        auto& list = sampled[static_cast<VertexId>(v64)];
        for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
          list.push_back(static_cast<EdgeId>(msg.payload[k]));
        }
      }
      for (VertexId v = 0; v < n; ++v) {
        EdgeId best = 0;
        double best_w = 0.0;
        bool found = false;
        for (const EdgeId e : sampled[v]) {
          const double mw = lr.modified_weight(e);
          if (lr.edge_alive(e) && mw > best_w) {
            best = e;
            best_w = mw;
            found = true;
          }
        }
        if (found) (void)lr.process(best);
      }
    });

    // --- 4a. Central sends phi(v) to each vertex owner. ---
    engine.run_central_round("send-phi", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint);
      for (VertexId v = 0; v < n; ++v) {
        ctx.send(owner_of(v, machines), {v, pack_double(lr.phi(v))});
      }
    });
    // --- 4b. Vertex owners forward phi to incident edge owners. ---
    engine.invoke_round(r_forward_phi);
    // --- 4c. Edge owners recompute aliveness and counts. ---
    engine.invoke_round(r_recompute);
  }

  res.stack_size = lr.stack_size();
  seq::MatchingResult unwound = lr.unwind();
  res.matching = std::move(unwound.edges);
  res.weight = unwound.weight;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
