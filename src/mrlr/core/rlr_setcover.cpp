#include "mrlr/core/rlr_setcover.hpp"

#include <algorithm>

#include "mrlr/graph/validate.hpp"
#include "mrlr/seq/local_ratio_setcover.hpp"
#include "mrlr/setcover/validate.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;
using setcover::ElementId;
using setcover::SetId;

namespace {

/// Derives eta = n^{1+mu} and the machine count M = ceil(m / eta):
/// elements are spread n^{1+mu} per machine as in Theorem 2.4.
struct Sizes {
  std::uint64_t eta = 0;
  std::uint64_t machines = 0;
};

Sizes derive_sizes(std::uint64_t n, std::uint64_t m, double mu) {
  Sizes s;
  s.eta = ipow_real(n, 1.0 + mu, /*min_value=*/1);
  s.machines = std::max<std::uint64_t>(1, ceil_div(std::max<std::uint64_t>(m, 1), s.eta));
  return s;
}

}  // namespace

RlrSetCoverResult rlr_set_cover(const setcover::SetSystem& sys,
                                const MrParams& params) {
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  const std::uint64_t n = sys.num_sets();
  const std::uint64_t m = sys.universe_size();
  const std::uint64_t f = std::max<std::uint64_t>(1, sys.max_frequency());
  const Sizes sz = derive_sizes(n, m, params.mu);

  mrc::Topology topo;
  topo.num_machines = sz.machines;
  // Theorem 2.4: space O(f * n^{1+mu}); slack covers the 6*eta sample.
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(f) *
                               static_cast<double>(sz.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);

  // Distributed state. The simulator shares memory; the distribution is
  // captured by ownership (owner_of) and by per-round resident charges.
  std::vector<char> active(m, 1);
  std::vector<std::uint64_t> active_count(sz.machines, 0);
  std::vector<std::uint64_t> footprint(sz.machines, 0);  // words owned
  for (ElementId j = 0; j < m; ++j) {
    const MachineId o = owner_of(j, sz.machines);
    ++active_count[o];
    footprint[o] += 2 + sys.sets_containing(j).size();  // id + bit + T_j
  }

  // Central machine's persistent local ratio state (residual weights).
  seq::SetCoverLocalRatio lr(sys);
  const std::uint64_t central_footprint = n + 2;  // residuals + counters

  RlrSetCoverResult res;
  Rng root_rng(params.seed);

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    // --- 1. |U_r| (three accounting rounds: gather, scatter, drain). ---
    std::vector<Word> counts(active_count.begin(), active_count.end());
    const std::uint64_t ur = allreduce_sum_direct(engine, counts, "count|Ur|");
    if (ur == 0) break;
    ++res.outcome.iterations;

    const double p = std::min(
        1.0, params.sample_boost * 2.0 * static_cast<double>(sz.eta) /
                 static_cast<double>(ur));

    // --- 2. Sampling round: machines ship sampled T_j to central. ---
    // Each machine stages its draws in its own slot; concatenating in
    // machine-id order after the barrier reproduces the sequential scan
    // order, so the central pass below is backend-independent.
    std::vector<std::vector<ElementId>> sampled_by(sz.machines);
    engine.run_round("sample", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
      for (ElementId j = static_cast<ElementId>(ctx.id()); j < m;
           j = static_cast<ElementId>(j + sz.machines)) {
        if (!active[j] || !rng.bernoulli(p)) continue;
        sampled_by[ctx.id()].push_back(j);
        const auto owners = sys.sets_containing(j);
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        msg.push(j);
        msg.push(owners.size());
        for (const SetId i : owners) msg.push(i);
      }
    });
    std::vector<ElementId> sampled;
    for (const auto& part : sampled_by) {
      sampled.insert(sampled.end(), part.begin(), part.end());
    }

    const std::uint64_t sample_cap = static_cast<std::uint64_t>(
        6.0 * params.sample_boost * static_cast<double>(sz.eta));
    if (sampled.size() > sample_cap) {
      res.outcome.failed = true;
      break;
    }

    // --- 3. Central local ratio on the sample. ---
    std::vector<SetId> newly_zeroed;
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint + ctx.inbox_words());
      for (const ElementId j : sampled) {
        for (const SetId i : lr.process(j)) newly_zeroed.push_back(i);
      }
    });

    // --- 4. Tree-broadcast the newly covered sets; deactivate. ---
    std::vector<Word> payload;
    payload.reserve(newly_zeroed.size());
    for (const SetId i : newly_zeroed) payload.push_back(i);
    mrc::broadcast_from_central(engine, payload, "bcast C");

    for (ElementId j = 0; j < m; ++j) {
      if (!active[j]) continue;
      const auto owners = sys.sets_containing(j);
      const bool covered = std::any_of(
          owners.begin(), owners.end(),
          [&](SetId i) { return lr.residual_weight(i) <= 0.0; });
      if (covered) {
        active[j] = 0;
        --active_count[owner_of(j, sz.machines)];
      }
    }
  }

  res.cover = lr.cover();
  res.weight = setcover::cover_weight(sys, res.cover);
  res.lower_bound = lr.lower_bound();
  res.outcome.fill_from(engine.metrics());
  return res;
}

RlrVertexCoverResult rlr_vertex_cover(const graph::Graph& g,
                                      const std::vector<double>& weights,
                                      const MrParams& params) {
  // Elements are edges, sets are vertices; f = 2. The loop mirrors
  // rlr_set_cover but replaces the tree broadcast by two forwarding
  // rounds: central -> vertex owner (one bit per newly covered vertex),
  // vertex owner -> edge owners (one word per incident edge).
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  MRLR_REQUIRE(weights.size() == n, "one weight per vertex required");
  const Sizes sz = derive_sizes(n, m, params.mu);

  mrc::Topology topo;
  topo.num_machines = sz.machines;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * 2.0 *
                               static_cast<double>(sz.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);

  const setcover::SetSystem sys =
      setcover::SetSystem::vertex_cover_instance(g, weights);

  std::vector<char> active(m, 1);
  std::vector<std::uint64_t> active_count(sz.machines, 0);
  std::vector<std::uint64_t> footprint(sz.machines, 0);
  for (ElementId j = 0; j < m; ++j) {
    const MachineId o = owner_of(j, sz.machines);
    ++active_count[o];
    footprint[o] += 4;  // edge id + endpoints + bit
  }
  // Vertices (sets) are also distributed: owner stores the adjacency list.
  for (graph::VertexId v = 0; v < n; ++v) {
    footprint[owner_of(v, sz.machines)] += 1 + g.degree(v);
  }

  seq::SetCoverLocalRatio lr(sys);
  const std::uint64_t central_footprint = n + 2;

  RlrVertexCoverResult res;
  Rng root_rng(params.seed);

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    std::vector<Word> counts(active_count.begin(), active_count.end());
    const std::uint64_t ur = allreduce_sum_direct(engine, counts, "count|Ur|");
    if (ur == 0) break;
    ++res.outcome.iterations;

    const double p = std::min(
        1.0, params.sample_boost * 2.0 * static_cast<double>(sz.eta) /
                 static_cast<double>(ur));

    std::vector<std::vector<ElementId>> sampled_by(sz.machines);
    engine.run_round("sample", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
      for (ElementId j = static_cast<ElementId>(ctx.id()); j < m;
           j = static_cast<ElementId>(j + sz.machines)) {
        if (!active[j] || !rng.bernoulli(p)) continue;
        sampled_by[ctx.id()].push_back(j);
        const graph::Edge& e = g.edge(j);
        ctx.send(mrc::kCentral, {j, e.u, e.v});
      }
    });
    std::vector<ElementId> sampled;
    for (const auto& part : sampled_by) {
      sampled.insert(sampled.end(), part.begin(), part.end());
    }

    const std::uint64_t sample_cap = static_cast<std::uint64_t>(
        6.0 * params.sample_boost * static_cast<double>(sz.eta));
    if (sampled.size() > sample_cap) {
      res.outcome.failed = true;
      break;
    }

    std::vector<SetId> newly_zeroed;
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint + ctx.inbox_words());
      for (const ElementId j : sampled) {
        for (const SetId i : lr.process(j)) newly_zeroed.push_back(i);
      }
    });

    // Forward round A: central tells each newly covered vertex's owner.
    engine.run_central_round("notify-vertices", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint);
      for (const SetId v : newly_zeroed) {
        ctx.send(owner_of(v, sz.machines), {v});
      }
    });
    // Forward round B: vertex owners tell the owners of incident edges.
    engine.run_round("notify-edges", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word vw : msg.payload) {
          const auto v = static_cast<graph::VertexId>(vw);
          for (const graph::Incidence& inc : g.neighbours(v)) {
            ctx.send(owner_of(inc.edge, sz.machines), {inc.edge});
          }
        }
      }
    });
    // Drain + deactivate.
    engine.run_round("deactivate", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word ew : msg.payload) {
          const auto e = static_cast<ElementId>(ew);
          if (active[e]) {
            active[e] = 0;
            --active_count[owner_of(e, sz.machines)];
          }
        }
      }
    });
  }

  for (const SetId i : lr.cover()) {
    res.cover.push_back(static_cast<graph::VertexId>(i));
  }
  res.weight = graph::vertex_set_weight(weights, res.cover);
  res.lower_bound = lr.lower_bound();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
