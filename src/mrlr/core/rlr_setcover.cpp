#include "mrlr/core/rlr_setcover.hpp"

#include <algorithm>
#include <span>

#include "mrlr/graph/validate.hpp"
#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/seq/local_ratio_setcover.hpp"
#include "mrlr/setcover/validate.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;
using setcover::ElementId;
using setcover::SetId;

namespace {

/// Derives eta = n^{1+mu} and the machine count M = ceil(m / eta):
/// elements are spread n^{1+mu} per machine as in Theorem 2.4.
struct Sizes {
  std::uint64_t eta = 0;
  std::uint64_t machines = 0;
};

Sizes derive_sizes(std::uint64_t n, std::uint64_t m, double mu) {
  Sizes s;
  s.eta = ipow_real(n, 1.0 + mu, /*min_value=*/1);
  s.machines = std::max<std::uint64_t>(1, ceil_div(std::max<std::uint64_t>(m, 1), s.eta));
  return s;
}

}  // namespace

RlrSetCoverResult rlr_set_cover(const setcover::SetSystem& sys,
                                const MrParams& params) {
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  const std::uint64_t n = sys.num_sets();
  const std::uint64_t m = sys.universe_size();
  const std::uint64_t f = std::max<std::uint64_t>(1, sys.max_frequency());
  const Sizes sz = derive_sizes(n, m, params.mu);

  mrc::Topology topo;
  topo.num_machines = sz.machines;
  // Theorem 2.4: space O(f * n^{1+mu}); slack covers the 6*eta sample.
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(f) *
                               static_cast<double>(sz.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  // Worker-resident distributed state: machine o owns element j iff
  // o == owner_of(j, M), and only o's callbacks touch active[j] or the
  // o-indexed slots. covered_by[o] mirrors the centrally-zeroed sets on
  // machine o; it is refreshed by the broadcast's apply hook.
  std::vector<char> active(m, 1);
  std::vector<std::uint64_t> active_count(sz.machines, 0);
  std::vector<std::uint64_t> footprint(sz.machines, 0);  // words owned
  for (ElementId j = 0; j < m; ++j) {
    const MachineId o = owner_of(j, sz.machines);
    ++active_count[o];
    footprint[o] += 2 + sys.sets_containing(j).size();  // id + bit + T_j
  }
  std::vector<std::vector<char>> covered_by(sz.machines,
                                            std::vector<char>(n, 0));

  // Central machine's persistent local ratio state (residual weights).
  // Central is coordinator-resident, so this host object is fine.
  seq::SetCoverLocalRatio lr(sys);
  const std::uint64_t central_footprint = n + 2;  // residuals + counters

  RlrSetCoverResult res;
  const Rng root_rng(params.seed);  // immutable; streams only

  const mrc::RoundId r_count = engine.define_round(
      "count|Ur|", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(1);
        ctx.send(mrc::kCentral, {active_count[ctx.id()]});
      });
  const mrc::RoundId r_sample = engine.define_round(
      "sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t iter = ps[0];
        const double p = unpack_double(ps[1]);
        ctx.charge_resident(footprint[ctx.id()]);
        Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
        for (ElementId j = static_cast<ElementId>(ctx.id()); j < m;
             j = static_cast<ElementId>(j + sz.machines)) {
          if (!active[j] || !rng.bernoulli(p)) continue;
          const auto owners = sys.sets_containing(j);
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(j);
          msg.push(owners.size());
          for (const SetId i : owners) msg.push(i);
        }
      });
  // Tree-broadcast of the newly covered sets; the apply hook marks them
  // in the machine's mirror and deactivates its covered elements. An
  // element still active here has no previously-zeroed owner (it would
  // have been deactivated the iteration that set was zeroed), so the
  // mirror check is equivalent to the old residual_weight scan.
  mrc::JobBroadcast bcast(
      engine, "bcast C",
      [&](MachineContext& ctx, std::span<const Word> zeroed) {
        const MachineId id = ctx.id();
        std::vector<char>& covered = covered_by[id];
        for (const Word i : zeroed) covered[static_cast<SetId>(i)] = 1;
        for (ElementId j = static_cast<ElementId>(id); j < m;
             j = static_cast<ElementId>(j + sz.machines)) {
          if (!active[j]) continue;
          const auto owners = sys.sets_containing(j);
          const bool hit = std::any_of(owners.begin(), owners.end(),
                                       [&](SetId i) { return covered[i]; });
          if (hit) {
            active[j] = 0;
            --active_count[id];
          }
        }
      });

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    // --- 1. |U_r|: owners report their live counts; central sums. ---
    engine.invoke_round(r_count);
    std::uint64_t ur = 0;
    engine.run_central_round("sum|Ur|", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word w : msg.payload) ur += w;
      }
    });
    if (ur == 0) break;
    ++res.outcome.iterations;

    const double p = std::min(
        1.0, params.sample_boost * 2.0 * static_cast<double>(sz.eta) /
                 static_cast<double>(ur));

    // --- 2. Sampling round: machines ship sampled T_j to central. ---
    // One message per sampled element; sender-id-order merge reproduces
    // the sequential scan order on every backend.
    engine.invoke_round(r_sample, {iter, pack_double(p)});

    // Control-plane peek: one message per sampled element, so the fail
    // check runs before the oversized inbox is ever charged.
    const std::uint64_t sampled = engine.inbox_size(mrc::kCentral);
    const std::uint64_t sample_cap = static_cast<std::uint64_t>(
        6.0 * params.sample_boost * static_cast<double>(sz.eta));
    if (sampled > sample_cap) {
      res.outcome.failed = true;
      break;
    }

    // --- 3. Central local ratio on the sample. ---
    std::vector<SetId> newly_zeroed;
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint + ctx.inbox_words());
      for (const mrc::MessageView msg : ctx.messages()) {
        const auto j = static_cast<ElementId>(msg.payload[0]);
        for (const SetId i : lr.process(j)) newly_zeroed.push_back(i);
      }
    });

    // --- 4. Tree-broadcast the newly covered sets; deactivate. ---
    std::vector<Word> payload;
    payload.reserve(newly_zeroed.size());
    for (const SetId i : newly_zeroed) payload.push_back(i);
    bcast.run(std::move(payload));
  }

  res.cover = lr.cover();
  res.weight = setcover::cover_weight(sys, res.cover);
  res.lower_bound = lr.lower_bound();
  res.outcome.fill_from(engine.metrics());
  return res;
}

RlrVertexCoverResult rlr_vertex_cover(const graph::Graph& g,
                                      const std::vector<double>& weights,
                                      const MrParams& params) {
  // Elements are edges, sets are vertices; f = 2. The loop mirrors
  // rlr_set_cover but replaces the tree broadcast by two forwarding
  // rounds: central -> vertex owner (one bit per newly covered vertex),
  // vertex owner -> edge owners (one word per incident edge).
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  MRLR_REQUIRE(weights.size() == n, "one weight per vertex required");
  const Sizes sz = derive_sizes(n, m, params.mu);

  mrc::Topology topo;
  topo.num_machines = sz.machines;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * 2.0 *
                               static_cast<double>(sz.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  const setcover::SetSystem sys =
      setcover::SetSystem::vertex_cover_instance(g, weights);

  std::vector<char> active(m, 1);
  std::vector<std::uint64_t> active_count(sz.machines, 0);
  std::vector<std::uint64_t> footprint(sz.machines, 0);
  for (ElementId j = 0; j < m; ++j) {
    const MachineId o = owner_of(j, sz.machines);
    ++active_count[o];
    footprint[o] += 4;  // edge id + endpoints + bit
  }
  // Vertices (sets) are also distributed: owner stores the adjacency list.
  for (graph::VertexId v = 0; v < n; ++v) {
    footprint[owner_of(v, sz.machines)] += 1 + g.degree(v);
  }

  seq::SetCoverLocalRatio lr(sys);
  const std::uint64_t central_footprint = n + 2;

  RlrVertexCoverResult res;
  const Rng root_rng(params.seed);  // immutable; streams only

  const mrc::RoundId r_count = engine.define_round(
      "count|Ur|", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(1);
        ctx.send(mrc::kCentral, {active_count[ctx.id()]});
      });
  const mrc::RoundId r_sample = engine.define_round(
      "sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t iter = ps[0];
        const double p = unpack_double(ps[1]);
        ctx.charge_resident(footprint[ctx.id()]);
        Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
        for (ElementId j = static_cast<ElementId>(ctx.id()); j < m;
             j = static_cast<ElementId>(j + sz.machines)) {
          if (!active[j] || !rng.bernoulli(p)) continue;
          const graph::Edge& e = g.edge(j);
          ctx.send(mrc::kCentral, {j, e.u, e.v});
        }
      });
  // Forward round B: vertex owners tell the owners of incident edges.
  const mrc::RoundId r_notify_edges = engine.define_round(
      "notify-edges", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (const Word vw : msg.payload) {
            const auto v = static_cast<graph::VertexId>(vw);
            for (const graph::Incidence& inc : g.neighbours(v)) {
              ctx.send(owner_of(inc.edge, sz.machines), {inc.edge});
            }
          }
        }
      });
  // Drain + deactivate.
  const mrc::RoundId r_deactivate = engine.define_round(
      "deactivate", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (const Word ew : msg.payload) {
            const auto e = static_cast<ElementId>(ew);
            if (active[e]) {
              active[e] = 0;
              --active_count[ctx.id()];
            }
          }
        }
      });

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    engine.invoke_round(r_count);
    std::uint64_t ur = 0;
    engine.run_central_round("sum|Ur|", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word w : msg.payload) ur += w;
      }
    });
    if (ur == 0) break;
    ++res.outcome.iterations;

    const double p = std::min(
        1.0, params.sample_boost * 2.0 * static_cast<double>(sz.eta) /
                 static_cast<double>(ur));

    engine.invoke_round(r_sample, {iter, pack_double(p)});

    // One 3-word message per sampled edge; peek before charging.
    const std::uint64_t sampled = engine.inbox_size(mrc::kCentral);
    const std::uint64_t sample_cap = static_cast<std::uint64_t>(
        6.0 * params.sample_boost * static_cast<double>(sz.eta));
    if (sampled > sample_cap) {
      res.outcome.failed = true;
      break;
    }

    std::vector<SetId> newly_zeroed;
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint + ctx.inbox_words());
      for (const mrc::MessageView msg : ctx.messages()) {
        const auto j = static_cast<ElementId>(msg.payload[0]);
        for (const SetId i : lr.process(j)) newly_zeroed.push_back(i);
      }
    });

    // Forward round A: central tells each newly covered vertex's owner.
    engine.run_central_round("notify-vertices", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint);
      for (const SetId v : newly_zeroed) {
        ctx.send(owner_of(v, sz.machines), {v});
      }
    });
    engine.invoke_round(r_notify_edges);
    engine.invoke_round(r_deactivate);
  }

  for (const SetId i : lr.cover()) {
    res.cover.push_back(static_cast<graph::VertexId>(i));
  }
  res.weight = graph::vertex_set_weight(weights, res.cover);
  res.lower_bound = lr.lower_bound();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
