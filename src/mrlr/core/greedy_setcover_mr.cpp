#include "mrlr/core/greedy_setcover_mr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;
using setcover::ElementId;
using setcover::SetId;

namespace {

/// Indices of successes among `trials` Bernoulli(p) draws, via geometric
/// skipping: O(successes) expected time.
std::vector<std::uint64_t> binomial_hits(std::uint64_t trials, double p,
                                         Rng& rng) {
  std::vector<std::uint64_t> hits;
  if (trials == 0 || p <= 0.0) return hits;
  if (p >= 1.0) {
    hits.resize(trials);
    for (std::uint64_t i = 0; i < trials; ++i) hits[i] = i;
    return hits;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;
  while (true) {
    const double u = std::max(rng.uniform01(), 0x1.0p-53);
    const double skip_f = std::log(u) / log1mp;
    if (skip_f >= static_cast<double>(trials - idx)) break;
    const auto skip = static_cast<std::uint64_t>(skip_f) + 1;
    if (skip > trials - idx) break;
    idx += skip;
    hits.push_back(idx - 1);
    if (idx >= trials) break;
  }
  return hits;
}

}  // namespace

GreedySetCoverMrResult greedy_set_cover_mr(const setcover::SetSystem& sys,
                                           double eps,
                                           const MrParams& params) {
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  const std::uint64_t n = sys.num_sets();
  const std::uint64_t m = std::max<std::uint64_t>(sys.universe_size(), 2);
  const double alpha = params.mu / 8.0;
  MRLR_REQUIRE(alpha > 0.0, "mu must be positive");
  const auto num_classes =
      static_cast<std::uint64_t>(std::ceil(1.0 / alpha));
  const std::uint64_t m_mu2 =
      std::max<std::uint64_t>(1, ipow_real(m, params.mu / 2.0, 1));

  // Theorem 4.6 regime: machines store sets, O(m^{1+mu} log n) words each.
  const std::uint64_t cap_base = ipow_real(m, 1.0 + params.mu, 1);
  const double logn = std::log2(static_cast<double>(std::max<std::uint64_t>(n, 2))) + 1.0;
  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(sys.total_incidences() + n, cap_base));
  topo.words_per_machine =
      static_cast<std::uint64_t>(params.slack * logn *
                                 static_cast<double>(cap_base)) +
      64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(m, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (SetId l = 0; l < n; ++l) {
    footprint[owner_of(l, machines)] += 3 + sys.set(l).size();
  }

  // Host (central) algorithm state.
  std::vector<char> covered(sys.universe_size(), 0);
  std::uint64_t covered_count = 0;
  std::vector<std::uint64_t> residual(n);  // |S_l \ C|
  for (SetId l = 0; l < n; ++l) residual[l] = sys.set(l).size();
  std::vector<char> taken(n, 0);
  std::vector<char> excluded(n, 0);

  GreedySetCoverMrResult res;

  auto take_set = [&](SetId l) -> std::vector<ElementId> {
    std::vector<ElementId> newly;
    taken[l] = 1;
    res.cover.push_back(l);
    res.weight += sys.weight(l);
    for (const ElementId j : sys.set(l)) {
      if (!covered[j]) {
        covered[j] = 1;
        ++covered_count;
        newly.push_back(j);
        for (const SetId l2 : sys.sets_containing(j)) {
          if (residual[l2] > 0) --residual[l2];
        }
      }
    }
    return newly;
  };

  // ---- Remark 4.7 preprocessing. gamma = max_j min_{S: j in S} w(S). --
  // Runs before the job starts; the worker mirrors below snapshot the
  // post-preprocessing state when the first round ships.
  double gamma = 0.0;
  for (ElementId j = 0; j < sys.universe_size(); ++j) {
    double mn = std::numeric_limits<double>::infinity();
    for (const SetId l : sys.sets_containing(j)) {
      mn = std::min(mn, sys.weight(l));
    }
    gamma = std::max(gamma, mn);
  }
  const double cheap = gamma * eps / static_cast<double>(std::max<std::uint64_t>(n, 1));
  const double expensive = static_cast<double>(m) * gamma;
  for (SetId l = 0; l < n; ++l) {
    if (sys.weight(l) <= cheap && residual[l] > 0) {
      (void)take_set(l);
      ++res.preprocessed_sets;
    } else if (sys.weight(l) > expensive) {
      excluded[l] = 1;
    }
  }

  auto ratio = [&](SetId l) -> double {
    return static_cast<double>(residual[l]) / sys.weight(l);
  };

  double level = 0.0;
  for (SetId l = 0; l < n; ++l) {
    if (!taken[l] && !excluded[l]) level = std::max(level, ratio(l));
  }

  // Class of a residual size: smallest i >= 1 with r >= m^{1-i*alpha}.
  auto class_of = [&](std::uint64_t r) -> std::uint64_t {
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      if (r >= ipow_real(m, 1.0 - static_cast<double>(i) * alpha, 1)) {
        return i;
      }
    }
    return num_classes;
  };

  // Dense group layout: class i gets 2*m^{(i+1)*alpha} groups.
  std::vector<std::uint64_t> groups_of_class(num_classes + 1, 0);
  std::vector<std::uint64_t> base_of_class(num_classes + 1, 0);
  std::uint64_t total_groups = 0;
  for (std::uint64_t i = 1; i <= num_classes; ++i) {
    base_of_class[i] = total_groups;
    groups_of_class[i] =
        2 * ipow_real(m, static_cast<double>(i + 1) * alpha, 1);
    total_groups += groups_of_class[i];
  }

  const double qualify_factor = 1.0 / (1.0 + eps);
  const Rng root(params.seed);

  // Worker mirrors, snapshotted post-preprocessing: per-machine covered
  // mirrors and the owner-strided residual counts. A taken set has
  // residual 0, so the mirrors need no separate taken array; `excluded`
  // is immutable once preprocessing ends.
  std::vector<std::vector<char>> covered_by(machines, covered);
  std::vector<std::uint64_t> residual_dist = residual;

  // Newly covered elements go down the fanout tree; owners update their
  // residual counts via the dual incidence lists.
  mrc::JobBroadcast bcast(
      engine, "bcast dC",
      [&](MachineContext& ctx, std::span<const Word> elements) {
        const MachineId id = ctx.id();
        std::vector<char>& cov = covered_by[id];
        for (const Word jw : elements) {
          const auto j = static_cast<ElementId>(jw);
          if (cov[j]) continue;
          cov[j] = 1;
          for (const SetId l2 : sys.sets_containing(j)) {
            if (owner_of(l2, machines) != id) continue;
            if (residual_dist[l2] > 0) --residual_dist[l2];
          }
        }
      });

  // Round accounting for the preprocessing broadcast (tree, both ways).
  const mrc::RoundId r_preprocess = engine.define_round(
      "preprocess-gamma", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(1);
        ctx.send(mrc::kCentral, {1});
      });

  // Owners count their qualifying sets per class.
  const mrc::RoundId r_count = engine.define_round(
      "count-classes", [&](MachineContext& ctx, std::span<const Word> ps) {
        const double threshold = unpack_double(ps[0]);
        const MachineId id = ctx.id();
        std::vector<Word> counts(num_classes + 1, 0);
        for (SetId l = static_cast<SetId>(id); l < n;
             l = static_cast<SetId>(l + machines)) {
          if (excluded[l] || residual_dist[l] == 0) continue;
          const double r = static_cast<double>(residual_dist[l]) /
                           sys.weight(l);
          if (r >= threshold && threshold > 0.0) {
            ++counts[class_of(residual_dist[l])];
          }
        }
        ctx.charge_resident(counts.size());
        ctx.send_batch(mrc::kCentral, counts);
      });

  // Group membership draws for one iteration: set l in class i joins
  // each of the class's groups independently with probability
  // min(1, boost * m^{mu/2} / |class i|). The draws come from a per-set
  // stream, so the keys round and the ship round reproduce the same
  // sample independently.
  const auto sample_groups = [&](std::uint64_t iter, SetId l,
                                 std::uint64_t i, Word size_i) {
    const double p =
        std::min(1.0, params.sample_boost * static_cast<double>(m_mu2) /
                          static_cast<double>(size_i));
    Rng set_rng = root.stream((iter << 32) ^ l);
    return binomial_hits(groups_of_class[i], p, set_rng);
  };

  // Owners ship their sampled (group, set) keys to central so the fail
  // check (any group over 4*m^{mu/2}?) happens before the heavy lists
  // move. params: {threshold, iter, sizes...}.
  const mrc::RoundId r_keys = engine.define_round(
      "check|X|", [&](MachineContext& ctx, std::span<const Word> ps) {
        const double threshold = unpack_double(ps[0]);
        const std::uint64_t iter = ps[1];
        const std::span<const Word> sizes = ps.subspan(2);
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        for (SetId l = static_cast<SetId>(id); l < n;
             l = static_cast<SetId>(l + machines)) {
          if (excluded[l] || residual_dist[l] == 0) continue;
          const double r = static_cast<double>(residual_dist[l]) /
                           sys.weight(l);
          if (r < threshold || threshold <= 0.0) continue;
          const std::uint64_t i = class_of(residual_dist[l]);
          if (sizes[i] == 0) continue;
          for (const std::uint64_t j : sample_groups(iter, l, i, sizes[i])) {
            msg.push(base_of_class[i] + j);
            msg.push(l);
          }
        }
        if (msg.empty()) msg.cancel();
      });

  // Ship the sampled sets' residual element lists to central (only
  // reached when the fail check passed; same draws as r_keys).
  const mrc::RoundId r_ship = engine.define_round(
      "ship-sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const double threshold = unpack_double(ps[0]);
        const std::uint64_t iter = ps[1];
        const std::span<const Word> sizes = ps.subspan(2);
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        const std::vector<char>& cov = covered_by[id];
        for (SetId l = static_cast<SetId>(id); l < n;
             l = static_cast<SetId>(l + machines)) {
          if (excluded[l] || residual_dist[l] == 0) continue;
          const double r = static_cast<double>(residual_dist[l]) /
                           sys.weight(l);
          if (r < threshold || threshold <= 0.0) continue;
          const std::uint64_t i = class_of(residual_dist[l]);
          if (sizes[i] == 0) continue;
          for (const std::uint64_t j : sample_groups(iter, l, i, sizes[i])) {
            mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
            msg.push(base_of_class[i] + j);
            msg.push(l);
            msg.push(pack_double(sys.weight(l)));
            msg.push(residual_dist[l]);
            for (const ElementId jj : sys.set(l)) {
              if (!cov[jj]) msg.push(jj);
            }
          }
        }
      });

  engine.invoke_round(r_preprocess);
  engine.run_central_round("sum-preprocess", [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words() + 1);
  });

  std::uint64_t iter_guard = 0;

  while (covered_count < sys.universe_size() &&
         iter_guard < params.max_iterations) {
    // ---- Inner while: exhaust the current level. ----
    while (iter_guard < params.max_iterations) {
      ++iter_guard;
      ++res.outcome.iterations;
      const double threshold = level * qualify_factor;

      // Count qualifying sets per class (converge-cast of one vector
      // per machine).
      engine.invoke_round(r_count, {pack_double(threshold)});
      std::vector<Word> sizes(num_classes + 1, 0);
      engine.run_central_round("sum-classes", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + sizes.size());
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t i = 0;
               i < msg.payload.size() && i < sizes.size(); ++i) {
            sizes[i] += msg.payload[i];
          }
        }
      });
      std::uint64_t total_qualifying = 0;
      for (const Word s : sizes) total_qualifying += s;
      if (total_qualifying == 0) break;

      std::vector<Word> sample_params;
      sample_params.reserve(2 + sizes.size());
      sample_params.push_back(pack_double(threshold));
      sample_params.push_back(iter_guard);
      sample_params.insert(sample_params.end(), sizes.begin(), sizes.end());

      // Fail check: collect the (group, set) keys and reject the
      // iteration if any group exceeds 4*m^{mu/2}.
      engine.invoke_round(r_keys, sample_params);
      std::vector<std::pair<std::uint64_t, SetId>> sample;
      bool failed = false;
      const std::uint64_t group_cap = static_cast<std::uint64_t>(
          4.0 * params.sample_boost * static_cast<double>(m_mu2));
      engine.run_central_round("group-load", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + total_groups);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
            sample.emplace_back(msg.payload[k],
                                static_cast<SetId>(msg.payload[k + 1]));
          }
        }
        std::vector<std::uint64_t> group_load(total_groups, 0);
        for (const auto& [key, l] : sample) ++group_load[key];
        failed = std::any_of(
            group_load.begin(), group_load.end(),
            [&](std::uint64_t gl) { return gl > group_cap; });
      });
      if (failed) {
        ++res.sampling_failures;
        continue;  // k <- k+1; next inner iteration (Algorithm 3 line 16)
      }

      // Ship sampled sets (residual element lists) to central.
      std::sort(sample.begin(), sample.end());
      engine.invoke_round(r_ship, sample_params);

      // Central: scan groups in (class, group) order; admit per group one
      // set with residual >= m^{1-(i+1)*alpha}/2 and ratio >= threshold.
      std::vector<ElementId> newly_covered;
      engine.run_central_round("admit", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + 4);
        std::uint64_t current_group = ~std::uint64_t{0};
        bool group_done = false;
        for (const auto& [group_key, set] : sample) {
          if (group_key != current_group) {
            current_group = group_key;
            group_done = false;
          }
          if (group_done || taken[set]) continue;
          // Recover the class from the dense group key.
          std::uint64_t i = 1;
          while (i < num_classes &&
                 group_key >= base_of_class[i] + groups_of_class[i]) {
            ++i;
          }
          const std::uint64_t size_floor = std::max<std::uint64_t>(
              1, ipow_real(m, 1.0 - static_cast<double>(i + 1) * alpha, 1) /
                     2);
          if (residual[set] >= size_floor && ratio(set) >= threshold) {
            const auto newly = take_set(set);
            newly_covered.insert(newly_covered.end(), newly.begin(),
                                 newly.end());
            group_done = true;
          }
        }
      });

      // Broadcast the newly covered elements down the tree; owners
      // update their residual counts in the apply hook.
      bcast.run(std::vector<Word>(newly_covered.begin(),
                                  newly_covered.end()));
      if (covered_count >= sys.universe_size()) break;
    }

    if (covered_count >= sys.universe_size()) break;
    level /= (1.0 + eps);
    ++res.level_drops;
    // Safety: if the level underflows, fall back to taking any set
    // covering an uncovered element (cannot happen on well-formed
    // instances before max_iterations, but keeps the loop total).
    if (level <= std::numeric_limits<double>::min()) {
      for (ElementId j = 0; j < sys.universe_size(); ++j) {
        if (covered[j]) continue;
        const auto owners = sys.sets_containing(j);
        SetId best = owners[0];
        for (const SetId l : owners) {
          if (sys.weight(l) < sys.weight(best)) best = l;
        }
        (void)take_set(best);
      }
      break;
    }
  }

  res.outcome.failed = covered_count < sys.universe_size();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
