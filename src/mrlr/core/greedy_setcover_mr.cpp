#include "mrlr/core/greedy_setcover_mr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;
using setcover::ElementId;
using setcover::SetId;

namespace {

/// Indices of successes among `trials` Bernoulli(p) draws, via geometric
/// skipping: O(successes) expected time.
std::vector<std::uint64_t> binomial_hits(std::uint64_t trials, double p,
                                         Rng& rng) {
  std::vector<std::uint64_t> hits;
  if (trials == 0 || p <= 0.0) return hits;
  if (p >= 1.0) {
    hits.resize(trials);
    for (std::uint64_t i = 0; i < trials; ++i) hits[i] = i;
    return hits;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;
  while (true) {
    const double u = std::max(rng.uniform01(), 0x1.0p-53);
    const double skip_f = std::log(u) / log1mp;
    if (skip_f >= static_cast<double>(trials - idx)) break;
    const auto skip = static_cast<std::uint64_t>(skip_f) + 1;
    if (skip > trials - idx) break;
    idx += skip;
    hits.push_back(idx - 1);
    if (idx >= trials) break;
  }
  return hits;
}

}  // namespace

GreedySetCoverMrResult greedy_set_cover_mr(const setcover::SetSystem& sys,
                                           double eps,
                                           const MrParams& params) {
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  const std::uint64_t n = sys.num_sets();
  const std::uint64_t m = std::max<std::uint64_t>(sys.universe_size(), 2);
  const double alpha = params.mu / 8.0;
  MRLR_REQUIRE(alpha > 0.0, "mu must be positive");
  const auto num_classes =
      static_cast<std::uint64_t>(std::ceil(1.0 / alpha));
  const std::uint64_t m_mu2 =
      std::max<std::uint64_t>(1, ipow_real(m, params.mu / 2.0, 1));

  // Theorem 4.6 regime: machines store sets, O(m^{1+mu} log n) words each.
  const std::uint64_t cap_base = ipow_real(m, 1.0 + params.mu, 1);
  const double logn = std::log2(static_cast<double>(std::max<std::uint64_t>(n, 2))) + 1.0;
  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(sys.total_incidences() + n, cap_base));
  topo.words_per_machine =
      static_cast<std::uint64_t>(params.slack * logn *
                                 static_cast<double>(cap_base)) +
      64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(m, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (SetId l = 0; l < n; ++l) {
    footprint[owner_of(l, machines)] += 3 + sys.set(l).size();
  }

  // Shared algorithm state.
  std::vector<char> covered(sys.universe_size(), 0);
  std::uint64_t covered_count = 0;
  std::vector<std::uint64_t> residual(n);  // |S_l \ C|
  for (SetId l = 0; l < n; ++l) residual[l] = sys.set(l).size();
  std::vector<char> taken(n, 0);
  std::vector<char> excluded(n, 0);

  GreedySetCoverMrResult res;

  auto take_set = [&](SetId l) -> std::vector<ElementId> {
    std::vector<ElementId> newly;
    taken[l] = 1;
    res.cover.push_back(l);
    res.weight += sys.weight(l);
    for (const ElementId j : sys.set(l)) {
      if (!covered[j]) {
        covered[j] = 1;
        ++covered_count;
        newly.push_back(j);
        for (const SetId l2 : sys.sets_containing(j)) {
          if (residual[l2] > 0) --residual[l2];
        }
      }
    }
    return newly;
  };

  // ---- Remark 4.7 preprocessing. gamma = max_j min_{S: j in S} w(S). --
  double gamma = 0.0;
  for (ElementId j = 0; j < sys.universe_size(); ++j) {
    double mn = std::numeric_limits<double>::infinity();
    for (const SetId l : sys.sets_containing(j)) {
      mn = std::min(mn, sys.weight(l));
    }
    gamma = std::max(gamma, mn);
  }
  // Round accounting for the preprocessing broadcast (tree, both ways).
  {
    std::vector<Word> dummy(machines, 1);
    (void)allreduce_sum_direct(engine, dummy, "preprocess-gamma");
  }
  const double cheap = gamma * eps / static_cast<double>(std::max<std::uint64_t>(n, 1));
  const double expensive = static_cast<double>(m) * gamma;
  for (SetId l = 0; l < n; ++l) {
    if (sys.weight(l) <= cheap && residual[l] > 0) {
      (void)take_set(l);
      ++res.preprocessed_sets;
    } else if (sys.weight(l) > expensive) {
      excluded[l] = 1;
    }
  }

  auto ratio = [&](SetId l) -> double {
    return static_cast<double>(residual[l]) / sys.weight(l);
  };

  double level = 0.0;
  for (SetId l = 0; l < n; ++l) {
    if (!taken[l] && !excluded[l]) level = std::max(level, ratio(l));
  }

  // Class of a residual size: smallest i >= 1 with r >= m^{1-i*alpha}.
  auto class_of = [&](std::uint64_t r) -> std::uint64_t {
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      if (r >= ipow_real(m, 1.0 - static_cast<double>(i) * alpha, 1)) {
        return i;
      }
    }
    return num_classes;
  };

  const double qualify_factor = 1.0 / (1.0 + eps);
  std::uint64_t iter_guard = 0;
  Rng root_rng(params.seed);

  while (covered_count < sys.universe_size() &&
         iter_guard < params.max_iterations) {
    // ---- Inner while: exhaust the current level. ----
    while (iter_guard < params.max_iterations) {
      ++iter_guard;
      ++res.outcome.iterations;
      const double threshold = level * qualify_factor;

      // Count qualifying sets per class (one vector allreduce).
      std::vector<std::vector<Word>> class_counts(
          machines, std::vector<Word>(num_classes + 1, 0));
      std::uint64_t total_qualifying = 0;
      for (SetId l = 0; l < n; ++l) {
        if (taken[l] || excluded[l] || residual[l] == 0) continue;
        if (ratio(l) >= threshold && threshold > 0.0) {
          ++class_counts[owner_of(l, machines)][class_of(residual[l])];
          ++total_qualifying;
        }
      }
      const std::vector<Word> sizes =
          allreduce_sum_vec(engine, class_counts, "count-classes");
      if (total_qualifying == 0) break;

      // Sampling: set l in class i joins each of 2*m^{(i+1)*alpha} groups
      // independently with probability min(1, m^{mu/2} / |class i|).
      struct Sampled {
        std::uint64_t group_key;  // (class << 40) | group
        SetId set;
      };
      std::vector<Sampled> sample;
      std::vector<std::uint64_t> group_load;  // indexed by dense group idx
      std::vector<std::uint64_t> groups_of_class(num_classes + 1, 0);
      std::vector<std::uint64_t> base_of_class(num_classes + 1, 0);
      std::uint64_t total_groups = 0;
      for (std::uint64_t i = 1; i <= num_classes; ++i) {
        base_of_class[i] = total_groups;
        groups_of_class[i] =
            2 * ipow_real(m, static_cast<double>(i + 1) * alpha, 1);
        total_groups += groups_of_class[i];
      }
      group_load.assign(total_groups, 0);
      Rng rng = root_rng.fork(iter_guard);
      for (SetId l = 0; l < n; ++l) {
        if (taken[l] || excluded[l] || residual[l] == 0) continue;
        if (ratio(l) < threshold) continue;
        const std::uint64_t i = class_of(residual[l]);
        if (sizes[i] == 0) continue;
        const double p =
            std::min(1.0, params.sample_boost *
                              static_cast<double>(m_mu2) /
                              static_cast<double>(sizes[i]));
        Rng set_rng = rng.fork(l);
        for (const std::uint64_t j :
             binomial_hits(groups_of_class[i], p, set_rng)) {
          const std::uint64_t dense = base_of_class[i] + j;
          sample.push_back({dense, l});
          ++group_load[dense];
        }
      }

      // Fail check: any group over 4*m^{mu/2}?
      const std::uint64_t group_cap = static_cast<std::uint64_t>(
          4.0 * params.sample_boost * static_cast<double>(m_mu2));
      const bool failed = std::any_of(
          group_load.begin(), group_load.end(),
          [&](std::uint64_t gl) { return gl > group_cap; });
      // The fail-check itself is a converge-cast; charge one allreduce.
      {
        std::vector<Word> dummy(machines, failed ? 1u : 0u);
        (void)allreduce_sum_direct(engine, dummy, "check|X|");
      }
      if (failed) {
        ++res.sampling_failures;
        continue;  // k <- k+1; next inner iteration (Algorithm 3 line 16)
      }

      // Ship sampled sets (residual element lists) to central.
      std::sort(sample.begin(), sample.end(),
                [](const Sampled& a, const Sampled& b) {
                  if (a.group_key != b.group_key) {
                    return a.group_key < b.group_key;
                  }
                  return a.set < b.set;
                });
      engine.run_round("ship-sample", [&](MachineContext& ctx) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const Sampled& s : sample) {
          if (owner_of(s.set, machines) != ctx.id()) continue;
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(s.group_key);
          msg.push(s.set);
          msg.push(pack_double(sys.weight(s.set)));
          msg.push(residual[s.set]);
          for (const ElementId j : sys.set(s.set)) {
            if (!covered[j]) msg.push(j);
          }
        }
      });

      // Central: scan groups in (class, group) order; admit per group one
      // set with residual >= m^{1-(i+1)*alpha}/2 and ratio >= threshold.
      std::vector<ElementId> newly_covered;
      engine.run_central_round("admit", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + 4);
        std::uint64_t current_group = ~std::uint64_t{0};
        bool group_done = false;
        for (const Sampled& s : sample) {
          if (s.group_key != current_group) {
            current_group = s.group_key;
            group_done = false;
          }
          if (group_done || taken[s.set]) continue;
          // Recover the class from the dense group key.
          std::uint64_t i = 1;
          while (i < num_classes &&
                 s.group_key >= base_of_class[i] + groups_of_class[i]) {
            ++i;
          }
          const std::uint64_t size_floor = std::max<std::uint64_t>(
              1, ipow_real(m, 1.0 - static_cast<double>(i + 1) * alpha, 1) /
                     2);
          if (residual[s.set] >= size_floor && ratio(s.set) >= threshold) {
            const auto newly = take_set(s.set);
            newly_covered.insert(newly_covered.end(), newly.begin(),
                                 newly.end());
            group_done = true;
          }
        }
      });

      // Broadcast the newly covered elements down the tree; owners update
      // residual counts via the dual incidence lists.
      std::vector<Word> payload;
      payload.reserve(newly_covered.size());
      for (const ElementId j : newly_covered) payload.push_back(j);
      mrc::broadcast_from_central(engine, payload, "bcast dC");
      if (covered_count >= sys.universe_size()) break;
    }

    if (covered_count >= sys.universe_size()) break;
    level /= (1.0 + eps);
    ++res.level_drops;
    // Safety: if the level underflows, fall back to taking any set
    // covering an uncovered element (cannot happen on well-formed
    // instances before max_iterations, but keeps the loop total).
    if (level <= std::numeric_limits<double>::min()) {
      for (ElementId j = 0; j < sys.universe_size(); ++j) {
        if (covered[j]) continue;
        const auto owners = sys.sets_containing(j);
        SetId best = owners[0];
        for (const SetId l : owners) {
          if (sys.weight(l) < sys.weight(best)) best = l;
        }
        (void)take_set(best);
      }
      break;
    }
  }

  res.outcome.failed = covered_count < sys.universe_size();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
