#include "mrlr/core/hungry_clique.hpp"

#include <algorithm>
#include <unordered_set>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// Clique state over the implicit complement: active set A, counts of
/// graph-neighbours inside A, and the derived complement degrees.
class CliqueState {
 public:
  explicit CliqueState(const graph::Graph& g)
      : g_(g), active_(g.num_vertices(), 1),
        nbrs_in_A_(g.num_vertices(), 0),
        active_count_(g.num_vertices()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      nbrs_in_A_[v] = g.degree(v);
    }
  }

  bool active(VertexId v) const { return active_[v] != 0; }
  std::uint64_t active_count() const { return active_count_; }

  /// Complement degree of an active vertex.
  std::uint64_t comp_degree(VertexId v) const {
    if (!active_[v] || active_count_ == 0) return 0;
    return (active_count_ - 1) - nbrs_in_A_[v];
  }

  /// Total complement edges within A.
  std::uint64_t comp_edges() const {
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (active_[v]) sum += comp_degree(v);
    }
    return sum / 2;
  }

  /// Admit v into the clique: A becomes (A cap N(v)) \ {v}.
  /// Returns the number of vertices deactivated.
  std::uint64_t add(VertexId v) {
    MRLR_REQUIRE(active(v), "cannot add an inactive vertex to the clique");
    clique_.push_back(v);
    std::unordered_set<VertexId> keep;
    keep.reserve(g_.degree(v) * 2 + 1);
    for (const Incidence& inc : g_.neighbours(v)) {
      if (active_[inc.neighbour]) keep.insert(inc.neighbour);
    }
    std::uint64_t removed = 0;
    for (VertexId u = 0; u < g_.num_vertices(); ++u) {
      if (!active_[u]) continue;
      if (u == v || !keep.contains(u)) {
        deactivate(u);
        ++removed;
      }
    }
    return removed;
  }

  const std::vector<VertexId>& clique() const { return clique_; }

 private:
  void deactivate(VertexId u) {
    active_[u] = 0;
    --active_count_;
    for (const Incidence& inc : g_.neighbours(u)) {
      if (active_[inc.neighbour] && nbrs_in_A_[inc.neighbour] > 0) {
        --nbrs_in_A_[inc.neighbour];
      }
    }
  }

  const graph::Graph& g_;
  std::vector<char> active_;
  std::vector<std::uint64_t> nbrs_in_A_;
  std::uint64_t active_count_;
  std::vector<VertexId> clique_;
};

}  // namespace

HungryCliqueResult hungry_clique(const graph::Graph& g,
                                 const MrParams& params) {
  MRLR_REQUIRE(params.mu > 0.0, "hungry-greedy requires mu > 0");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double alpha = params.mu / 2.0;
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    footprint[owner_of(v, machines)] += 2 + g.degree(v);
  }

  CliqueState state(g);
  HungryCliqueResult res;
  Rng root_rng(params.seed);
  const std::uint64_t group_size =
      std::max<std::uint64_t>(1, ipow_real(n, params.mu / 2.0, 1));

  // Relabelling round pair, run after every admission batch: the central
  // machine distributes (sigma(v), k) and vertices exchange labels with
  // neighbours. The labels themselves are implicit in the shared-state
  // simulation; the rounds charge the communication the scheme costs.
  auto relabel_rounds = [&]() {
    engine.run_central_round("send-sigma", [&](MachineContext& ctx) {
      ctx.charge_resident(state.active_count() + 1);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ctx.send(owner_of(v, machines), {v, state.active(v) ? Word{1} : Word{0}});
      }
    });
    engine.run_round("exchange-sigma", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
          const auto v = static_cast<VertexId>(msg.payload[k]);
          for (const Incidence& inc : g.neighbours(v)) {
            ctx.send(owner_of(inc.neighbour, machines),
                     {inc.neighbour, msg.payload[k + 1]});
          }
        }
      }
    });
    engine.run_round("drain-sigma", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
    });
  };

  // Phase thresholds on the complement degree: n^{1-i*alpha} down to
  // n^mu, after which the residual complement fits centrally.
  for (std::uint64_t i = 1;; ++i) {
    const double exponent = 1.0 - static_cast<double>(i) * alpha;
    if (exponent < params.mu) break;
    const std::uint64_t threshold = ipow_real(n, exponent, 1);
    const std::uint64_t heavy_cap =
        ipow_real(n, static_cast<double>(i) * alpha, 1);

    while (res.outcome.iterations < params.max_iterations) {
      ++res.outcome.iterations;
      // Count heavy vertices (complement degree >= threshold).
      std::vector<Word> counts(machines, 0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (state.active(v) && state.comp_degree(v) >= threshold) {
          ++counts[owner_of(v, machines)];
        }
      }
      const std::uint64_t vh =
          allreduce_sum_direct(engine, counts, "count|VH|");
      if (vh == 0) break;

      const bool mop_up = vh < heavy_cap;
      const double p_sample =
          mop_up ? 1.0
                 : std::min(1.0, static_cast<double>(heavy_cap) *
                                     static_cast<double>(group_size) /
                                     static_cast<double>(vh));
      // Sample heavy vertices; ship each with its active-neighbour list
      // (the sigma-relabelled complement row is [k] minus that list).
      std::vector<std::pair<std::uint32_t, VertexId>> sample;
      Rng rng = root_rng.fork(res.outcome.iterations);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (!state.active(v) || state.comp_degree(v) < threshold) continue;
        if (!rng.bernoulli(p_sample)) continue;
        const std::uint32_t group =
            mop_up ? static_cast<std::uint32_t>(sample.size())
                   : static_cast<std::uint32_t>(rng.uniform(heavy_cap));
        sample.emplace_back(group, v);
      }
      std::sort(sample.begin(), sample.end());

      engine.run_round("ship-sample", [&](MachineContext& ctx) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const auto& [group, v] : sample) {
          if (owner_of(v, machines) != ctx.id()) continue;
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(group);
          msg.push(v);
          for (const Incidence& inc : g.neighbours(v)) {
            if (state.active(inc.neighbour)) {
              msg.push(inc.neighbour);
            }
          }
        }
      });

      engine.run_central_round("admit", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + 2);
        std::uint64_t current_group = ~std::uint64_t{0};
        bool group_done = false;
        for (const auto& [group, v] : sample) {
          if (group != current_group) {
            current_group = group;
            group_done = false;
          }
          if (group_done) continue;
          if (state.active(v) && state.comp_degree(v) >= threshold) {
            (void)state.add(v);
            ++res.central_adds;
            group_done = true;
          }
        }
      });
      relabel_rounds();

      if (mop_up) break;
    }
  }

  // Central finish: wait until the residual complement fits, admitting
  // more heavy vertices if necessary (complement degree > n^mu).
  while (state.comp_edges() >= eta &&
         res.outcome.iterations < params.max_iterations) {
    ++res.outcome.iterations;
    // Admit the vertex with the largest complement degree (shipped the
    // same way as a 1-group sample).
    VertexId best = 0;
    std::uint64_t best_d = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (state.active(v) && state.comp_degree(v) > best_d) {
        best = v;
        best_d = state.comp_degree(v);
      }
    }
    if (best_d == 0) break;
    engine.run_central_round("admit-heaviest", [&](MachineContext& ctx) {
      ctx.charge_resident(2 + g.degree(best));
      (void)state.add(best);
      ++res.central_adds;
    });
    relabel_rounds();
  }

  // Ship the relabelled complement of A (size 2 * comp_edges < 2*eta)
  // and finish greedily: a greedy MIS on the complement is a greedy
  // clique on G.
  engine.run_round("ship-residual", [&](MachineContext& ctx) {
    ctx.charge_resident(footprint[ctx.id()]);
    for (VertexId v = static_cast<VertexId>(ctx.id());
         v < g.num_vertices();
         v = static_cast<VertexId>(v + machines)) {
      if (!state.active(v)) continue;
      ctx.send(mrc::kCentral, {v, state.comp_degree(v)});
    }
  });
  engine.run_central_round("greedy-finish", [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words() + 2 * state.comp_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (state.active(v)) (void)state.add(v);
    }
  });

  res.clique = state.clique();
  std::sort(res.clique.begin(), res.clique.end());
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
