#include "mrlr/core/hungry_clique.hpp"

#include <algorithm>
#include <span>
#include <unordered_set>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// Clique state over the implicit complement: active set A, counts of
/// graph-neighbours inside A, and the derived complement degrees.
/// Lives on the central machine; the workers carry mirrors maintained
/// by the ordered deactivation broadcast below.
class CliqueState {
 public:
  explicit CliqueState(const graph::Graph& g)
      : g_(g), active_(g.num_vertices(), 1),
        nbrs_in_A_(g.num_vertices(), 0),
        active_count_(g.num_vertices()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      nbrs_in_A_[v] = g.degree(v);
    }
  }

  bool active(VertexId v) const { return active_[v] != 0; }
  std::uint64_t active_count() const { return active_count_; }

  /// Complement degree of an active vertex.
  std::uint64_t comp_degree(VertexId v) const {
    if (!active_[v] || active_count_ == 0) return 0;
    return (active_count_ - 1) - nbrs_in_A_[v];
  }

  /// Total complement edges within A.
  std::uint64_t comp_edges() const {
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (active_[v]) sum += comp_degree(v);
    }
    return sum / 2;
  }

  /// Admit v into the clique: A becomes (A cap N(v)) \ {v}.
  /// Returns the deactivated vertices in deactivation order — the
  /// mirrors replay deactivations in exactly this order, which matters
  /// because each deactivation only decrements still-active neighbours.
  std::vector<VertexId> add(VertexId v) {
    MRLR_REQUIRE(active(v), "cannot add an inactive vertex to the clique");
    clique_.push_back(v);
    std::unordered_set<VertexId> keep;
    keep.reserve(g_.degree(v) * 2 + 1);
    for (const Incidence& inc : g_.neighbours(v)) {
      if (active_[inc.neighbour]) keep.insert(inc.neighbour);
    }
    std::vector<VertexId> removed;
    for (VertexId u = 0; u < g_.num_vertices(); ++u) {
      if (!active_[u]) continue;
      if (u == v || !keep.contains(u)) {
        deactivate(u);
        removed.push_back(u);
      }
    }
    return removed;
  }

  const std::vector<VertexId>& clique() const { return clique_; }

 private:
  void deactivate(VertexId u) {
    active_[u] = 0;
    --active_count_;
    for (const Incidence& inc : g_.neighbours(u)) {
      if (active_[inc.neighbour] && nbrs_in_A_[inc.neighbour] > 0) {
        --nbrs_in_A_[inc.neighbour];
      }
    }
  }

  const graph::Graph& g_;
  std::vector<char> active_;
  std::vector<std::uint64_t> nbrs_in_A_;
  std::uint64_t active_count_;
  std::vector<VertexId> clique_;
};

}  // namespace

HungryCliqueResult hungry_clique(const graph::Graph& g,
                                 const MrParams& params) {
  MRLR_REQUIRE(params.mu > 0.0, "hungry-greedy requires mu > 0");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double alpha = params.mu / 2.0;
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    footprint[owner_of(v, machines)] += 2 + g.degree(v);
  }

  CliqueState state(g);
  HungryCliqueResult res;
  const Rng root(params.seed);
  const std::uint64_t group_size =
      std::max<std::uint64_t>(1, ipow_real(n, params.mu / 2.0, 1));

  // Worker mirrors of the central state: a full active mirror per
  // machine (needed for the shipped active-neighbour lists), the
  // owner-strided neighbours-in-A counters, and the active-count
  // scalar. All three refresh only through the deactivation broadcast.
  std::vector<std::vector<char>> active_by(
      machines, std::vector<char>(g.num_vertices(), 1));
  std::vector<std::uint64_t> nbrs_dist(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    nbrs_dist[v] = g.degree(v);
  }
  std::vector<std::uint64_t> active_cnt_by(machines, g.num_vertices());
  const auto comp_deg = [&](MachineId id, VertexId v) -> std::uint64_t {
    if (!active_by[id][v] || active_cnt_by[id] == 0) return 0;
    return (active_cnt_by[id] - 1) - nbrs_dist[v];
  };

  // Replays CliqueState::add on machine `id`'s mirror: deactivations
  // arrive in central deactivation order, and each one only decrements
  // the counters of vertices still active at that point.
  mrc::JobBroadcast bcast(
      engine, "bcast-deactivated",
      [&](MachineContext& ctx, std::span<const Word> removed) {
        const MachineId id = ctx.id();
        std::vector<char>& active = active_by[id];
        for (const Word uw : removed) {
          const auto u = static_cast<VertexId>(uw);
          active[u] = 0;
          --active_cnt_by[id];
          for (const Incidence& inc : g.neighbours(u)) {
            const VertexId x = inc.neighbour;
            if (owner_of(x, machines) != id) continue;
            if (active[x] && nbrs_dist[x] > 0) --nbrs_dist[x];
          }
        }
      });

  // Owners count their heavy vertices (complement degree >= threshold).
  const mrc::RoundId r_count = engine.define_round(
      "count|VH|", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t threshold = ps[0];
        Word cnt = 0;
        for (VertexId v = static_cast<VertexId>(ctx.id());
             v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (comp_deg(ctx.id(), v) >= threshold) ++cnt;
        }
        ctx.charge_resident(1);
        ctx.send(mrc::kCentral, {cnt});
      });

  // Owners self-select heavy vertices and ship each with its
  // active-neighbour list (the sigma-relabelled complement row is [k]
  // minus that list). Mop-up mode (params[0] != 0) ships every heavy
  // vertex with group 0 and no draws.
  const mrc::RoundId r_ship = engine.define_round(
      "ship-sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const bool mop_up = ps[0] != 0;
        const std::uint64_t salt = ps[1];
        const std::uint64_t threshold = ps[2];
        const std::uint64_t num_groups = ps[3];
        const double p_sample = unpack_double(ps[4]);
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        Rng rng = root.stream((salt << 20) ^ id);
        for (VertexId v = static_cast<VertexId>(id);
             v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (comp_deg(id, v) < threshold) continue;
          Word group = 0;
          if (!mop_up) {
            if (!rng.bernoulli(p_sample)) continue;
            group = rng.uniform(num_groups);
          }
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(group);
          msg.push(v);
          for (const Incidence& inc : g.neighbours(v)) {
            if (active_by[id][inc.neighbour]) msg.push(inc.neighbour);
          }
        }
      });

  // Label-exchange rounds run after every admission batch: vertices
  // forward (sigma(v), flag) pairs to their neighbours' owners. The
  // labels are implicit; the rounds charge the communication the
  // relabelling scheme costs.
  const mrc::RoundId r_exchange = engine.define_round(
      "exchange-sigma", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
            const auto v = static_cast<VertexId>(msg.payload[k]);
            for (const Incidence& inc : g.neighbours(v)) {
              ctx.send(owner_of(inc.neighbour, machines),
                       {inc.neighbour, msg.payload[k + 1]});
            }
          }
        }
      });
  const mrc::RoundId r_drain = engine.define_round(
      "drain-sigma", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
      });

  // Final step: ship the relabelled residual complement to central.
  const mrc::RoundId r_ship_residual = engine.define_round(
      "ship-residual", [&](MachineContext& ctx, std::span<const Word>) {
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        for (VertexId v = static_cast<VertexId>(id);
             v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (!active_by[id][v]) continue;
          ctx.send(mrc::kCentral, {v, comp_deg(id, v)});
        }
      });

  const auto central_sum = [&](std::string_view label) {
    std::uint64_t total = 0;
    engine.run_central_round(label, [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word w : msg.payload) total += w;
      }
    });
    return total;
  };

  const auto relabel_rounds = [&](const std::vector<VertexId>& removed) {
    bcast.run(std::vector<Word>(removed.begin(), removed.end()));
    engine.run_central_round("send-sigma", [&](MachineContext& ctx) {
      ctx.charge_resident(state.active_count() + 1);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ctx.send(owner_of(v, machines),
                 {v, state.active(v) ? Word{1} : Word{0}});
      }
    });
    engine.invoke_round(r_exchange);
    engine.invoke_round(r_drain);
  };

  // Phase thresholds on the complement degree: n^{1-i*alpha} down to
  // n^mu, after which the residual complement fits centrally.
  for (std::uint64_t i = 1;; ++i) {
    const double exponent = 1.0 - static_cast<double>(i) * alpha;
    if (exponent < params.mu) break;
    const std::uint64_t threshold = ipow_real(n, exponent, 1);
    const std::uint64_t heavy_cap =
        ipow_real(n, static_cast<double>(i) * alpha, 1);

    while (res.outcome.iterations < params.max_iterations) {
      ++res.outcome.iterations;
      engine.invoke_round(r_count, {threshold});
      const std::uint64_t vh = central_sum("sum|VH|");
      if (vh == 0) break;

      const bool mop_up = vh < heavy_cap;
      const double p_sample =
          mop_up ? 1.0
                 : std::min(1.0, static_cast<double>(heavy_cap) *
                                     static_cast<double>(group_size) /
                                     static_cast<double>(vh));
      engine.invoke_round(r_ship,
                          {mop_up ? Word{1} : Word{0}, res.outcome.iterations,
                           threshold, heavy_cap, pack_double(p_sample)});

      // Greedy per-group admission on the central machine; mop-up
      // admits every still-eligible sample.
      std::vector<VertexId> all_removed;
      engine.run_central_round("admit", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + 2);
        std::vector<std::pair<std::uint64_t, VertexId>> sample;
        for (const mrc::MessageView msg : ctx.messages()) {
          sample.emplace_back(msg.payload[0],
                              static_cast<VertexId>(msg.payload[1]));
        }
        std::sort(sample.begin(), sample.end());
        std::uint64_t current_group = ~std::uint64_t{0};
        bool group_done = false;
        for (const auto& [group, v] : sample) {
          if (group != current_group) {
            current_group = group;
            group_done = false;
          }
          if (!mop_up && group_done) continue;
          if (state.active(v) && state.comp_degree(v) >= threshold) {
            const auto removed = state.add(v);
            all_removed.insert(all_removed.end(), removed.begin(),
                               removed.end());
            ++res.central_adds;
            group_done = true;
          }
        }
      });
      relabel_rounds(all_removed);

      if (mop_up) break;
    }
  }

  // Central finish: wait until the residual complement fits, admitting
  // more heavy vertices if necessary (complement degree > n^mu).
  while (state.comp_edges() >= eta &&
         res.outcome.iterations < params.max_iterations) {
    ++res.outcome.iterations;
    // Admit the vertex with the largest complement degree (shipped the
    // same way as a 1-group sample).
    VertexId best = 0;
    std::uint64_t best_d = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (state.active(v) && state.comp_degree(v) > best_d) {
        best = v;
        best_d = state.comp_degree(v);
      }
    }
    if (best_d == 0) break;
    std::vector<VertexId> removed;
    engine.run_central_round("admit-heaviest", [&](MachineContext& ctx) {
      ctx.charge_resident(2 + g.degree(best));
      removed = state.add(best);
      ++res.central_adds;
    });
    relabel_rounds(removed);
  }

  // Ship the relabelled complement of A (size 2 * comp_edges < 2*eta)
  // and finish greedily: a greedy MIS on the complement is a greedy
  // clique on G.
  engine.invoke_round(r_ship_residual);
  engine.run_central_round("greedy-finish", [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words() + 2 * state.comp_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (state.active(v)) (void)state.add(v);
    }
  });

  res.clique = state.clique();
  std::sort(res.clique.begin(), res.clique.end());
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
