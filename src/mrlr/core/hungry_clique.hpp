#pragma once
// Hungry-greedy maximal clique — Appendix B, Corollary B.1.
//
// Maximal clique is maximal independent set on the complement graph, but
// the complement cannot be materialized in O(m) space. Appendix B's fix
// is a *relabelling scheme*: maintain the set A of active vertices (those
// adjacent to every current clique member) and a bijection
// sigma : A -> [k], k = |A|, refreshed after every change. A vertex that
// knows k and the sigma-labels of its active neighbours knows its
// complement adjacency [k] \ sigma(N(v) cap A) implicitly — each round
// touches only O(n^{1+mu}) words of the complement even though the whole
// complement may have Omega(n^2) edges.
//
// The hungry-greedy engine then runs on complement degrees
// dc(v) = (k - 1) - |N(v) cap A|: admitting a vertex with dc(v) >= t
// removes >= t active vertices (its non-neighbours), shrinking A
// geometrically; when the residual complement has < n^{1+mu} edges it is
// shipped (in relabelled form) to the central machine and finished
// greedily.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::core {

struct HungryCliqueResult {
  std::vector<graph::VertexId> clique;
  std::uint64_t central_adds = 0;  ///< vertices admitted by sampling sweeps
  MrOutcome outcome;
};

HungryCliqueResult hungry_clique(const graph::Graph& g,
                                 const MrParams& params);

}  // namespace mrlr::core
