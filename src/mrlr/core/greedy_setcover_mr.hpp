#pragma once
// Hungry-greedy (epsilon-greedy + bucketing) for weighted set cover —
// Algorithm 3, Theorems 4.5/4.6, with the Remark 4.7 preprocessing.
//
// The sequential greedy is (1+eps)H_Delta-approximate if every chosen set
// has cost ratio |S \ C| / w within (1+eps) of the best. Algorithm 3
// maintains a threshold L (initially the best ratio, divided by (1+eps)
// whenever no set qualifies) and, per inner iteration:
//   * partitions qualifying sets into 1/alpha size classes
//     (|S \ C| in [m^{1-i*alpha}, m^{1-(i-1)*alpha}), alpha = mu/8);
//   * samples each class-i set into each of 2*m^{(i+1)*alpha} groups
//     independently with probability m^{mu/2}/|class| (fail the iteration
//     if a group exceeds 4*m^{mu/2});
//   * ships sampled sets (with their residual element lists) to the
//     central machine, which scans groups in order and admits per group
//     one set that still has |S \ C| >= m^{1-(i+1)*alpha}/2 and ratio
//     >= L/(1+eps);
//   * broadcasts the newly covered elements down the fanout-m^mu tree.
// Lemma 4.3: the potential sum of qualifying residual sizes drops by
// m^{mu/8} per iteration w.h.p., giving the Theorem 4.6 round bound.
//
// Remark 4.7 preprocessing bounds the weight spread: with
// gamma = max_j min_{S : j in S} w(S), sets cheaper than gamma*eps/n are
// taken outright (cost <= eps * OPT) and sets costlier than m*gamma are
// discarded (OPT <= m*gamma).

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/setcover/set_system.hpp"

namespace mrlr::core {

struct GreedySetCoverMrResult {
  std::vector<setcover::SetId> cover;
  double weight = 0.0;
  std::uint64_t level_drops = 0;        ///< outer L -> L/(1+eps) steps
  std::uint64_t sampling_failures = 0;  ///< iterations voided by |X| > 4m^{mu/2}
  std::uint64_t preprocessed_sets = 0;  ///< sets taken by Remark 4.7
  MrOutcome outcome;
};

GreedySetCoverMrResult greedy_set_cover_mr(const setcover::SetSystem& sys,
                                           double eps,
                                           const MrParams& params);

}  // namespace mrlr::core
