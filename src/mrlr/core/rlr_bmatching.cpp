#include "mrlr/core/rlr_bmatching.hpp"

#include <algorithm>
#include <cmath>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// The epsilon-adjusted local ratio engine (Section D.2).
class BMatchingLocalRatio {
 public:
  BMatchingLocalRatio(const graph::Graph& g,
                      const std::vector<std::uint32_t>& b, double eps)
      : g_(g), b_(b), eps_(eps), phi_(g.num_vertices(), 0.0),
        stacked_(g.num_edges(), 0) {
    MRLR_REQUIRE(eps_ > 0.0, "epsilon must be positive");
    for (const std::uint32_t cap : b_) {
      MRLR_REQUIRE(cap >= 1, "capacities must be at least 1");
    }
  }

  double residual(EdgeId e) const {
    const graph::Edge& ed = g_.edge(e);
    return g_.weight(e) - phi_[ed.u] - phi_[ed.v];
  }

  /// Kill rule: w(e) <= (1+eps)(phi(u)+phi(v)).
  bool edge_alive(EdgeId e) const {
    if (stacked_[e]) return false;
    const graph::Edge& ed = g_.edge(e);
    return g_.weight(e) > (1.0 + eps_) * (phi_[ed.u] + phi_[ed.v]);
  }

  bool process(EdgeId e) {
    if (!edge_alive(e)) return false;
    const graph::Edge& ed = g_.edge(e);
    const double g = residual(e);
    if (g <= 0.0) return false;
    phi_[ed.u] += g / static_cast<double>(b_[ed.u]);
    phi_[ed.v] += g / static_cast<double>(b_[ed.v]);
    stacked_[e] = 1;
    stack_.push_back(e);
    return true;
  }

  double phi(VertexId v) const { return phi_[v]; }
  std::uint64_t stack_size() const { return stack_.size(); }

  /// Greedy capacity-respecting unwind (Theorem D.1's last step).
  RlrBMatchingResult unwind() const {
    RlrBMatchingResult res;
    res.stack_size = stack_.size();
    std::vector<std::uint32_t> load(g_.num_vertices(), 0);
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      const graph::Edge& ed = g_.edge(*it);
      if (load[ed.u] < b_[ed.u] && load[ed.v] < b_[ed.v]) {
        ++load[ed.u];
        ++load[ed.v];
        res.matching.push_back(*it);
        res.weight += g_.weight(*it);
      }
    }
    return res;
  }

 private:
  const graph::Graph& g_;
  const std::vector<std::uint32_t>& b_;
  double eps_;
  std::vector<double> phi_;
  std::vector<char> stacked_;
  std::vector<EdgeId> stack_;
};

}  // namespace

RlrBMatchingResult seq_b_matching_local_ratio(
    const graph::Graph& g, const std::vector<std::uint32_t>& b, double eps,
    const std::vector<EdgeId>& order) {
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  BMatchingLocalRatio lr(g, b, eps);
  for (const EdgeId e : order) (void)lr.process(e);
  // No positive-residual edge may survive; repeated passes are needed
  // because processing an edge can revive no one but b >= 2 leaves
  // neighbours alive until enough charges accumulate.
  bool any = true;
  while (any) {
    any = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (lr.process(e)) any = true;
    }
  }
  return lr.unwind();
}

RlrBMatchingResult rlr_b_matching(const graph::Graph& g,
                                  const std::vector<std::uint32_t>& b,
                                  double eps, const MrParams& params) {
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const double delta = eps / (1.0 + eps);
  const double ln_inv_delta = std::log(1.0 / delta);
  const std::uint64_t b_max =
      *std::max_element(b.begin(), b.end());

  const std::uint64_t eta =
      std::max<std::uint64_t>(1, ipow_real(std::max<std::uint64_t>(n, 2),
                                           1.0 + params.mu));
  const std::uint64_t n_mu =
      std::max<std::uint64_t>(1, ipow_real(std::max<std::uint64_t>(n, 2),
                                           params.mu));

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(1, ceil_div(std::max<std::uint64_t>(m, 1), eta));
  // Theorem D.3: O(b log(1/eps) n^{1+mu}) words per machine.
  topo.words_per_machine =
      static_cast<std::uint64_t>(params.slack * static_cast<double>(b_max) *
                                 (1.0 + ln_inv_delta) *
                                 static_cast<double>(eta)) +
      64;
  topo.fanout = std::max<std::uint64_t>(2, n_mu);
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  BMatchingLocalRatio lr(g, b, eps);
  const std::uint64_t central_footprint = n + 2;

  std::vector<std::uint64_t> footprint(machines, 0);
  std::vector<std::uint64_t> alive_count(machines, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const MachineId o = owner_of(e, machines);
    footprint[o] += 4;
    ++alive_count[o];
  }
  for (VertexId v = 0; v < n; ++v) {
    footprint[owner_of(v, machines)] += 1 + g.degree(v);
  }

  RlrBMatchingResult res;
  Rng root_rng(params.seed);
  // Threshold for shipping everything: |E_i| < 2*b*ln(1/delta)*eta.
  const auto ship_all_below = static_cast<std::uint64_t>(
      2.0 * static_cast<double>(b_max) * ln_inv_delta *
      static_cast<double>(eta));

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    std::vector<Word> counts(alive_count.begin(), alive_count.end());
    const std::uint64_t ei = allreduce_sum_direct(engine, counts, "count|Ei|");
    if (ei == 0) break;
    ++res.outcome.iterations;
    const bool ship_all = ei < ship_all_below;

    // --- Sampling: vertex v draws b(v)*ln(1/delta)*n^mu alive incident
    // edges (or all of them in the endgame). ---
    std::vector<std::vector<EdgeId>> sampled(n);
    engine.run_round("sample", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
      for (VertexId v = static_cast<VertexId>(ctx.id()); v < n;
           v = static_cast<VertexId>(v + machines)) {
        std::vector<EdgeId> alive;
        for (const graph::Incidence& inc : g.neighbours(v)) {
          if (lr.edge_alive(inc.edge)) alive.push_back(inc.edge);
        }
        if (alive.empty()) continue;
        if (ship_all) {
          sampled[v] = std::move(alive);
        } else {
          const auto want = static_cast<std::uint64_t>(
              std::ceil(params.sample_boost * static_cast<double>(b[v]) *
                        ln_inv_delta * static_cast<double>(n_mu)));
          if (want >= alive.size()) {
            sampled[v] = std::move(alive);
          } else {
            const auto pick =
                rng.sample_without_replacement(alive.size(), want);
            for (const auto k : pick) sampled[v].push_back(alive[k]);
          }
        }
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        for (const EdgeId e : sampled[v]) {
          msg.push(e);
          msg.push(pack_double(g.weight(e)));
        }
      }
    });

    // --- Central: per vertex, pop the heaviest alive sampled edges up to
    // b(v)*ln(1/delta) times (Algorithm 7 lines 11-17). ---
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint + ctx.inbox_words());
      for (VertexId v = 0; v < n; ++v) {
        if (sampled[v].empty()) continue;
        // Residual order is stable during v's loop (each reduction
        // subtracts the same phi deltas from all of v's edges), so one
        // sort by residual suffices.
        std::sort(sampled[v].begin(), sampled[v].end(),
                  [&](EdgeId a, EdgeId b2) {
                    return lr.residual(a) > lr.residual(b2);
                  });
        const auto quota = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(b[v]) * ln_inv_delta));
        std::uint64_t taken = 0;
        for (const EdgeId e : sampled[v]) {
          if (taken >= quota) break;
          if (lr.process(e)) ++taken;
        }
      }
    });

    // --- Propagate phi and recompute aliveness (as in Algorithm 4). ---
    engine.run_central_round("send-phi", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint);
      for (VertexId v = 0; v < n; ++v) {
        ctx.send(owner_of(v, machines), {v, pack_double(lr.phi(v))});
      }
    });
    engine.run_round("forward-phi", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
          const auto v = static_cast<VertexId>(msg.payload[k]);
          for (const graph::Incidence& inc : g.neighbours(v)) {
            ctx.send(owner_of(inc.edge, machines),
                     {inc.edge, msg.payload[k + 1]});
          }
        }
      }
    });
    engine.run_round("recompute-alive", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
    });
    for (MachineId o = 0; o < machines; ++o) alive_count[o] = 0;
    for (EdgeId e = 0; e < m; ++e) {
      if (lr.edge_alive(e)) ++alive_count[owner_of(e, machines)];
    }
  }

  RlrBMatchingResult unwound = lr.unwind();
  res.matching = std::move(unwound.matching);
  res.weight = unwound.weight;
  res.stack_size = unwound.stack_size;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
