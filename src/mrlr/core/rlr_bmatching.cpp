#include "mrlr/core/rlr_bmatching.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// The epsilon-adjusted local ratio engine (Section D.2).
class BMatchingLocalRatio {
 public:
  BMatchingLocalRatio(const graph::Graph& g,
                      const std::vector<std::uint32_t>& b, double eps)
      : g_(g), b_(b), eps_(eps), phi_(g.num_vertices(), 0.0),
        stacked_(g.num_edges(), 0) {
    MRLR_REQUIRE(eps_ > 0.0, "epsilon must be positive");
    for (const std::uint32_t cap : b_) {
      MRLR_REQUIRE(cap >= 1, "capacities must be at least 1");
    }
  }

  double residual(EdgeId e) const {
    const graph::Edge& ed = g_.edge(e);
    return g_.weight(e) - phi_[ed.u] - phi_[ed.v];
  }

  /// Kill rule: w(e) <= (1+eps)(phi(u)+phi(v)).
  bool edge_alive(EdgeId e) const {
    if (stacked_[e]) return false;
    const graph::Edge& ed = g_.edge(e);
    return g_.weight(e) > (1.0 + eps_) * (phi_[ed.u] + phi_[ed.v]);
  }

  bool process(EdgeId e) {
    if (!edge_alive(e)) return false;
    const graph::Edge& ed = g_.edge(e);
    const double g = residual(e);
    if (g <= 0.0) return false;
    phi_[ed.u] += g / static_cast<double>(b_[ed.u]);
    phi_[ed.v] += g / static_cast<double>(b_[ed.v]);
    stacked_[e] = 1;
    stack_.push_back(e);
    return true;
  }

  double phi(VertexId v) const { return phi_[v]; }
  std::uint64_t stack_size() const { return stack_.size(); }

  /// Greedy capacity-respecting unwind (Theorem D.1's last step).
  RlrBMatchingResult unwind() const {
    RlrBMatchingResult res;
    res.stack_size = stack_.size();
    std::vector<std::uint32_t> load(g_.num_vertices(), 0);
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      const graph::Edge& ed = g_.edge(*it);
      if (load[ed.u] < b_[ed.u] && load[ed.v] < b_[ed.v]) {
        ++load[ed.u];
        ++load[ed.v];
        res.matching.push_back(*it);
        res.weight += g_.weight(*it);
      }
    }
    return res;
  }

 private:
  const graph::Graph& g_;
  const std::vector<std::uint32_t>& b_;
  double eps_;
  std::vector<double> phi_;
  std::vector<char> stacked_;
  std::vector<EdgeId> stack_;
};

}  // namespace

RlrBMatchingResult seq_b_matching_local_ratio(
    const graph::Graph& g, const std::vector<std::uint32_t>& b, double eps,
    const std::vector<EdgeId>& order) {
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  BMatchingLocalRatio lr(g, b, eps);
  for (const EdgeId e : order) (void)lr.process(e);
  // No positive-residual edge may survive; repeated passes are needed
  // because processing an edge can revive no one but b >= 2 leaves
  // neighbours alive until enough charges accumulate.
  bool any = true;
  while (any) {
    any = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (lr.process(e)) any = true;
    }
  }
  return lr.unwind();
}

RlrBMatchingResult rlr_b_matching(const graph::Graph& g,
                                  const std::vector<std::uint32_t>& b,
                                  double eps, const MrParams& params) {
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const double delta = eps / (1.0 + eps);
  const double ln_inv_delta = std::log(1.0 / delta);
  const std::uint64_t b_max =
      *std::max_element(b.begin(), b.end());

  const std::uint64_t eta =
      std::max<std::uint64_t>(1, ipow_real(std::max<std::uint64_t>(n, 2),
                                           1.0 + params.mu));
  const std::uint64_t n_mu =
      std::max<std::uint64_t>(1, ipow_real(std::max<std::uint64_t>(n, 2),
                                           params.mu));

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(1, ceil_div(std::max<std::uint64_t>(m, 1), eta));
  // Theorem D.3: O(b log(1/eps) n^{1+mu}) words per machine.
  topo.words_per_machine =
      static_cast<std::uint64_t>(params.slack * static_cast<double>(b_max) *
                                 (1.0 + ln_inv_delta) *
                                 static_cast<double>(eta)) +
      64;
  topo.fanout = std::max<std::uint64_t>(2, n_mu);
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  // Central machine's local ratio state: coordinator-resident.
  BMatchingLocalRatio lr(g, b, eps);
  const std::uint64_t central_footprint = n + 2;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (EdgeId e = 0; e < m; ++e) footprint[owner_of(e, machines)] += 4;
  for (VertexId v = 0; v < n; ++v) {
    footprint[owner_of(v, machines)] += 1 + g.degree(v);
  }

  // Worker-resident distributed aliveness, mirroring rlr_matching.
  //
  // Edge owners (owner_of(e)) keep the shipped endpoint potentials in
  // separate accumulators so the float expression below reproduces
  // lr.edge_alive bit for bit, plus the centrally-announced stacked
  // flag; they re-derive aliveness after each phi wave and send a
  // one-word death notice to both endpoint owners on the alive->dead
  // transition (monotone: phi only grows and stacking is permanent, so
  // at most 2m notices ever flow).
  //
  // Endpoint owners (owner_of(u), owner_of(v)) keep alive_at_u/_v views
  // that the sampling round reads; they decay only via death notices.
  std::vector<double> phi_u_acc(m, 0.0);
  std::vector<double> phi_v_acc(m, 0.0);
  std::vector<char> owner_stacked(m, 0);
  std::vector<char> owner_alive(m);
  std::vector<char> alive_at_u(m);
  std::vector<char> alive_at_v(m);
  std::vector<std::uint64_t> alive_cnt(machines, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const char alive0 = g.weight(e) > 0.0 ? 1 : 0;
    owner_alive[e] = alive0;
    alive_at_u[e] = alive0;
    alive_at_v[e] = alive0;
    // Historic quirk preserved: the first |E_i| count includes every
    // edge, dead-at-weight-zero ones included.
    ++alive_cnt[owner_of(e, machines)];
  }

  RlrBMatchingResult res;
  const Rng root_rng(params.seed);  // immutable; streams only
  // Threshold for shipping everything: |E_i| < 2*b*ln(1/delta)*eta.
  const auto ship_all_below = static_cast<std::uint64_t>(
      2.0 * static_cast<double>(b_max) * ln_inv_delta *
      static_cast<double>(eta));

  // Consume last iteration's death notices, then report the live count.
  const mrc::RoundId r_count = engine.define_round(
      "count|Ei|", [&](MachineContext& ctx, std::span<const Word>) {
        const MachineId id = ctx.id();
        for (const mrc::MessageView msg : ctx.messages()) {
          for (const Word ew : msg.payload) {
            const auto e = static_cast<EdgeId>(ew);
            const graph::Edge& ed = g.edge(e);
            if (owner_of(ed.u, machines) == id) alive_at_u[e] = 0;
            if (owner_of(ed.v, machines) == id) alive_at_v[e] = 0;
          }
        }
        ctx.charge_resident(1);
        ctx.send(mrc::kCentral, {alive_cnt[id]});
      });

  // Vertex v draws b(v)*ln(1/delta)*n^mu alive incident edges (or all
  // of them in the endgame) and ships {v, (e, w)...} to central.
  const mrc::RoundId r_sample = engine.define_round(
      "sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t iter = ps[0];
        const bool ship_all = ps[1] != 0;
        ctx.charge_resident(footprint[ctx.id()]);
        Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
        for (VertexId v = static_cast<VertexId>(ctx.id()); v < n;
             v = static_cast<VertexId>(v + machines)) {
          std::vector<EdgeId> alive;
          for (const graph::Incidence& inc : g.neighbours(v)) {
            const char is_alive = g.edge(inc.edge).u == v
                                      ? alive_at_u[inc.edge]
                                      : alive_at_v[inc.edge];
            if (is_alive) alive.push_back(inc.edge);
          }
          if (alive.empty()) continue;
          std::vector<EdgeId> chosen;
          if (ship_all) {
            chosen = std::move(alive);
          } else {
            const auto want = static_cast<std::uint64_t>(
                std::ceil(params.sample_boost * static_cast<double>(b[v]) *
                          ln_inv_delta * static_cast<double>(n_mu)));
            if (want >= alive.size()) {
              chosen = std::move(alive);
            } else {
              const auto pick =
                  rng.sample_without_replacement(alive.size(), want);
              for (const auto k : pick) chosen.push_back(alive[k]);
            }
          }
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(v);
          for (const EdgeId e : chosen) {
            msg.push(e);
            msg.push(pack_double(g.weight(e)));
          }
        }
      });

  // Forward the phi wave: {v, phi} pairs fan out as {e, v, phi} triples
  // to the owners of v's incident edges; one-word stacked notices are
  // recorded by the edge owner directly.
  const mrc::RoundId r_forward_phi = engine.define_round(
      "forward-phi", [&](MachineContext& ctx, std::span<const Word>) {
        ctx.charge_resident(footprint[ctx.id()]);
        for (const mrc::MessageView msg : ctx.messages()) {
          if (msg.payload.size() == 1) {
            owner_stacked[static_cast<EdgeId>(msg.payload[0])] = 1;
            continue;
          }
          for (std::size_t k = 0; k + 1 < msg.payload.size(); k += 2) {
            const auto v = static_cast<VertexId>(msg.payload[k]);
            for (const graph::Incidence& inc : g.neighbours(v)) {
              ctx.send(owner_of(inc.edge, machines),
                       {inc.edge, v, msg.payload[k + 1]});
            }
          }
        }
      });

  // Edge owners apply the phi triples, re-derive aliveness with the
  // exact float expression of lr.edge_alive, and emit death notices.
  const mrc::RoundId r_recompute = engine.define_round(
      "recompute-alive", [&](MachineContext& ctx, std::span<const Word>) {
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 2 < msg.payload.size(); k += 3) {
            const auto e = static_cast<EdgeId>(msg.payload[k]);
            const auto v = static_cast<VertexId>(msg.payload[k + 1]);
            const double phi = unpack_double(msg.payload[k + 2]);
            if (g.edge(e).u == v) {
              phi_u_acc[e] = phi;
            } else {
              phi_v_acc[e] = phi;
            }
          }
        }
        std::uint64_t count = 0;
        for (EdgeId e = static_cast<EdgeId>(id); e < m;
             e = static_cast<EdgeId>(e + machines)) {
          const bool alive =
              !owner_stacked[e] &&
              g.weight(e) > (1.0 + eps) * (phi_u_acc[e] + phi_v_acc[e]);
          if (owner_alive[e] && !alive) {
            const graph::Edge& ed = g.edge(e);
            ctx.send(owner_of(ed.u, machines), {e});
            if (owner_of(ed.v, machines) != owner_of(ed.u, machines)) {
              ctx.send(owner_of(ed.v, machines), {e});
            }
          }
          owner_alive[e] = alive ? 1 : 0;
          if (alive) ++count;
        }
        alive_cnt[id] = count;
      });

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    engine.invoke_round(r_count);
    std::uint64_t ei = 0;
    engine.run_central_round("sum|Ei|", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word w : msg.payload) ei += w;
      }
    });
    if (ei == 0) break;
    ++res.outcome.iterations;
    const bool ship_all = ei < ship_all_below;

    engine.invoke_round(r_sample, {iter, ship_all ? 1u : 0u});

    // --- Central: per vertex, pop the heaviest alive sampled edges up to
    // b(v)*ln(1/delta) times (Algorithm 7 lines 11-17). ---
    std::vector<EdgeId> newly_stacked;
    engine.run_central_round("local-ratio", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint + ctx.inbox_words());
      // Messages arrive in sender-id order; regroup by vertex so the
      // processing order is ascending v on every backend, as before.
      std::vector<std::vector<EdgeId>> sampled(n);
      for (const mrc::MessageView msg : ctx.messages()) {
        const auto v = static_cast<VertexId>(msg.payload[0]);
        for (std::size_t k = 1; k + 1 < msg.payload.size(); k += 2) {
          sampled[v].push_back(static_cast<EdgeId>(msg.payload[k]));
        }
      }
      for (VertexId v = 0; v < n; ++v) {
        if (sampled[v].empty()) continue;
        // Residual order is stable during v's loop (each reduction
        // subtracts the same phi deltas from all of v's edges), so one
        // sort by residual suffices.
        std::sort(sampled[v].begin(), sampled[v].end(),
                  [&](EdgeId a, EdgeId b2) {
                    return lr.residual(a) > lr.residual(b2);
                  });
        const auto quota = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(b[v]) * ln_inv_delta));
        std::uint64_t taken = 0;
        for (const EdgeId e : sampled[v]) {
          if (taken >= quota) break;
          if (lr.process(e)) {
            ++taken;
            newly_stacked.push_back(e);
          }
        }
      }
    });

    // --- Propagate phi (and the stacked set) and recompute aliveness. ---
    engine.run_central_round("send-phi", [&](MachineContext& ctx) {
      ctx.charge_resident(central_footprint);
      for (VertexId v = 0; v < n; ++v) {
        ctx.send(owner_of(v, machines), {v, pack_double(lr.phi(v))});
      }
      for (const EdgeId e : newly_stacked) {
        ctx.send(owner_of(e, machines), {e});
      }
    });
    engine.invoke_round(r_forward_phi);
    engine.invoke_round(r_recompute);
  }

  RlrBMatchingResult unwound = lr.unwind();
  res.matching = std::move(unwound.matching);
  res.weight = unwound.weight;
  res.stack_size = unwound.stack_size;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
