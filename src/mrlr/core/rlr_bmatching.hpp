#pragma once
// Randomized local ratio for maximum weight b-matching — Algorithm 7 and
// Appendix D.
//
// The plain local ratio reduction is too weak for b >= 2: killing all
// edges at a vertex requires b(v) reductions (Section D.2), so the paper
// uses *epsilon-adjusted* reductions. The central machine maintains
// phi(v) = sum of (reduction / b(v)) charges at v; processing edge
// e = {u, v} with residual g = w(e) - phi(u) - phi(v) > 0 pushes e and
// charges g/b(u) to u and g/b(v) to v. An edge dies when
// w(e) <= (1+eps) * (phi(u) + phi(v)). Unwinding the stack greedily
// (respecting capacities) yields a (3 - 2/max{2,b} + 2*eps)-approximate
// b-matching (Theorem D.1 + the epsilon adjustment).
//
// Sampling per iteration: vertex v draws b(v) * ln(1/delta) * n^mu alive
// incident edges (delta = eps/(1+eps)); the central machine pops the
// heaviest b(v) * ln(1/delta) of them per vertex. Lemma D.2: the maximum
// degree drops by n^{mu/4} per iteration w.h.p.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::core {

struct RlrBMatchingResult {
  std::vector<graph::EdgeId> matching;
  double weight = 0.0;
  std::uint64_t stack_size = 0;
  MrOutcome outcome;
};

/// b[v] >= 1 is the capacity of vertex v; eps > 0 controls the
/// epsilon-adjusted kill rule.
RlrBMatchingResult rlr_b_matching(const graph::Graph& g,
                                  const std::vector<std::uint32_t>& b,
                                  double eps, const MrParams& params);

/// Sequential epsilon-adjusted local ratio (the order-driven engine the
/// MapReduce version drives); exposed for tests. Processes edges in the
/// given order, then any leftovers in id order, and unwinds.
RlrBMatchingResult seq_b_matching_local_ratio(
    const graph::Graph& g, const std::vector<std::uint32_t>& b, double eps,
    const std::vector<graph::EdgeId>& order = {});

}  // namespace mrlr::core
