#include "mrlr/core/hungry_mis.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>
#include <utility>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/seq/mis.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// Shared independent-set state: I, the dominated region N+(I), and the
/// residual degrees d_I(v) (0 for dominated vertices). Lives on the
/// central machine (coordinator-resident); the worker machines carry
/// the mirrors maintained by MisJob below.
class MisState {
 public:
  explicit MisState(const graph::Graph& g)
      : g_(g), in_I_(g.num_vertices(), 0), dominated_(g.num_vertices(), 0),
        d_(g.num_vertices(), 0) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) d_[v] = g.degree(v);
  }

  bool alive(VertexId v) const { return !dominated_[v]; }
  std::uint64_t degree(VertexId v) const { return dominated_[v] ? 0 : d_[v]; }
  bool in_set(VertexId v) const { return in_I_[v] != 0; }

  /// Admits v (must be alive); returns the vertices newly dominated.
  std::vector<VertexId> add(VertexId v) {
    MRLR_REQUIRE(alive(v), "cannot add a dominated vertex to I");
    in_I_[v] = 1;
    std::vector<VertexId> newly{v};
    dominated_[v] = 1;
    for (const Incidence& inc : g_.neighbours(v)) {
      if (!dominated_[inc.neighbour]) {
        dominated_[inc.neighbour] = 1;
        newly.push_back(inc.neighbour);
      }
    }
    for (const VertexId w : newly) {
      for (const Incidence& inc : g_.neighbours(w)) {
        if (!dominated_[inc.neighbour] && d_[inc.neighbour] > 0) {
          --d_[inc.neighbour];
        }
      }
    }
    return newly;
  }

  std::vector<VertexId> members() const {
    std::vector<VertexId> out;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (in_I_[v]) out.push_back(v);
    }
    return out;
  }

 private:
  const graph::Graph& g_;
  std::vector<char> in_I_;
  std::vector<char> dominated_;
  std::vector<std::uint64_t> d_;
};

struct Cluster {
  std::uint64_t eta = 0;
  std::uint64_t machines = 0;
  std::vector<std::uint64_t> footprint;  // per-machine resident words
};

Cluster make_cluster(const graph::Graph& g, double mu) {
  Cluster cl;
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  cl.eta = ipow_real(n, 1.0 + mu, 1);
  cl.machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), cl.eta));
  cl.footprint.assign(cl.machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    cl.footprint[owner_of(v, cl.machines)] += 2 + g.degree(v);
  }
  return cl;
}

/// Process-clean distributed side of the hungry-greedy MIS. The central
/// machine holds the authoritative MisState; every machine keeps a full
/// dominated mirror plus the residual degrees of the vertices it owns,
/// and both are refreshed exclusively by the newly-dominated tree
/// broadcast, replaying MisState::add step for step. Sampling moved
/// machine-side: each owner draws its own vertices from a per-(round,
/// machine) RNG stream, so no host randomness has to reach the workers.
class MisJob {
 public:
  // Ship-round modes (params[0]). kModeSample/kModeAll select vertices
  // with degree >= params[2]; kModeClass selects class_of(degree) ==
  // params[2] and samples like kModeSample.
  static constexpr Word kModeSample = 0;  // bernoulli(p) + uniform group
  static constexpr Word kModeAll = 1;     // every heavy vertex, group 0
  static constexpr Word kModeClass = 2;   // degree-class members, sampled

  MisJob(mrc::Engine& engine, const graph::Graph& g, const Cluster& cl,
         std::uint64_t seed,
         std::function<std::uint64_t(std::uint64_t)> class_of,
         std::uint64_t num_classes)
      : engine_(engine),
        g_(g),
        cl_(cl),
        machines_(cl.machines),
        dominated_by_(machines_, std::vector<char>(g.num_vertices(), 0)),
        d_dist_(g.num_vertices(), 0),
        root_(seed),
        class_of_(std::move(class_of)),
        num_classes_(num_classes),
        bcast_(engine, "bcast-dominated",
               [this](MachineContext& ctx, std::span<const Word> newly) {
                 apply_dominated(ctx, newly);
               }) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) d_dist_[v] = g.degree(v);

    // Owners count their heavy vertices (degree >= threshold).
    r_count_heavy_ = engine.define_round(
        "count|VH|", [this](MachineContext& ctx, std::span<const Word> ps) {
          const std::uint64_t threshold = ps[0];
          Word cnt = 0;
          for (VertexId v = static_cast<VertexId>(ctx.id());
               v < g_.num_vertices();
               v = static_cast<VertexId>(v + machines_)) {
            if (degree(ctx.id(), v) >= threshold) ++cnt;
          }
          ctx.charge_resident(1);
          ctx.send(mrc::kCentral, {cnt});
        });

    // Owners report the sum of residual degrees (for |E_k|).
    r_degsum_ = engine.define_round(
        "count|Ek|", [this](MachineContext& ctx, std::span<const Word>) {
          Word sum = 0;
          for (VertexId v = static_cast<VertexId>(ctx.id());
               v < g_.num_vertices();
               v = static_cast<VertexId>(v + machines_)) {
            sum += degree(ctx.id(), v);
          }
          ctx.charge_resident(1);
          ctx.send(mrc::kCentral, {sum});
        });

    // Owners report per-class counts of their alive vertices.
    r_classes_ = engine.define_round(
        "count-classes", [this](MachineContext& ctx, std::span<const Word>) {
          std::vector<Word> counts(num_classes_ + 1, 0);
          for (VertexId v = static_cast<VertexId>(ctx.id());
               v < g_.num_vertices();
               v = static_cast<VertexId>(v + machines_)) {
            const std::uint64_t d = degree(ctx.id(), v);
            if (d == 0) continue;
            ++counts[class_of_(d)];
          }
          ctx.charge_resident(counts.size());
          ctx.send_batch(mrc::kCentral, counts);
        });

    // Sampling + shipping in one round: owners self-select their heavy
    // vertices and ship {group, v, d_I(v), alive neighbours} to central.
    r_ship_ = engine.define_round(
        "ship-sample", [this](MachineContext& ctx, std::span<const Word> ps) {
          const Word mode = ps[0];
          const std::uint64_t salt = ps[1];
          const std::uint64_t sel = ps[2];
          const std::uint64_t num_groups = ps[3];
          const double p_sample = unpack_double(ps[4]);
          const MachineId id = ctx.id();
          ctx.charge_resident(cl_.footprint[id]);
          Rng rng = root_.stream((salt << 20) ^ id);
          for (VertexId v = static_cast<VertexId>(id);
               v < g_.num_vertices();
               v = static_cast<VertexId>(v + machines_)) {
            const std::uint64_t d = degree(id, v);
            if (mode == kModeClass) {
              if (d == 0 || class_of_(d) != sel) continue;
            } else if (d < sel) {
              continue;
            }
            Word group = 0;
            if (mode != kModeAll) {
              if (!rng.bernoulli(p_sample)) continue;
              group = rng.uniform(num_groups);
            }
            mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
            msg.push(group);
            msg.push(v);
            msg.push(degree(id, v));
            for (const Incidence& inc : g_.neighbours(v)) {
              if (!dominated_by_[id][inc.neighbour]) {
                msg.push(inc.neighbour);
              }
            }
          }
        });

    // Final step shared by both variants: ship the residual graph (all
    // alive vertices with their alive adjacency, <= ~n^{1+mu} words).
    r_ship_residual_ = engine.define_round(
        "ship-residual", [this](MachineContext& ctx, std::span<const Word>) {
          const MachineId id = ctx.id();
          ctx.charge_resident(cl_.footprint[id]);
          for (VertexId v = static_cast<VertexId>(id);
               v < g_.num_vertices();
               v = static_cast<VertexId>(v + machines_)) {
            if (dominated_by_[id][v]) continue;
            mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
            msg.push(v);
            msg.push(degree(id, v));
            for (const Incidence& inc : g_.neighbours(v)) {
              if (!dominated_by_[id][inc.neighbour]) {
                msg.push(inc.neighbour);
              }
            }
          }
        });
  }

  /// One sweep: ship a sample (selected by `mode`/`sel`), admit
  /// greedily per group on the central machine at `admit_threshold`
  /// (Algorithm 2 lines 8-10), and broadcast the newly dominated
  /// vertices so every mirror replays the admissions. Returns vertices
  /// admitted. With skip_if_empty, an empty sample skips the admit and
  /// broadcast rounds entirely.
  std::uint64_t sweep(Word mode, std::uint64_t salt, std::uint64_t sel,
                      std::uint64_t admit_threshold, std::uint64_t num_groups,
                      double p_sample, bool one_per_group, MisState& state,
                      bool skip_if_empty) {
    engine_.invoke_round(
        r_ship_, {mode, salt, sel, num_groups, pack_double(p_sample)});
    if (skip_if_empty && engine_.inbox_size(mrc::kCentral) == 0) return 0;

    std::uint64_t added = 0;
    std::vector<VertexId> all_newly;
    engine_.run_central_round("admit", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 2);
      std::vector<std::pair<std::uint64_t, VertexId>> sample;
      for (const mrc::MessageView msg : ctx.messages()) {
        sample.emplace_back(msg.payload[0],
                            static_cast<VertexId>(msg.payload[1]));
      }
      std::sort(sample.begin(), sample.end());
      std::uint64_t current_group = ~std::uint64_t{0};
      bool group_done = false;
      for (const auto& [group, v] : sample) {
        if (group != current_group) {
          current_group = group;
          group_done = false;
        }
        if (one_per_group && group_done) continue;
        if (state.alive(v) && state.degree(v) >= admit_threshold) {
          const auto newly = state.add(v);
          all_newly.insert(all_newly.end(), newly.begin(), newly.end());
          ++added;
          group_done = true;
        }
      }
    });

    bcast_.run(std::vector<Word>(all_newly.begin(), all_newly.end()));
    return added;
  }

  /// Ship the residual graph; central finishes greedily.
  void central_finish(MisState& state) {
    engine_.invoke_round(r_ship_residual_);
    engine_.run_central_round("greedy-finish", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words());
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        if (state.alive(v)) (void)state.add(v);
      }
    });
  }

  /// Registered counting helpers; each pairs with a central sum round.
  std::uint64_t count_heavy(std::uint64_t threshold) {
    engine_.invoke_round(r_count_heavy_, {threshold});
    return central_sum("sum|VH|");
  }
  std::uint64_t degree_sum() {
    engine_.invoke_round(r_degsum_);
    return central_sum("sum|Ek|");
  }
  std::vector<Word> class_sizes() {
    engine_.invoke_round(r_classes_);
    std::vector<Word> sizes(num_classes_ + 1, 0);
    engine_.run_central_round("sum-classes", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + sizes.size());
      for (const mrc::MessageView msg : ctx.messages()) {
        for (std::size_t i = 0;
             i < msg.payload.size() && i < sizes.size(); ++i) {
          sizes[i] += msg.payload[i];
        }
      }
    });
    return sizes;
  }

 private:
  std::uint64_t degree(MachineId id, VertexId v) const {
    return dominated_by_[id][v] ? 0 : d_dist_[v];
  }

  /// Replays MisState::add on the mirrors: mark every newly dominated
  /// vertex first, then apply the per-(w, neighbour) decrements to the
  /// owned residual degrees — identical order of effects, so mirrors
  /// and the central state never diverge.
  void apply_dominated(MachineContext& ctx, std::span<const Word> newly) {
    const MachineId id = ctx.id();
    std::vector<char>& dominated = dominated_by_[id];
    for (const Word ww : newly) dominated[static_cast<VertexId>(ww)] = 1;
    for (const Word ww : newly) {
      const auto w = static_cast<VertexId>(ww);
      for (const Incidence& inc : g_.neighbours(w)) {
        const VertexId x = inc.neighbour;
        if (owner_of(x, machines_) != id) continue;
        if (!dominated[x] && d_dist_[x] > 0) --d_dist_[x];
      }
    }
  }

  std::uint64_t central_sum(std::string_view label) {
    std::uint64_t total = 0;
    engine_.run_central_round(label, [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        for (const Word w : msg.payload) total += w;
      }
    });
    return total;
  }

  mrc::Engine& engine_;
  const graph::Graph& g_;
  const Cluster& cl_;
  std::uint64_t machines_;
  // Per-machine full dominated mirrors; d_dist_ is owner-strided.
  std::vector<std::vector<char>> dominated_by_;
  std::vector<std::uint64_t> d_dist_;
  Rng root_;  // immutable; streams only
  std::function<std::uint64_t(std::uint64_t)> class_of_;
  std::uint64_t num_classes_;
  mrc::JobBroadcast bcast_;
  mrc::RoundId r_count_heavy_;
  mrc::RoundId r_degsum_;
  mrc::RoundId r_classes_;
  mrc::RoundId r_ship_;
  mrc::RoundId r_ship_residual_;
};

}  // namespace

HungryMisResult hungry_mis_simple(const graph::Graph& g,
                                  const MrParams& params) {
  MRLR_REQUIRE(params.mu > 0.0, "hungry-greedy requires mu > 0");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double alpha = params.mu / 2.0;
  const Cluster cl = make_cluster(g, params.mu);

  mrc::Topology topo;
  topo.num_machines = cl.machines;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(cl.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  MisState state(g);
  HungryMisResult res;
  MisJob job(engine, g, cl, params.seed, nullptr, 0);
  const std::uint64_t group_size =
      std::max<std::uint64_t>(1, ipow_real(n, params.mu / 2.0, 1));

  // Phases lower the threshold n^{1 - i*alpha} until it reaches n^mu,
  // at which point the residual graph fits on the central machine.
  for (std::uint64_t i = 1;; ++i) {
    const double exponent = 1.0 - static_cast<double>(i) * alpha;
    if (exponent < params.mu) break;
    const std::uint64_t threshold = ipow_real(n, exponent, 1);
    const std::uint64_t heavy_cap =
        ipow_real(n, static_cast<double>(i) * alpha, 1);
    const std::uint64_t num_groups = heavy_cap;
    ++res.phases;

    for (std::uint64_t sweep_idx = 0;
         res.outcome.iterations < params.max_iterations; ++sweep_idx) {
      ++res.outcome.iterations;
      const std::uint64_t vh = job.count_heavy(threshold);
      if (vh == 0) break;
      if (vh < heavy_cap) {
        // Mop-up: fewer than n^{i*alpha} heavy vertices remain; they fit
        // on the central machine (<= n^{1+alpha} words), which admits
        // the surviving ones directly so the phase invariant
        // d_I(v) < threshold holds exactly at the next phase.
        res.central_adds += job.sweep(
            MisJob::kModeAll, res.outcome.iterations, threshold, threshold,
            /*num_groups=*/1, /*p_sample=*/1.0,
            /*one_per_group=*/false, state, /*skip_if_empty=*/false);
        break;
      }

      // Heavy vertices self-select into the sample with probability
      // (num_groups * group_size) / |V_H| and draw a uniform group id —
      // an i.i.d. realization of "draw num_groups groups of group_size
      // vertices from V_H".
      const double p_sample = std::min(
          1.0, static_cast<double>(num_groups) *
                   static_cast<double>(group_size) /
                   static_cast<double>(vh));
      res.central_adds += job.sweep(
          MisJob::kModeSample, res.outcome.iterations, threshold, threshold,
          num_groups, p_sample, /*one_per_group=*/true, state,
          /*skip_if_empty=*/false);
    }
  }

  job.central_finish(state);
  res.independent_set = state.members();
  res.outcome.fill_from(engine.metrics());
  return res;
}

HungryMisResult hungry_mis_improved(const graph::Graph& g,
                                    const MrParams& params) {
  MRLR_REQUIRE(params.mu > 0.0, "hungry-greedy requires mu > 0");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double alpha = params.mu / 8.0;
  const auto num_classes =
      static_cast<std::uint64_t>(std::ceil(1.0 / alpha));
  const Cluster cl = make_cluster(g, params.mu);

  mrc::Topology topo;
  topo.num_machines = cl.machines;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(cl.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  // Degree-class boundaries: class i holds n^{1-i*alpha} <= d < n^{1-(i-1)*alpha}.
  auto class_of = [n, alpha, num_classes](std::uint64_t d) -> std::uint64_t {
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      if (d >= ipow_real(n, 1.0 - static_cast<double>(i) * alpha, 1)) {
        return i;
      }
    }
    return num_classes;  // degree >= 1 falls in the last class
  };

  MisState state(g);
  HungryMisResult res;
  MisJob job(engine, g, cl, params.seed, class_of, num_classes);
  const std::uint64_t group_size =
      std::max<std::uint64_t>(1, ipow_real(n, params.mu / 2.0, 1));

  while (res.outcome.iterations < params.max_iterations) {
    ++res.outcome.iterations;
    ++res.phases;
    // |E_k| from per-machine alive-degree sums.
    const std::uint64_t ek = job.degree_sum() / 2;
    if (ek < cl.eta) break;

    // Class sizes |V_{k,i}|.
    const std::vector<Word> sizes = job.class_sizes();

    // Per class i (ascending, matching Algorithm 6's loop order): sample
    // n^{(i+1)*alpha} groups of n^{mu/2} from the class and admit at the
    // one-lower threshold d_I(v) >= n^{1-(i+1)*alpha}. Each class is its
    // own sweep against the current state; empty samples skip the admit
    // and broadcast rounds.
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      if (sizes[i] == 0) continue;
      const std::uint64_t groups =
          ipow_real(n, static_cast<double>(i + 1) * alpha, 1);
      const double p_sample = std::min(
          1.0, static_cast<double>(groups) *
                   static_cast<double>(group_size) /
                   static_cast<double>(sizes[i]));
      const std::uint64_t admit_threshold =
          ipow_real(n, 1.0 - static_cast<double>(i + 1) * alpha, 1);
      // Owners self-select the class members; admission re-checks at
      // the one-lower threshold.
      res.central_adds += job.sweep(
          MisJob::kModeClass,
          (res.outcome.iterations << 8) ^ i, /*sel=*/i, admit_threshold,
          groups, p_sample, /*one_per_group=*/true, state,
          /*skip_if_empty=*/true);
    }
  }

  job.central_finish(state);
  res.independent_set = state.members();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
