#include "mrlr/core/hungry_mis.hpp"

#include <algorithm>
#include <cmath>

#include "mrlr/seq/mis.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::core {

using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// Shared independent-set state: I, the dominated region N+(I), and the
/// residual degrees d_I(v) (0 for dominated vertices).
class MisState {
 public:
  explicit MisState(const graph::Graph& g)
      : g_(g), in_I_(g.num_vertices(), 0), dominated_(g.num_vertices(), 0),
        d_(g.num_vertices(), 0) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) d_[v] = g.degree(v);
  }

  bool alive(VertexId v) const { return !dominated_[v]; }
  std::uint64_t degree(VertexId v) const { return dominated_[v] ? 0 : d_[v]; }
  bool in_set(VertexId v) const { return in_I_[v] != 0; }

  /// Admits v (must be alive); returns the vertices newly dominated.
  std::vector<VertexId> add(VertexId v) {
    MRLR_REQUIRE(alive(v), "cannot add a dominated vertex to I");
    in_I_[v] = 1;
    std::vector<VertexId> newly{v};
    dominated_[v] = 1;
    for (const Incidence& inc : g_.neighbours(v)) {
      if (!dominated_[inc.neighbour]) {
        dominated_[inc.neighbour] = 1;
        newly.push_back(inc.neighbour);
      }
    }
    for (const VertexId w : newly) {
      for (const Incidence& inc : g_.neighbours(w)) {
        if (!dominated_[inc.neighbour] && d_[inc.neighbour] > 0) {
          --d_[inc.neighbour];
        }
      }
    }
    return newly;
  }

  std::vector<VertexId> members() const {
    std::vector<VertexId> out;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (in_I_[v]) out.push_back(v);
    }
    return out;
  }

  /// Residual edge count: edges with both endpoints alive.
  std::uint64_t residual_edges() const {
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) sum += degree(v);
    return sum / 2;
  }

 private:
  const graph::Graph& g_;
  std::vector<char> in_I_;
  std::vector<char> dominated_;
  std::vector<std::uint64_t> d_;
};

struct Cluster {
  std::uint64_t eta = 0;
  std::uint64_t machines = 0;
  std::vector<std::uint64_t> footprint;  // per-machine resident words
};

Cluster make_cluster(const graph::Graph& g, double mu) {
  Cluster cl;
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  cl.eta = ipow_real(n, 1.0 + mu, 1);
  cl.machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), cl.eta));
  cl.footprint.assign(cl.machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    cl.footprint[owner_of(v, cl.machines)] += 2 + g.degree(v);
  }
  return cl;
}

/// Ship the sampled vertices (with alive-neighbour lists) to central,
/// admit greedily under `threshold`, and run the two update rounds
/// (notify dominated, recompute degrees). Returns vertices admitted.
/// Samples are given as (group, vertex) pairs, scanned in group order,
/// with at most one admission per group (Algorithm 2 lines 8-10).
std::uint64_t sweep(mrc::Engine& engine, const graph::Graph& g,
                    MisState& state, const Cluster& cl,
                    std::vector<std::pair<std::uint32_t, VertexId>> sample,
                    std::uint64_t threshold, bool one_per_group) {
  const std::uint64_t machines = cl.machines;
  std::sort(sample.begin(), sample.end());

  // Sampling round: owners ship v plus its alive-neighbour list.
  engine.run_round("ship-sample", [&](MachineContext& ctx) {
    ctx.charge_resident(cl.footprint[ctx.id()]);
    for (const auto& [group, v] : sample) {
      if (owner_of(v, machines) != ctx.id()) continue;
      mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
      msg.push(group);
      msg.push(v);
      msg.push(state.degree(v));
      for (const Incidence& inc : g.neighbours(v)) {
        if (state.alive(inc.neighbour)) msg.push(inc.neighbour);
      }
    }
  });

  // Central round: admit per group.
  std::uint64_t added = 0;
  std::vector<VertexId> all_newly;
  engine.run_central_round("admit", [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words() + 2);
    std::uint64_t current_group = ~std::uint64_t{0};
    bool group_done = false;
    for (const auto& [group, v] : sample) {
      if (group != current_group) {
        current_group = group;
        group_done = false;
      }
      if (one_per_group && group_done) continue;
      if (state.alive(v) && state.degree(v) >= threshold) {
        const auto newly = state.add(v);
        all_newly.insert(all_newly.end(), newly.begin(), newly.end());
        ++added;
        group_done = true;
      }
    }
  });

  // Update round A: central notifies owners of newly dominated vertices.
  engine.run_central_round("notify-dominated", [&](MachineContext& ctx) {
    ctx.charge_resident(2);
    for (const VertexId w : all_newly) {
      ctx.send(owner_of(w, machines), {w});
    }
  });
  // Update round B: dominated vertices announce to neighbours so alive
  // vertices can recompute d_I (the "ask each neighbour" round of
  // Theorem 3.3's proof).
  engine.run_round("recompute-dI", [&](MachineContext& ctx) {
    ctx.charge_resident(cl.footprint[ctx.id()]);
    for (const mrc::MessageView msg : ctx.messages()) {
      for (const Word ww : msg.payload) {
        const auto w = static_cast<VertexId>(ww);
        for (const Incidence& inc : g.neighbours(w)) {
          ctx.send(owner_of(inc.neighbour, machines), {inc.neighbour});
        }
      }
    }
  });
  engine.run_round("drain", [&](MachineContext& ctx) {
    ctx.charge_resident(cl.footprint[ctx.id()]);
  });
  return added;
}

/// Final step shared by both variants: the residual graph (all alive
/// vertices and their alive adjacency, <= ~n^{1+mu} words) is shipped to
/// the central machine, which finishes greedily.
void central_finish(mrc::Engine& engine, const graph::Graph& g,
                    MisState& state, const Cluster& cl) {
  engine.run_round("ship-residual", [&](MachineContext& ctx) {
    ctx.charge_resident(cl.footprint[ctx.id()]);
    for (VertexId v = static_cast<VertexId>(ctx.id());
         v < g.num_vertices();
         v = static_cast<VertexId>(v + cl.machines)) {
      if (!state.alive(v)) continue;
      mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
      msg.push(v);
      msg.push(state.degree(v));
      for (const Incidence& inc : g.neighbours(v)) {
        if (state.alive(inc.neighbour)) msg.push(inc.neighbour);
      }
    }
  });
  engine.run_central_round("greedy-finish", [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (state.alive(v)) (void)state.add(v);
    }
  });
}

}  // namespace

HungryMisResult hungry_mis_simple(const graph::Graph& g,
                                  const MrParams& params) {
  MRLR_REQUIRE(params.mu > 0.0, "hungry-greedy requires mu > 0");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double alpha = params.mu / 2.0;
  const Cluster cl = make_cluster(g, params.mu);

  mrc::Topology topo;
  topo.num_machines = cl.machines;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(cl.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);

  MisState state(g);
  HungryMisResult res;
  Rng root_rng(params.seed);
  const std::uint64_t group_size =
      std::max<std::uint64_t>(1, ipow_real(n, params.mu / 2.0, 1));

  // Phases lower the threshold n^{1 - i*alpha} until it reaches n^mu,
  // at which point the residual graph fits on the central machine.
  for (std::uint64_t i = 1;; ++i) {
    const double exponent = 1.0 - static_cast<double>(i) * alpha;
    if (exponent < params.mu) break;
    const std::uint64_t threshold = ipow_real(n, exponent, 1);
    const std::uint64_t heavy_cap =
        ipow_real(n, static_cast<double>(i) * alpha, 1);
    const std::uint64_t num_groups = heavy_cap;
    ++res.phases;

    for (std::uint64_t sweep_idx = 0;
         res.outcome.iterations < params.max_iterations; ++sweep_idx) {
      ++res.outcome.iterations;
      // Count heavy vertices.
      std::vector<Word> counts(cl.machines, 0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (state.degree(v) >= threshold) {
          ++counts[owner_of(v, cl.machines)];
        }
      }
      const std::uint64_t vh = allreduce_sum_direct(engine, counts, "count|VH|");
      if (vh == 0) break;
      if (vh < heavy_cap) {
        // Mop-up: fewer than n^{i*alpha} heavy vertices remain; they fit
        // on the central machine (<= n^{1+alpha} words), which admits
        // the surviving ones directly so the phase invariant
        // d_I(v) < threshold holds exactly at the next phase.
        std::vector<std::pair<std::uint32_t, VertexId>> rest;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if (state.degree(v) >= threshold) {
            rest.emplace_back(static_cast<std::uint32_t>(rest.size()), v);
          }
        }
        res.central_adds += sweep(engine, g, state, cl, std::move(rest),
                                  threshold, /*one_per_group=*/false);
        break;
      }

      // Heavy vertices self-select into the sample with probability
      // (num_groups * group_size) / |V_H| and draw a uniform group id —
      // an i.i.d. realization of "draw num_groups groups of group_size
      // vertices from V_H".
      const double p_sample = std::min(
          1.0, static_cast<double>(num_groups) *
                   static_cast<double>(group_size) /
                   static_cast<double>(vh));
      std::vector<std::pair<std::uint32_t, VertexId>> sample;
      Rng rng = root_rng.fork(res.outcome.iterations);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (state.degree(v) >= threshold && rng.bernoulli(p_sample)) {
          sample.emplace_back(
              static_cast<std::uint32_t>(rng.uniform(num_groups)), v);
        }
      }
      res.central_adds += sweep(engine, g, state, cl, std::move(sample),
                                threshold, /*one_per_group=*/true);
    }
  }

  central_finish(engine, g, state, cl);
  res.independent_set = state.members();
  res.outcome.fill_from(engine.metrics());
  return res;
}

HungryMisResult hungry_mis_improved(const graph::Graph& g,
                                    const MrParams& params) {
  MRLR_REQUIRE(params.mu > 0.0, "hungry-greedy requires mu > 0");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const double alpha = params.mu / 8.0;
  const auto num_classes =
      static_cast<std::uint64_t>(std::ceil(1.0 / alpha));
  const Cluster cl = make_cluster(g, params.mu);

  mrc::Topology topo;
  topo.num_machines = cl.machines;
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(cl.eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);

  MisState state(g);
  HungryMisResult res;
  Rng root_rng(params.seed);
  const std::uint64_t group_size =
      std::max<std::uint64_t>(1, ipow_real(n, params.mu / 2.0, 1));

  // Degree-class boundaries: class i holds n^{1-i*alpha} <= d < n^{1-(i-1)*alpha}.
  auto class_of = [&](std::uint64_t d) -> std::uint64_t {
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      if (d >= ipow_real(n, 1.0 - static_cast<double>(i) * alpha, 1)) {
        return i;
      }
    }
    return num_classes;  // degree >= 1 falls in the last class
  };

  while (res.outcome.iterations < params.max_iterations) {
    ++res.outcome.iterations;
    ++res.phases;
    // |E_k| via allreduce of per-machine alive-degree sums.
    std::vector<Word> degsum(cl.machines, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      degsum[owner_of(v, cl.machines)] += state.degree(v);
    }
    const std::uint64_t ek =
        allreduce_sum_direct(engine, degsum, "count|Ek|") / 2;
    if (ek < cl.eta) break;

    // Class sizes |V_{k,i}| (one vector allreduce).
    std::vector<std::vector<Word>> class_counts(
        cl.machines, std::vector<Word>(num_classes + 1, 0));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::uint64_t d = state.degree(v);
      if (d == 0) continue;
      ++class_counts[owner_of(v, cl.machines)][class_of(d)];
    }
    const std::vector<Word> sizes =
        allreduce_sum_vec(engine, class_counts, "count-classes");

    // Sample per class: n^{(i+1)*alpha} groups of n^{mu/2}; thresholds for
    // admission are one class lower: d_I(v) >= n^{1-(i+1)*alpha}.
    std::vector<std::pair<std::uint32_t, VertexId>> sample;
    Rng rng = root_rng.fork(res.outcome.iterations);
    std::vector<std::uint64_t> groups_of_class(num_classes + 1, 0);
    std::uint64_t group_base = 0;
    std::vector<std::uint64_t> base_of_class(num_classes + 1, 0);
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      base_of_class[i] = group_base;
      groups_of_class[i] =
          ipow_real(n, static_cast<double>(i + 1) * alpha, 1);
      group_base += groups_of_class[i];
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::uint64_t d = state.degree(v);
      if (d == 0) continue;
      const std::uint64_t i = class_of(d);
      if (sizes[i] == 0) continue;
      const double p_sample = std::min(
          1.0, static_cast<double>(groups_of_class[i]) *
                   static_cast<double>(group_size) /
                   static_cast<double>(sizes[i]));
      if (rng.bernoulli(p_sample)) {
        const std::uint64_t group =
            base_of_class[i] + rng.uniform(groups_of_class[i]);
        sample.emplace_back(static_cast<std::uint32_t>(group), v);
      }
    }

    // Admission threshold depends on the class; encode by checking the
    // per-vertex class at admission time. The sweep helper admits at a
    // single threshold, so split by class (classes are scanned in
    // ascending i, matching Algorithm 6's loop order, at the cost of one
    // sweep per *nonempty* class — the round count per iteration stays
    // O(1/alpha) = O(1/mu) which Theorem A.3's proof already pays in
    // space; empirically most iterations touch a few classes).
    std::vector<std::vector<std::pair<std::uint32_t, VertexId>>> by_class(
        num_classes + 1);
    for (const auto& [grp, v] : sample) {
      const std::uint64_t d = state.degree(v);
      if (d == 0) continue;
      by_class[class_of(d)].emplace_back(grp, v);
    }
    for (std::uint64_t i = 1; i <= num_classes; ++i) {
      if (by_class[i].empty()) continue;
      const std::uint64_t admit_threshold =
          ipow_real(n, 1.0 - static_cast<double>(i + 1) * alpha, 1);
      res.central_adds += sweep(engine, g, state, cl,
                                std::move(by_class[i]), admit_threshold,
                                /*one_per_group=*/true);
    }
  }

  central_finish(engine, g, state, cl);
  res.independent_set = state.members();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::core
