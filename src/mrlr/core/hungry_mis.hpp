#pragma once
// Hungry-greedy maximal independent set — Algorithm 2 (simple,
// O(1/mu^2) rounds, Theorem 3.3) and Algorithm 6 (improved, O(c/mu)
// rounds, Theorem A.3).
//
// Hungry-greedy samples *heavy* vertices — not to maximize an objective,
// but because adding a heavy vertex to I disqualifies >= n^{1-i*alpha}
// others (they enter N+(I)), shrinking the instance geometrically.
//
// Algorithm 2 (alpha = mu/2): phases i = 1, 2, ... lower the heaviness
// threshold n^{1-i*alpha}; inside a phase, while the heavy set V_H is
// large, draw n^{i*alpha} groups of n^{mu/2} vertices from V_H, ship
// them (with their alive-neighbour lists) to the central machine, which
// scans groups in order and admits one still-heavy vertex per group.
// Lemma 3.2: |V_H| shrinks by n^{mu/4} per sweep w.h.p. When the residual
// degree is <= n^mu everywhere, the whole residual graph (<= n^{1+mu}
// edges) moves to the central machine for a greedy finish.
//
// Algorithm 6 (alpha = mu/8): one combined loop over degree classes
// V_{k,i} = {v : n^{1-i*alpha} <= d_I(v) < n^{1-(i-1)*alpha}} with
// n^{(i+1)*alpha} groups per class; Lemma A.2 shows the *edge count*
// drops by ~n^{mu/8} per iteration, giving O(c/mu) iterations until
// |E_k| < n^{1+mu} and the central finish applies.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::core {

struct HungryMisResult {
  std::vector<graph::VertexId> independent_set;
  std::uint64_t phases = 0;       ///< outer phase count (Alg. 2) or loop
                                  ///< iterations (Alg. 6)
  std::uint64_t central_adds = 0; ///< vertices admitted by sampling sweeps
  MrOutcome outcome;
};

/// Algorithm 2: O(1/mu^2) rounds.
HungryMisResult hungry_mis_simple(const graph::Graph& g,
                                  const MrParams& params);

/// Algorithm 6: O(c/mu) rounds.
HungryMisResult hungry_mis_improved(const graph::Graph& g,
                                    const MrParams& params);

}  // namespace mrlr::core
