#include "mrlr/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mrlr/util/require.hpp"

namespace mrlr {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double Accumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> values, double q) {
  MRLR_REQUIRE(!values.empty(), "percentile of empty sample");
  MRLR_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& x,
                   const std::vector<double>& y) {
  MRLR_REQUIRE(x.size() == y.size(), "fit_line requires equal-length vectors");
  MRLR_REQUIRE(x.size() >= 2, "fit_line requires at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (denom == 0.0) {
    f.intercept = sy / n;
    return f;
  }
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += r * r;
  }
  f.r2 = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

std::string format_si(double v) {
  char buf[32];
  const char* suffix = "";
  double scaled = v;
  if (std::fabs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  std::snprintf(buf, sizeof(buf), "%.3g%s", scaled, suffix);
  return buf;
}

}  // namespace mrlr
