#pragma once
// Console table and CSV emission for the bench harness. Each Figure-1
// bench prints both a human-readable fixed-width table (the "paper table")
// and, optionally, machine-readable CSV for plotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mrlr {

/// A simple row/column table. All cells are strings; numeric helpers
/// format with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent `cell` calls fill it left to right.
  Table& row();
  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 3);
  Table& cell(std::uint64_t v);
  Table& cell(std::uint32_t v);
  Table& cell(std::int64_t v);
  Table& cell(int v);

  std::size_t num_rows() const { return rows_.size(); }

  /// Fixed-width, pipe-separated rendering with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting of embedded commas is needed because the
  /// harness never emits them; enforced by a check).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrlr
