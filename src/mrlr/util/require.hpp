#pragma once
// Lightweight precondition checking used throughout the library.
//
// MRLR_REQUIRE is for conditions that indicate API misuse (caller bugs);
// it is always on, independent of NDEBUG, because the library is used as a
// research harness where silent corruption would invalidate experiments.

#include <cstdio>
#include <cstdlib>

namespace mrlr::detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "mrlr: requirement failed: %s\n  at %s:%d\n  %s\n",
               cond, file, line, msg);
  std::abort();
}

}  // namespace mrlr::detail

#define MRLR_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mrlr::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

// MRLR_DEBUG_REQUIRE is MRLR_REQUIRE for preconditions on hot paths
// (per-word / per-edge inner loops): checked in debug and sanitizer
// builds, compiled out under NDEBUG so Release keeps full speed.
#ifndef NDEBUG
#define MRLR_DEBUG_REQUIRE(cond, msg) MRLR_REQUIRE(cond, msg)
#else
#define MRLR_DEBUG_REQUIRE(cond, msg) \
  do {                                \
  } while (false)
#endif
