#include "mrlr/util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "mrlr/util/require.hpp"

namespace mrlr {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64; guaranteed non-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  MRLR_REQUIRE(bound > 0, "uniform(0) is undefined");
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MRLR_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double lambda) {
  MRLR_REQUIRE(lambda > 0.0, "exponential rate must be positive");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the label into fresh seed material drawn from this stream.
  std::uint64_t seed = (*this)() ^ (label * 0xD1B54A32D192ED03ULL);
  return Rng(seed);
}

Rng Rng::stream(std::uint64_t label) const {
  // Hash the full current state with the label; no state advance.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 27) ^
                     rotl(s_[3], 41) ^ (label * 0xD1B54A32D192ED03ULL);
  return Rng(splitmix64_next(sm));
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  MRLR_REQUIRE(k <= n, "cannot sample more elements than the population");
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an explicit index array.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + uniform(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling into a hash set.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(k * 2));
  while (out.size() < k) {
    const std::uint64_t x = uniform(n);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

std::vector<std::uint64_t> Rng::permutation(std::uint64_t n) {
  std::vector<std::uint64_t> idx(n);
  for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace mrlr
