#include "mrlr/util/math.hpp"

#include <cmath>
#include <limits>

#include "mrlr/util/require.hpp"

namespace mrlr {

double harmonic(std::uint64_t k) {
  // Exact summation below a threshold; asymptotic expansion above it.
  if (k == 0) return 0.0;
  if (k <= 1u << 20) {
    double h = 0.0;
    for (std::uint64_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double kd = static_cast<double>(k);
  constexpr double kEulerMascheroni = 0.57721566490153286060651209;
  return std::log(kd) + kEulerMascheroni + 1.0 / (2.0 * kd) -
         1.0 / (12.0 * kd * kd);
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  MRLR_REQUIRE(b != 0, "ceil_div by zero");
  return a / b + (a % b != 0);
}

unsigned floor_log2(std::uint64_t x) {
  MRLR_REQUIRE(x >= 1, "floor_log2 requires x >= 1");
  return 63u - static_cast<unsigned>(__builtin_clzll(x));
}

unsigned ceil_log(std::uint64_t x, std::uint64_t base) {
  MRLR_REQUIRE(x >= 1 && base >= 2, "ceil_log requires x >= 1, base >= 2");
  unsigned levels = 0;
  std::uint64_t reach = 1;
  while (reach < x) {
    // Saturating multiply so enormous x cannot overflow reach.
    if (reach > std::numeric_limits<std::uint64_t>::max() / base) {
      return levels + 1;
    }
    reach *= base;
    ++levels;
  }
  return levels;
}

std::uint64_t ipow_real(std::uint64_t n, double exponent,
                        std::uint64_t min_value) {
  if (n == 0) return min_value;
  const double v = std::pow(static_cast<double>(n), exponent);
  if (!(v < 1.8e19)) {  // also catches NaN / inf
    return std::numeric_limits<std::uint64_t>::max();
  }
  const auto r = static_cast<std::uint64_t>(std::llround(v));
  return r < min_value ? min_value : r;
}

std::uint64_t ipow(std::uint64_t n, unsigned k) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < k; ++i) {
    if (n != 0 && r > std::numeric_limits<std::uint64_t>::max() / n) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    r *= n;
  }
  return r;
}

double density_exponent(std::uint64_t n, std::uint64_t m) {
  if (n < 2 || m == 0) return 0.0;
  const double c =
      std::log(static_cast<double>(m)) / std::log(static_cast<double>(n)) -
      1.0;
  return c > 0.0 ? c : 0.0;
}

}  // namespace mrlr
