#pragma once
// Small numeric helpers shared across modules.

#include <cstdint>

namespace mrlr {

/// Harmonic number H_k = sum_{i=1..k} 1/i; H_0 = 0.
double harmonic(std::uint64_t k);

/// ceil(a / b) for positive integers; b must be nonzero.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// floor(log2(x)) for x >= 1.
unsigned floor_log2(std::uint64_t x);

/// ceil(log_base(x)) for x >= 1 and integer base >= 2; returns the number
/// of levels a fanout-`base` broadcast tree needs to reach x leaves.
unsigned ceil_log(std::uint64_t x, std::uint64_t base);

/// n^e for real exponent e, rounded to the nearest integer and clamped to
/// at least `min_value`. Used for the paper's parameter expressions
/// (eta = n^{1+mu}, kappa = n^{(c-mu)/2}, group counts m^{alpha}, ...).
std::uint64_t ipow_real(std::uint64_t n, double exponent,
                        std::uint64_t min_value = 1);

/// Integer power n^k with saturation at uint64 max.
std::uint64_t ipow(std::uint64_t n, unsigned k);

/// The density exponent c such that m = n^{1+c}; returns 0 for n < 2.
double density_exponent(std::uint64_t n, std::uint64_t m);

}  // namespace mrlr
