#pragma once
// The splitmix64 finalizer, shared by every on-disk / on-wire checksum
// in the library (the .mgb container trailer and the shard-transport
// frame checksums use the same rolling construction: h = mix64(h ^ x)).
// Centralized so the formats provably agree on the mix and a future
// change cannot silently fork them.

#include <cstdint>

namespace mrlr {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace mrlr
