#pragma once
// Deterministic pseudo-random number generation.
//
// Every randomized component of the library takes an explicit 64-bit seed
// and derives all of its randomness from an Rng constructed from it, so a
// run is fully reproducible from (algorithm, instance, seed).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64,
// which is the standard recommended seeding procedure. Both are implemented
// from the public-domain reference algorithms.

#include <cstdint>
#include <vector>

namespace mrlr {

/// Advances a splitmix64 state and returns the next output. Used for
/// seeding and for cheap stateless hashing of (seed, index) pairs.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies std::uniform_random_bit_generator so it can be used with
/// standard <random> distributions, though the built-in helpers below are
/// preferred (they are deterministic across standard library versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 uniformly random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed double with rate lambda > 0.
  double exponential(double lambda);

  /// Derive an independent child generator; child streams for distinct
  /// labels are statistically independent of each other and the parent.
  /// Advances this generator's state (one draw), so successive forks
  /// with the same label still yield distinct children.
  Rng fork(std::uint64_t label);

  /// Like fork, but const: the child is a pure function of the current
  /// state and the label, and this generator does NOT advance. This is
  /// the per-machine derivation for parallel round callbacks — machines
  /// may call it concurrently and in any order, and every machine gets
  /// the same stream on every backend. Distinct labels are required for
  /// independent streams (same label => same stream).
  Rng stream(std::uint64_t label) const;

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) uniformly (k <= n), in
  /// O(k) expected time for k << n and O(n) worst case.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  /// A uniformly random permutation of [0, n).
  std::vector<std::uint64_t> permutation(std::uint64_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace mrlr
