#include "mrlr/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "mrlr/util/require.hpp"

namespace mrlr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MRLR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& s) {
  MRLR_REQUIRE(!rows_.empty(), "call row() before cell()");
  MRLR_REQUIRE(rows_.back().size() < headers_.size(), "too many cells in row");
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::uint32_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string{};
      os << ' ' << s;
      for (std::size_t i = s.size(); i < width[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      MRLR_REQUIRE(r[c].find(',') == std::string::npos,
                   "CSV cells must not contain commas");
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace mrlr
