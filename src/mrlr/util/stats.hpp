#pragma once
// Streaming statistics and simple summaries used by the bench harness and
// by tests that assert distributional properties (e.g. concentration of
// per-machine load).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mrlr {

/// Welford-style streaming accumulator: mean / variance / min / max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (q in [0,1], linear interpolation). The input is
/// copied; suitable for the modest sample sizes in the harness.
double percentile(std::vector<double> values, double q);

/// Fit an ordinary-least-squares line y = a + b*x and return (a, b, r2).
/// Used by benches to verify scaling shapes (e.g. rounds vs c/mu linear).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Human-readable "1234567 -> 1.23M"-style formatting for table output.
std::string format_si(double v);

}  // namespace mrlr
