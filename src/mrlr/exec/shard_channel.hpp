#pragma once
// Transport endpoints and the connection handshake for the shard frame
// protocol (shard_transport.hpp) — the layer that turns "a byte stream
// between coordinator and worker" from an inherited socketpair into
// something that can also be a TCP connection to another host.
//
// Pieces, bottom up:
//
//   * io_write_all / io_read_some — the one implementation of the
//     EINTR-retry and partial-write(2) continuation loops, shared by
//     FdChannel and TcpChannel. The raw read/write calls are injectable
//     so tests can force short writes and interrupted syscalls without
//     a cooperating kernel.
//
//   * TcpChannel / TcpListener / tcp_connect — a connected TCP stream
//     satisfying ShardChannel (writes use MSG_NOSIGNAL: a dead peer is
//     a typed kIo error, never SIGPIPE), a listening socket (port 0 =
//     kernel-assigned, for loopback tests), and a deadline-bounded
//     connect with retry/backoff on ECONNREFUSED so a coordinator can
//     start slightly before its workers without failing spuriously —
//     but still fails typed when the deadline passes, never hangs.
//
//   * Handshake — every channel (fork socketpair or TCP alike) opens
//     with a fixed 24-byte hello (magic, frame protocol version, shard
//     id, job nonce) answered by a fixed 24-byte ack (status + the
//     responder's own version), so version skew, a misrouted shard id,
//     or a duplicate registration is refused with a typed
//     TransportError naming both sides before any frame is trusted.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

#include "mrlr/exec/shard_transport.hpp"

namespace mrlr::exec {

// ------------------------------------------------- shared I/O loops --

/// Injectable raw syscall shapes (::write / ::read compatible).
using IoWriteFn = ::ssize_t (*)(int fd, const void* buf, std::size_t n);
using IoReadFn = ::ssize_t (*)(int fd, void* buf, std::size_t n);

/// Writes all `n` bytes to `fd` via `wfn`, retrying on EINTR and
/// continuing after partial writes. Throws TransportError(kIo) on any
/// other failure; `what` names the channel kind in the message.
void io_write_all(int fd, const std::byte* data, std::size_t n,
                  IoWriteFn wfn, const char* what);

/// Reads up to `n` bytes from `fd` via `rfn`, retrying on EINTR.
/// Returns the count read (0 = end of stream). EAGAIN/EWOULDBLOCK —
/// which only happen when a receive timeout is armed — throw
/// TransportError(kIo) naming the timeout; other failures throw
/// TransportError(kIo) with the errno text.
std::size_t io_read_some(int fd, std::byte* data, std::size_t n,
                         IoReadFn rfn, const char* what);

// ------------------------------------------------------------- TCP --

/// A `host:port` pair (host may be a hostname or numeric address).
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string str() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port[,host:port...]" (the --workers flag). A bare
/// "port" means 127.0.0.1. Throws std::invalid_argument on anything
/// malformed (empty entry, missing/unparsable port).
std::vector<Endpoint> parse_endpoints(std::string_view csv);

/// ShardChannel over a connected TCP socket. Owns the descriptor.
/// Writes use send(MSG_NOSIGNAL) so a vanished peer surfaces as a
/// typed TransportError(kIo) instead of SIGPIPE.
class TcpChannel final : public ShardChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;
  TcpChannel(TcpChannel&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }

  void write_all(const std::byte* data, std::size_t n) override;
  std::size_t read_some(std::byte* data, std::size_t n) override;
  void close_now() override;
  void set_read_timeout(std::chrono::milliseconds timeout) override;

  int fd() const { return fd_; }

 private:
  int fd_;
};

/// Listening TCP socket bound to `host:port` (SO_REUSEADDR; port 0 asks
/// the kernel for an ephemeral port, readable via port() — how loopback
/// tests avoid fixed-port collisions). Throws TransportError(kIo) if
/// the OS refuses.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }

  /// Blocks until a peer connects; returns the connected channel
  /// (TCP_NODELAY set — round-control frames are small and latency
  /// bound). Throws TransportError(kIo) on failure or a closed
  /// listener.
  TcpChannel accept_channel();

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }
  void close_now();

 private:
  int fd_;
  std::uint16_t port_;
};

/// Connects to `ep` within `timeout`: non-blocking connect with a poll
/// deadline, retrying with doubling backoff on ECONNREFUSED (a worker
/// that has not reached listen() yet). Throws TransportError(kIo)
/// naming the endpoint when the deadline passes — never blocks past it.
TcpChannel tcp_connect(const Endpoint& ep,
                       std::chrono::milliseconds timeout);

// ------------------------------------------------------- handshake --

inline constexpr std::uint32_t kHelloMagic = 0x484C524Du;  // "MRLH"
inline constexpr std::uint32_t kAckMagic = 0x414C524Du;    // "MRLA"

enum class HandshakeStatus : std::uint16_t {
  kOk = 0,
  kVersionMismatch = 1,  ///< peer speaks a different frame version
  kDuplicateShard = 2,   ///< (nonce, shard) was already registered here
  kRefused = 3,          ///< responder-specific refusal (message lost —
                         ///< the 24-byte ack is fixed-size by design)
};

/// The connector's side of the 24-byte hello: who is connecting (shard)
/// for which job (nonce), speaking which frame protocol version.
struct HandshakeHello {
  std::uint16_t version = kFrameVersion;
  std::uint32_t shard = 0;
  std::uint64_t nonce = 0;
};

/// Coordinator side: sends the hello for (shard, nonce), reads the ack,
/// and throws a typed TransportError unless the responder accepted —
/// kBadVersion names both versions on a version refusal, kUnexpected
/// names the shard on a duplicate-registration refusal, kBadMagic on a
/// peer that is not speaking this handshake at all.
void handshake_connect(ShardChannel& ch, std::uint32_t shard,
                       std::uint64_t nonce);

/// Worker side: reads the hello, refuses a version mismatch itself,
/// then consults `vet` (duplicate-shard policy and any additional
/// acceptance checks) and sends the ack. Returns the hello when
/// accepted; on any refusal the ack is sent first and then a typed
/// TransportError is thrown (the serving loop drops the connection).
HandshakeHello handshake_accept(
    ShardChannel& ch,
    const std::function<HandshakeStatus(const HandshakeHello&)>& vet);

}  // namespace mrlr::exec
