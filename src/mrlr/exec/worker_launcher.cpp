#include "mrlr/exec/worker_launcher.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include <unistd.h>

#include "mrlr/exec/shard_worker.hpp"

namespace mrlr::exec {

ForkLauncher::ForkLauncher(ShardJobPlane* plane, std::uint64_t num_machines)
    : plane_(plane), num_machines_(num_machines) {}

LaunchedWorker ForkLauncher::launch(std::uint32_t shard,
                                    std::uint64_t nonce) {
  auto [parent_end, child_end] = make_socketpair_channel();
  std::fflush(nullptr);  // no buffered stdio duplicated into workers
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    throw TransportError(TransportError::Kind::kIo,
                         "fork launcher: fork failed for shard " +
                             std::to_string(shard) + ": " +
                             std::strerror(err));
  }
  if (pid == 0) {
    // Worker: drop the coordinator ends we inherited — ours and every
    // earlier worker's — so a dead peer means EOF, not a silent
    // half-open channel held alive by an unrelated child.
    parent_end.close_now();
    for (const int fd : coordinator_fds_) ::close(fd);
    forked_worker_main(child_end, shard, nonce, plane_, num_machines_);
    // never returns
  }
  // Coordinator: child_end closes when it goes out of scope, which is
  // what turns a dead worker into EOF instead of a hang.
  coordinator_fds_.push_back(parent_end.fd());
  LaunchedWorker w;
  w.pid = pid;
  w.channel = std::make_unique<FdChannel>(std::move(parent_end));
  return w;
}

TcpLauncher::TcpLauncher(std::vector<Endpoint> endpoints,
                         std::chrono::milliseconds connect_timeout)
    : endpoints_(std::move(endpoints)), connect_timeout_(connect_timeout) {}

LaunchedWorker TcpLauncher::launch(std::uint32_t shard,
                                   std::uint64_t /*nonce*/) {
  // shard 0 is the coordinator; worker shards map to endpoints in order.
  const Endpoint& ep = endpoints_.at(shard - 1);
  LaunchedWorker w;
  w.pid = -1;
  w.channel =
      std::make_unique<TcpChannel>(tcp_connect(ep, connect_timeout_));
  return w;
}

namespace {
const ProcessBackendConfig* g_backend_config = nullptr;
}  // namespace

const ProcessBackendConfig* process_backend_config() {
  return g_backend_config;
}

ScopedProcessBackendConfig::ScopedProcessBackendConfig(
    ProcessBackendConfig config)
    : config_(std::move(config)), prev_(g_backend_config) {
  g_backend_config = &config_;
}

ScopedProcessBackendConfig::~ScopedProcessBackendConfig() {
  g_backend_config = prev_;
}

std::unique_ptr<WorkerLauncher> make_worker_launcher(
    ShardJobPlane* plane, std::uint64_t num_machines, unsigned shards) {
  const ProcessBackendConfig* cfg = process_backend_config();
  if (cfg != nullptr && !cfg->workers.empty()) {
    if (cfg->workers.size() + 1 < shards) {
      throw ExecError(
          "process-shard: the job needs " + std::to_string(shards - 1) +
          " workers but --workers lists only " +
          std::to_string(cfg->workers.size()) +
          " endpoints (shard 0 runs in the coordinator)");
    }
    return std::make_unique<TcpLauncher>(cfg->workers,
                                         cfg->connect_timeout);
  }
  return std::make_unique<ForkLauncher>(plane, num_machines);
}

}  // namespace mrlr::exec
