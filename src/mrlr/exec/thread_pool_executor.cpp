#include "mrlr/exec/thread_pool_executor.hpp"

#include <algorithm>

#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::exec {

ThreadPoolExecutor::ThreadPoolExecutor(unsigned num_threads) {
  MRLR_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPoolExecutor::run_chunks() {
  for (;;) {
    const std::uint64_t begin =
        cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= last_) break;
    const std::uint64_t end = std::min(begin + chunk_, last_);
    for (std::uint64_t m = begin; m < end; ++m) {
      try {
        (*fn_)(m);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        errors_.emplace_back(m, std::current_exception());
      }
    }
  }
}

void ThreadPoolExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_chunks();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPoolExecutor::run_machines(std::uint64_t first, std::uint64_t last,
                                      const MachineFn& fn) {
  if (first >= last) return;
  std::unique_lock<std::mutex> lk(mu_);
  MRLR_REQUIRE(pending_ == 0, "run_machines is not reentrant");
  fn_ = &fn;
  last_ = last;
  // Several chunks per worker so a skewed machine doesn't serialize the
  // round; single-machine chunks once ranges are small.
  chunk_ = std::max<std::uint64_t>(
      1, (last - first) / (4 * static_cast<std::uint64_t>(workers_.size())));
  cursor_.store(first, std::memory_order_relaxed);
  pending_ = static_cast<unsigned>(workers_.size());
  ++generation_;
  work_cv_.notify_all();
  // The coordinator's time at the round barrier: how long the calling
  // thread blocks while pool workers drain the chunk queue.
  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = tel.enabled();
  const std::uint64_t wait_start = telemetry ? tel.now_ns() : 0;
  done_cv_.wait(lk, [&] { return pending_ == 0; });
  if (telemetry) {
    tel.record_span(obs::Phase::kWorkerWait, wait_start, tel.now_ns());
    tel.add_counter("exec.machines_run", last - first);
  }
  fn_ = nullptr;
  if (!errors_.empty()) {
    auto lowest = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::exception_ptr ep = lowest->second;
    errors_.clear();
    std::rethrow_exception(ep);
  }
}

void run_shard_range(ThreadPoolExecutor* pool, std::uint64_t first,
                     std::uint64_t last, const Executor::MachineFn& fn,
                     std::exception_ptr& error,
                     std::uint64_t& error_machine) {
  if (pool == nullptr) {
    for (std::uint64_t m = first; m < last; ++m) {
      try {
        fn(m);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
          error_machine = m;
        }
      }
    }
    return;
  }
  // The wrapped callback swallows everything, so the pool's own
  // lowest-id rethrow never fires — the capture below keeps the machine
  // id, which the pool's exception_ptr contract would lose.
  std::mutex mu;
  std::uint64_t lowest = ~std::uint64_t{0};
  std::exception_ptr lowest_ep;
  pool->run_machines(first, last, [&](std::uint64_t m) {
    try {
      fn(m);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu);
      if (m < lowest) {
        lowest = m;
        lowest_ep = std::current_exception();
      }
    }
  });
  if (lowest_ep && !error) {
    error = lowest_ep;
    error_machine = lowest;
  }
}

}  // namespace mrlr::exec
