#include "mrlr/exec/serial_executor.hpp"

#include <exception>

#include "mrlr/obs/telemetry.hpp"

namespace mrlr::exec {

void SerialExecutor::run_machines(std::uint64_t first, std::uint64_t last,
                                  const MachineFn& fn) {
  // The engine's callback span already times this dispatch; the serial
  // backend's own contribution to the profile is just volume.
  if (last > first) obs::count("exec.machines_run", last - first);
  // Honor the Executor exception contract: every machine runs even if an
  // earlier one throws, and the lowest-id exception surfaces after the
  // barrier — ascending order makes the first capture the lowest id.
  // Engine and algorithm state thus stay identical to the thread-pool
  // backend even on the exceptional path.
  std::exception_ptr error;
  for (std::uint64_t m = first; m < last; ++m) {
    try {
      fn(m);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mrlr::exec
