#pragma once
// The threaded backend: a persistent worker pool that carves each
// [first, last) machine range into chunks claimed via an atomic cursor.
//
// Workers are spawned once and reused across every round of every
// algorithm run on the same engine, so the per-round cost is one
// notify/wait handshake rather than thread creation. Work-stealing is
// implicit in the shared cursor: a worker that finishes its chunk grabs
// the next one, which balances rounds whose per-machine cost is skewed
// (e.g. central-heavy rounds where machine 0 does all the work).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "mrlr/exec/executor.hpp"

namespace mrlr::exec {

class ThreadPoolExecutor final : public Executor {
 public:
  /// Spawns `num_threads` persistent workers (>= 1).
  explicit ThreadPoolExecutor(unsigned num_threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void run_machines(std::uint64_t first, std::uint64_t last,
                    const MachineFn& fn) override;
  std::string_view name() const override { return "thread-pool"; }
  unsigned num_threads() const override {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  // bumped once per run_machines batch
  unsigned pending_ = 0;          // workers still in the current batch

  // Current batch, valid while pending_ > 0.
  const MachineFn* fn_ = nullptr;
  std::uint64_t last_ = 0;
  std::uint64_t chunk_ = 1;
  std::atomic<std::uint64_t> cursor_{0};

  // Exceptions thrown by callbacks, keyed by machine id; the lowest id
  // is rethrown after the barrier so failures are deterministic.
  std::vector<std::pair<std::uint64_t, std::exception_ptr>> errors_;
};

/// Runs fn over [first, last) on `pool` when non-null, serially in
/// ascending id order otherwise — the shard-local execution primitive
/// shared by the process-shard coordinator (its shard-0 range) and the
/// worker round loop (serve_job_rounds). Unlike Executor::run_machines
/// this never throws: every machine runs, and the exception of the
/// lowest-id throwing machine is captured into (error, error_machine)
/// so the caller can attach the machine id to a status frame or a
/// ShardCallbackError. `error` is left untouched when already set
/// (callers chain ranges and keep the first failure).
void run_shard_range(ThreadPoolExecutor* pool, std::uint64_t first,
                     std::uint64_t last, const Executor::MachineFn& fn,
                     std::exception_ptr& error,
                     std::uint64_t& error_machine);

}  // namespace mrlr::exec
