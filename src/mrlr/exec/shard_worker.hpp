#pragma once
// The worker side of the process-shard backend, shared by both launch
// paths: a forked child and a TCP worker serve the exact same wire
// protocol from the exact same code.
//
// Job bootstrap (kJobSetup, sequence 0) — the explicit replacement for
// "fork inherits a COW snapshot". The coordinator ships everything a
// worker must agree on before serving rounds:
//
//   * the worker's machine range and the total machine count,
//   * the registered-round identity table (the label of every round,
//     in registration order) — a worker whose own registry differs in
//     count or in any label refuses the job typed instead of invoking
//     the wrong closure,
//   * the job nonce and flags (telemetry on/off; whether a job spec is
//     attached; whether a shard-local thread count follows),
//   * optionally the shard-local thread count: each worker runs its
//     machine range on a pool of that many threads (--threads composed
//     with --shards), staying byte-identical because the coordinator's
//     merge is id-ordered,
//   * optionally an opaque job spec (jobs/job_spec.hpp): algorithm
//     name, parameters, and the full serialized instance, from which a
//     worker started from nothing (`mrlr_cli worker`) re-runs the
//     driver deterministically and reconstructs the identical round
//     registry and captured state. Fork-launched workers inherit that
//     state, so their bootstrap ships without the spec — but they
//     still validate the same frames over the same channel.
//
// The worker answers with kBootstrapAck (ok flag + refusal text), so
// every bootstrap mismatch surfaces as a typed error on the
// coordinator before any round ships. After the ack, rounds are served
// by serve_job_rounds — the one round loop both worker kinds run.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mrlr/exec/executor.hpp"
#include "mrlr/exec/shard_transport.hpp"

namespace mrlr::exec {

// ------------------------------------------------------- bootstrap --

/// Flag bits of JobBootstrap::flags.
inline constexpr std::uint64_t kBootstrapCarriesSpec = 1ull << 0;
inline constexpr std::uint64_t kBootstrapTelemetry = 1ull << 1;
/// A per-shard thread count > 1 trails the encoding. The field is
/// gated behind this flag so a T=1 bootstrap is byte-identical to the
/// pre-composition wire format: an old worker handed a T>1 job refuses
/// it typed ("unknown flag bits"), and a new worker reading an old
/// coordinator's bootstrap defaults to serial.
inline constexpr std::uint64_t kBootstrapThreads = 1ull << 2;

struct JobBootstrap {
  std::uint64_t first = 0;     ///< worker machine range [first, last)
  std::uint64_t last = 0;
  std::uint64_t machines = 0;  ///< total machine count of the job
  std::uint64_t flags = 0;
  std::uint64_t nonce = 0;     ///< job identity (duplicate-shard policy)
  std::uint64_t threads = 1;   ///< shard-local pool size; on the wire
                               ///< only when kBootstrapThreads is set
  std::vector<std::string> round_labels;  ///< registration order
  std::vector<std::byte> job_spec;  ///< opaque jobs-layer payload;
                                    ///< meaningful iff
                                    ///< kBootstrapCarriesSpec is set
};

std::vector<std::byte> encode_bootstrap(const JobBootstrap& b);

/// Throws TransportError(kBadPayload) on anything malformed.
JobBootstrap decode_bootstrap(std::span<const std::byte> bytes);

/// Worker-side check of the bootstrap against the plane it will serve:
/// range sanity, machine count, and the full round-label table. Throws
/// TransportError(kUnexpected) naming the first mismatch.
void validate_bootstrap(const JobBootstrap& b, const ShardJobPlane& plane,
                        std::uint64_t num_machines);

/// Aligns the worker's telemetry recorder with the job's flag: enables
/// (and tags the shard) when the bootstrap says so, disables otherwise
/// — a TCP worker starts from nothing and a forked worker inherits the
/// coordinator's recorder, and after this call both behave identically.
void configure_worker_telemetry(const JobBootstrap& b, std::uint32_t shard);

/// Worker -> coordinator bootstrap verdict (kBootstrapAck, sequence 0).
void send_bootstrap_ack(ShardChannel& ch, std::uint32_t shard, bool ok,
                        std::string_view error);

/// Coordinator side: reads the ack and throws WorkerError(shard, 0)
/// carrying the worker's refusal text when the worker did not accept.
void expect_bootstrap_ack(ShardChannel& ch, std::uint32_t shard);

// ----------------------------------------------------- round serving --

/// Serves kRoundControl frames for [b.first, b.last) against `plane`
/// until a clean kJobTeardown (returns) — the shared loop behind both
/// worker kinds. When b.threads > 1 the range runs on a shard-local
/// ThreadPoolExecutor built here (after any fork, so the pool's threads
/// never cross a fork boundary); the engine's id-ordered merge on the
/// coordinator keeps results byte-identical either way. Callback
/// exceptions are reported per round via kShardStatus exactly as
/// before; protocol violations and I/O failures throw (TransportError),
/// which the caller turns into _exit (forked worker) or a dropped
/// connection (TCP worker).
void serve_job_rounds(ShardChannel& ch, std::uint32_t shard,
                      ShardJobPlane& plane, const JobBootstrap& b);

/// Forked-worker entry point: handshake, bootstrap against the
/// inherited plane, ack, serve, _exit. Never returns and never unwinds
/// into the coordinator's stack.
[[noreturn]] void forked_worker_main(FdChannel& ch, std::uint32_t shard,
                                     std::uint64_t nonce,
                                     ShardJobPlane* plane,
                                     std::uint64_t num_machines);

// ------------------------------------------------ TCP worker session --

/// Ambient state of a worker process that is replaying a job spec: the
/// connected channel and the decoded bootstrap. Installed by the jobs
/// serving loop before the driver runs; make_executor() consults it so
/// the driver's own Engine transparently gets a WorkerShardExecutor.
struct WorkerSession {
  ShardChannel* channel = nullptr;
  std::uint32_t shard = 0;
  JobBootstrap bootstrap;
  bool acked = false;   ///< bootstrap verdict sent
  bool served = false;  ///< rounds served to clean teardown
};

WorkerSession* active_worker_session();
void set_active_worker_session(WorkerSession* session);

/// Thrown out of the replayed driver when its job reached a clean
/// teardown. Deliberately not a std::exception: nothing between the
/// executor and the jobs serving loop may swallow it.
struct JobServed {};

/// The executor a replayed driver gets inside a TCP worker process:
/// pre-job rounds run serially (deterministic local replay of the
/// coordinator's preamble), and the first start_job validates the
/// session bootstrap, acks it, serves the round loop, and throws
/// JobServed to unwind the driver once the job tears down.
class WorkerShardExecutor final : public Executor {
 public:
  explicit WorkerShardExecutor(WorkerSession* session);

  void run_machines(std::uint64_t first, std::uint64_t last,
                    const MachineFn& fn) override;
  void run_machines_sharded(std::uint64_t first, std::uint64_t last,
                            const MachineFn& fn,
                            ShardDataPlane* data_plane) override;
  [[noreturn]] void start_job(std::uint64_t num_machines,
                              ShardJobPlane* plane) override;
  void run_job_round(std::uint64_t round_id,
                     std::span<const std::uint64_t> params,
                     std::uint64_t num_machines, const MachineFn& fn,
                     ShardJobPlane* plane) override;
  void end_job() override {}  // unwound via JobServed; nothing to tear down

  std::string_view name() const override { return "worker-shard"; }
  // Pre-job replay rounds run serially; the bootstrap's thread count
  // only governs the served job rounds, so it is what we report.
  unsigned num_threads() const override;

 private:
  WorkerSession* session_;
};

}  // namespace mrlr::exec
