#include "mrlr/exec/executor.hpp"

#include <algorithm>
#include <thread>

#include "mrlr/exec/process_shard_executor.hpp"
#include "mrlr/exec/serial_executor.hpp"
#include "mrlr/exec/shard_worker.hpp"
#include "mrlr/exec/thread_pool_executor.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::exec {

std::unique_ptr<Executor> make_executor(std::uint64_t num_threads) {
  return make_executor(num_threads, 1);
}

std::unique_ptr<Executor> make_executor(std::uint64_t num_threads,
                                        std::uint64_t num_shards) {
  if (WorkerSession* session = active_worker_session()) {
    // This process is a TCP worker replaying a shipped job spec: the
    // driver re-runs with the coordinator's exact parameters (including
    // num_shards > 1), but its engine must serve this worker's shard
    // over the session channel instead of launching workers of its own.
    return std::make_unique<WorkerShardExecutor>(session);
  }
  std::uint64_t n = num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  n = std::min<std::uint64_t>(n, 1024);
  if (num_shards > 1) {
    // The two knobs compose: K process shards, each running its machine
    // range on a shard-local pool of n threads. Pools are created after
    // the workers fork (ProcessShardExecutor / serve_job_rounds), so
    // the old fork-with-live-threads hazard never arises.
    return std::make_unique<ProcessShardExecutor>(
        static_cast<unsigned>(std::min<std::uint64_t>(num_shards, 256)),
        static_cast<unsigned>(n));
  }
  if (n == 1) return std::make_unique<SerialExecutor>();
  return std::make_unique<ThreadPoolExecutor>(static_cast<unsigned>(n));
}

}  // namespace mrlr::exec
