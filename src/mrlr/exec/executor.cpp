#include "mrlr/exec/executor.hpp"

#include <algorithm>
#include <thread>

#include "mrlr/exec/serial_executor.hpp"
#include "mrlr/exec/thread_pool_executor.hpp"

namespace mrlr::exec {

std::unique_ptr<Executor> make_executor(std::uint64_t num_threads) {
  std::uint64_t n = num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  if (n == 1) return std::make_unique<SerialExecutor>();
  return std::make_unique<ThreadPoolExecutor>(static_cast<unsigned>(
      std::min<std::uint64_t>(n, 1024)));
}

}  // namespace mrlr::exec
