#include "mrlr/exec/executor.hpp"

#include <algorithm>
#include <thread>

#include "mrlr/exec/process_shard_executor.hpp"
#include "mrlr/exec/serial_executor.hpp"
#include "mrlr/exec/shard_worker.hpp"
#include "mrlr/exec/thread_pool_executor.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::exec {

std::unique_ptr<Executor> make_executor(std::uint64_t num_threads) {
  return make_executor(num_threads, 1);
}

std::unique_ptr<Executor> make_executor(std::uint64_t num_threads,
                                        std::uint64_t num_shards) {
  if (WorkerSession* session = active_worker_session()) {
    // This process is a TCP worker replaying a shipped job spec: the
    // driver re-runs with the coordinator's exact parameters (including
    // num_shards > 1), but its engine must serve this worker's shard
    // over the session channel instead of launching workers of its own.
    return std::make_unique<WorkerShardExecutor>(session);
  }
  if (num_shards > 1) {
    // Shards fork persistent workers at job start; forking a process
    // that owns a live thread pool is not a combination we support, so
    // the two knobs are mutually exclusive for now.
    MRLR_REQUIRE(num_threads <= 1,
                 "process backend runs machines serially within each "
                 "shard; --shards and --threads do not compose");
    return std::make_unique<ProcessShardExecutor>(
        static_cast<unsigned>(std::min<std::uint64_t>(num_shards, 256)));
  }
  std::uint64_t n = num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  if (n == 1) return std::make_unique<SerialExecutor>();
  return std::make_unique<ThreadPoolExecutor>(static_cast<unsigned>(
      std::min<std::uint64_t>(n, 1024)));
}

}  // namespace mrlr::exec
