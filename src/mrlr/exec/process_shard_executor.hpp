#pragma once
// The process-sharded backend: machines are partitioned into K
// contiguous shards; shard 0 runs in the calling (coordinator) process
// and each other shard runs in a worker process forked for the round.
// After a worker finishes its machines it serializes their staged
// flat-buffer arenas and accounting through the engine's ShardDataPlane
// and ships the bytes to the coordinator over a socketpair using the
// checksummed frame protocol in shard_transport.hpp; the coordinator
// applies each shard's bytes and the engine's ordinary id-ordered merge
// then runs over the combined frame indexes — traces, metrics, and
// delivery order stay byte-identical to SerialExecutor.
//
// Execution model and its contract:
//
//   * Workers are forked per round, so they inherit a copy-on-write
//     snapshot of the whole process at the round barrier: callbacks may
//     READ any host state (graphs, parameter tables, per-machine state
//     vectors). WRITES outside the engine are another matter — a worker
//     dies at the end of the round, so host-memory writes by machines
//     of shards >= 1 do not propagate. Everything a machine wants to
//     persist must flow through the engine (sends, charge_resident).
//     Machines of shard 0 — including the central machine, the paper's
//     "blue lines" — run in the coordinator, so central-resident
//     algorithm state keeps working unchanged.
//
//   * A driver is "process-clean" when its callbacks obey that rule.
//     The engine-level determinism suite and rlr_matching are; drivers
//     still using cross-machine host side channels must keep the
//     serial/thread backends (see README "Execution backends").
//
//   * Failure is loud, never a hang: a worker that exits early, is
//     killed, or ships malformed bytes surfaces as a typed WorkerError
//     or TransportError naming the shard and round; a callback that
//     throws inside a worker is rethrown in the coordinator as
//     ShardCallbackError after the barrier (lowest machine id wins,
//     matching the Executor contract).
//
// Without a data plane (plain run_machines) there is nothing to
// exchange, so machines run serially in the coordinator — the backend
// degenerates to SerialExecutor semantics.

#include <cstdint>

#include "mrlr/exec/executor.hpp"

namespace mrlr::exec {

class ProcessShardExecutor final : public Executor {
 public:
  /// Backend with `num_shards` >= 1 shards (clamped to 256: beyond
  /// that, per-round fork cost dwarfs any win on one host).
  explicit ProcessShardExecutor(unsigned num_shards);

  void run_machines(std::uint64_t first, std::uint64_t last,
                    const MachineFn& fn) override;
  void run_machines_sharded(std::uint64_t first, std::uint64_t last,
                            const MachineFn& fn,
                            ShardDataPlane* data_plane) override;

  std::string_view name() const override { return "process-shard"; }
  unsigned num_threads() const override { return 1; }
  unsigned num_shards() const { return num_shards_; }

  /// Rounds executed so far (the sequence number stamped on frames and
  /// reported by WorkerError / ShardCallbackError).
  std::uint64_t rounds_run() const { return round_seq_; }

 private:
  unsigned num_shards_;
  std::uint64_t round_seq_ = 0;
};

}  // namespace mrlr::exec
