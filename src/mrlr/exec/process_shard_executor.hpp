#pragma once
// The process-sharded backend: machines are partitioned into K
// contiguous shards; shard 0 runs in the calling (coordinator) process
// and each other shard runs in a persistent worker process spawned once
// at job start (Executor::start_job) and torn down at job end — not
// forked per round. With num_threads T > 1 every shard additionally
// runs its machine range on a shard-local ThreadPoolExecutor (K x T
// concurrent callbacks job-wide), with output still byte-identical to
// serial — docs/ARCHITECTURE.md covers why the composition is sound.
//
// Execution model and its contract:
//
//   * Workers launch at start_job, after the driver has registered
//     every round with the engine, through a WorkerLauncher
//     (worker_launcher.hpp): forked local children (the default) or TCP
//     connections to pre-started remote workers (--workers). Either
//     way, the channel opens with an explicit handshake (version, shard
//     id, job nonce) and a kJobSetup bootstrap carrying the worker's
//     machine range, the registered-round label table, and — on the TCP
//     path — the full job spec, which the worker validates and
//     acknowledges before any round ships. Nothing crosses the process
//     boundary implicitly —
//     each round the coordinator ships a kRoundControl frame carrying
//     the round id, the invoke parameters, and the serialized inboxes
//     of the worker's machine range (ShardJobPlane::
//     serialize_round_input), the worker runs its machines against its
//     own resident copy of that range's state, and ships the staged
//     arenas back through serialize_machines exactly as before. The
//     coordinator applies each shard's bytes and the engine's ordinary
//     id-ordered merge runs over the combined frame indexes — traces,
//     metrics, and delivery order stay byte-identical to
//     SerialExecutor.
//
//   * A driver is "process-clean" when its non-central callbacks touch
//     only (a) job-immutable data captured before start_job, (b)
//     per-machine state that only that machine's own callbacks mutate
//     (worker-resident between rounds), (c) invoke parameters and inbox
//     messages. Machines of shard 0 — including the central machine,
//     the paper's "blue lines" — run in the coordinator, so
//     central-resident algorithm state keeps working unchanged. All
//     drivers in the tree are ported (see README "Execution
//     backends"); ad-hoc run_round closures cannot run under this
//     backend with K > 1 and fail with a typed ExecError.
//
//   * Failure is loud, never a hang: a worker that exits early, is
//     killed, or ships malformed bytes surfaces as a typed WorkerError
//     or TransportError naming the shard and round, the job is marked
//     failed, and every further round refuses to run (no mid-job
//     reconnect — a respawned worker could not reconstruct the dead
//     worker's resident state). A callback that throws inside a worker
//     is rethrown in the coordinator as ShardCallbackError after the
//     barrier (lowest machine id wins, matching the Executor
//     contract).
//
// Without a data plane (plain run_machines, central-only rounds) there
// is nothing to exchange, so machines run serially in the coordinator —
// the backend degenerates to SerialExecutor semantics.

#include <cstdint>
#include <memory>
#include <vector>

#include <sys/types.h>

#include "mrlr/exec/executor.hpp"
#include "mrlr/exec/shard_transport.hpp"

namespace mrlr::exec {

class ThreadPoolExecutor;

class ProcessShardExecutor final : public Executor {
 public:
  /// Backend with `num_shards` >= 1 shards (clamped to 256: beyond
  /// that, worker-spawn and per-round shipping cost dwarfs any win on
  /// one host). `num_threads` (>= 1, clamped to 1024) is the
  /// shard-local pool size: every shard — the coordinator's own shard 0
  /// and each worker — runs its machine range on that many threads, so
  /// the job computes on up to K x T threads while staying
  /// byte-identical (the engine's merge is id-ordered). Pools are built
  /// strictly after the workers fork and torn down at end_job, so no
  /// live pool thread ever crosses a fork boundary.
  explicit ProcessShardExecutor(unsigned num_shards,
                                unsigned num_threads = 1);
  ~ProcessShardExecutor() override;

  void run_machines(std::uint64_t first, std::uint64_t last,
                    const MachineFn& fn) override;

  /// Ad-hoc sharded rounds are not supported by persistent workers
  /// (there is no way to ship an arbitrary closure to a long-lived
  /// process): with a data plane and K > 1 this throws ExecError.
  /// Without a data plane it degenerates to serial.
  void run_machines_sharded(std::uint64_t first, std::uint64_t last,
                            const MachineFn& fn,
                            ShardDataPlane* data_plane) override;

  void start_job(std::uint64_t num_machines, ShardJobPlane* plane) override;
  void run_job_round(std::uint64_t round_id,
                     std::span<const std::uint64_t> params,
                     std::uint64_t num_machines, const MachineFn& fn,
                     ShardJobPlane* plane) override;
  void end_job() override;

  std::string_view name() const override { return "process-shard"; }
  unsigned num_threads() const override { return num_threads_; }
  unsigned num_shards() const { return num_shards_; }

  /// Rounds executed so far (the sequence number stamped on frames and
  /// reported by WorkerError / ShardCallbackError).
  std::uint64_t rounds_run() const { return round_seq_; }

 private:
  struct Worker {
    pid_t pid;  // -1 for remote workers (not ours to reap)
    std::unique_ptr<ShardChannel> channel;  // coordinator end
    std::uint32_t shard;
    std::uint64_t first, last;
  };

  /// Marks the job failed, closes every channel (so a worker stuck
  /// writing dies with EPIPE instead of blocking waitpid), reaps every
  /// worker, and throws WorkerError naming `shard` with the failed
  /// worker's exit description appended.
  [[noreturn]] void fail_job(std::uint32_t shard, std::uint64_t sequence,
                             const std::string& what);

  unsigned num_shards_;
  unsigned num_threads_;
  std::uint64_t round_seq_ = 0;

  // Persistent-job state.
  std::vector<Worker> workers_;
  // Shard 0's own pool (num_threads_ > 1 only); created at start_job
  // after every worker has forked and reset at end_job so the next
  // job's forks see no live threads.
  std::unique_ptr<ThreadPoolExecutor> local_pool_;
  std::pair<std::uint64_t, std::uint64_t> local_range_{0, 0};
  bool job_active_ = false;
  bool job_failed_ = false;
  std::uint32_t failed_shard_ = 0;
  // Telemetry enablement captured at spawn: workers inherit the flag at
  // fork, so the frame protocol (telemetry frame present or not) is
  // decided once per job and both ends always agree, even if the
  // coordinator's recorder is toggled mid-job.
  bool job_telemetry_ = false;
};

}  // namespace mrlr::exec
