#include "mrlr/exec/shard_channel.hpp"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace mrlr::exec {

namespace {

[[noreturn]] void io_fail(const char* what, const char* op, int err) {
  throw TransportError(TransportError::Kind::kIo,
                       std::string(what) + ": " + op +
                           " failed: " + std::strerror(err));
}

// MSG_NOSIGNAL: a peer that died mid-job must surface as a typed kIo
// (EPIPE) on the next write, not kill the coordinator with SIGPIPE.
::ssize_t send_nosignal(int fd, const void* buf, std::size_t n) {
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

::ssize_t recv_plain(int fd, void* buf, std::size_t n) {
  return ::recv(fd, buf, n, 0);
}

int make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) io_fail("tcp channel", "socket", errno);
  return fd;
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: NODELAY is a latency optimization for the small
  // round-control frames, not a correctness requirement.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Numeric-or-named host resolution for one IPv4 endpoint.
sockaddr_in resolve_ipv4(const Endpoint& ep, const char* what) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw TransportError(TransportError::Kind::kIo,
                         std::string(what) + ": cannot resolve " +
                             ep.str() + ": " + ::gai_strerror(rc));
  }
  sockaddr_in addr{};
  std::memcpy(&addr, res->ai_addr,
              std::min(sizeof(addr), static_cast<std::size_t>(res->ai_addrlen)));
  ::freeaddrinfo(res);
  return addr;
}

// 24-byte hello/ack blobs, assembled field by field (no struct padding
// on the wire). Layouts:
//   hello: u32 magic "MRLH", u16 version, u16 reserved, u32 shard,
//          u32 reserved, u64 nonce
//   ack:   u32 magic "MRLA", u16 version (responder's own), u16 status,
//          u32 shard echo, u32 reserved, u64 nonce echo
constexpr std::size_t kHandshakeBytes = 24;

void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void send_ack(ShardChannel& ch, HandshakeStatus status, std::uint32_t shard,
              std::uint64_t nonce) {
  std::byte ack[kHandshakeBytes];
  put_u32(ack + 0, kAckMagic);
  put_u16(ack + 4, kFrameVersion);
  put_u16(ack + 6, static_cast<std::uint16_t>(status));
  put_u32(ack + 8, shard);
  put_u32(ack + 12, 0);
  put_u64(ack + 16, nonce);
  ch.write_all(ack, kHandshakeBytes);
}

}  // namespace

void io_write_all(int fd, const std::byte* data, std::size_t n,
                  IoWriteFn wfn, const char* what) {
  std::size_t sent = 0;
  while (sent < n) {
    const ::ssize_t r = wfn(fd, data + sent, n - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      io_fail(what, "write", errno);
    }
    if (r == 0) {
      // A stream write that makes no progress without an error would
      // spin forever; treat it as the peer being gone.
      throw TransportError(TransportError::Kind::kIo,
                           std::string(what) +
                               ": write made no progress (peer closed?)");
    }
    sent += static_cast<std::size_t>(r);
  }
}

std::size_t io_read_some(int fd, std::byte* data, std::size_t n,
                         IoReadFn rfn, const char* what) {
  while (true) {
    const ::ssize_t r = rfn(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TransportError(TransportError::Kind::kIo,
                             std::string(what) +
                                 ": read timed out waiting for the peer");
      }
      io_fail(what, "read", errno);
    }
    return static_cast<std::size_t>(r);
  }
}

// ------------------------------------------------------------- TCP --

std::vector<Endpoint> parse_endpoints(std::string_view csv) {
  std::vector<Endpoint> out;
  std::size_t at = 0;
  while (at <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', at), csv.size());
    const std::string_view entry = csv.substr(at, comma - at);
    at = comma + 1;
    if (entry.empty()) {
      throw std::invalid_argument(
          "--workers: empty endpoint in the host:port list");
    }
    Endpoint ep;
    const std::size_t colon = entry.rfind(':');
    std::string_view port_sv;
    if (colon == std::string_view::npos) {
      ep.host = "127.0.0.1";
      port_sv = entry;
    } else {
      ep.host = std::string(entry.substr(0, colon));
      port_sv = entry.substr(colon + 1);
    }
    unsigned port = 0;
    const auto [ptr, ec] =
        std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), port);
    if (ec != std::errc{} || ptr != port_sv.data() + port_sv.size() ||
        port == 0 || port > 65535 || ep.host.empty()) {
      throw std::invalid_argument("--workers: malformed endpoint '" +
                                  std::string(entry) +
                                  "' (expected host:port)");
    }
    ep.port = static_cast<std::uint16_t>(port);
    out.push_back(std::move(ep));
    if (comma == csv.size()) break;
  }
  return out;
}

TcpChannel::~TcpChannel() { close_now(); }

void TcpChannel::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpChannel::write_all(const std::byte* data, std::size_t n) {
  io_write_all(fd_, data, n, &send_nosignal, "tcp channel");
}

std::size_t TcpChannel::read_some(std::byte* data, std::size_t n) {
  return io_read_some(fd_, data, n, &recv_plain, "tcp channel");
}

void TcpChannel::set_read_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    io_fail("tcp channel", "setsockopt(SO_RCVTIMEO)", errno);
  }
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port)
    : fd_(-1), port_(port) {
  const sockaddr_in addr = resolve_ipv4(Endpoint{host, port}, "tcp listener");
  fd_ = make_tcp_socket();
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in bound = addr;
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&bound),
             sizeof(bound)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    io_fail("tcp listener", "bind", err);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    io_fail("tcp listener", "listen", err);
  }
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    io_fail("tcp listener", "getsockname", err);
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close_now(); }

void TcpListener::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpChannel TcpListener::accept_channel() {
  if (fd_ < 0) {
    throw TransportError(TransportError::Kind::kIo,
                         "tcp listener: accept on a closed listener");
  }
  while (true) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      io_fail("tcp listener", "accept", errno);
    }
    set_nodelay(fd);
    return TcpChannel(fd);
  }
}

TcpChannel tcp_connect(const Endpoint& ep,
                       std::chrono::milliseconds timeout) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + timeout;
  const sockaddr_in addr = resolve_ipv4(ep, "tcp connect");
  auto backoff = std::chrono::milliseconds(5);
  std::string last_error = "timed out";
  while (true) {
    const int fd = make_tcp_socket();
    // SO_SNDTIMEO bounds the blocking connect itself, and the deadline
    // bounds the whole attempt loop: a silent endpoint can never hang
    // us.
    sockaddr_in target = addr;
    timeval tv{};
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() > 0) {
      tv.tv_sec = static_cast<time_t>(remaining.count() / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((remaining.count() % 1000) * 1000);
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&target),
                  sizeof(target)) == 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    const int err = errno;
    ::close(fd);
    if (err == ECONNREFUSED || err == EINPROGRESS || err == EAGAIN ||
        err == EWOULDBLOCK || err == ETIMEDOUT || err == EINTR) {
      last_error = std::strerror(err);
    } else {
      io_fail("tcp connect", ("connect to " + ep.str()).c_str(), err);
    }
    if (Clock::now() + backoff >= deadline) {
      throw TransportError(
          TransportError::Kind::kIo,
          "tcp connect: connecting to " + ep.str() + " timed out after " +
              std::to_string(timeout.count()) + "ms (last error: " +
              last_error + ")");
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

// ------------------------------------------------------- handshake --

void handshake_connect(ShardChannel& ch, std::uint32_t shard,
                       std::uint64_t nonce) {
  std::byte hello[kHandshakeBytes];
  put_u32(hello + 0, kHelloMagic);
  put_u16(hello + 4, kFrameVersion);
  put_u16(hello + 6, 0);
  put_u32(hello + 8, shard);
  put_u32(hello + 12, 0);
  put_u64(hello + 16, nonce);
  ch.write_all(hello, kHandshakeBytes);

  std::byte ack[kHandshakeBytes];
  read_exact(ch, ack, kHandshakeBytes, "handshake ack");
  if (get_u32(ack + 0) != kAckMagic) {
    throw TransportError(TransportError::Kind::kBadMagic,
                         "handshake: peer did not answer with a shard "
                         "handshake ack (wrong endpoint?)");
  }
  const std::uint16_t peer_version = get_u16(ack + 4);
  const auto status = static_cast<HandshakeStatus>(get_u16(ack + 6));
  switch (status) {
    case HandshakeStatus::kOk:
      break;
    case HandshakeStatus::kVersionMismatch:
      throw TransportError(
          TransportError::Kind::kBadVersion,
          "handshake: refused — peer speaks frame protocol version " +
              std::to_string(peer_version) + ", this build speaks version " +
              std::to_string(kFrameVersion));
    case HandshakeStatus::kDuplicateShard:
      throw TransportError(
          TransportError::Kind::kUnexpected,
          "handshake: refused — shard " + std::to_string(shard) +
              " is already registered with this worker for this job "
              "(reconnecting after a drop cannot restore the lost "
              "resident state; restart the job)");
    case HandshakeStatus::kRefused:
      throw TransportError(TransportError::Kind::kUnexpected,
                           "handshake: refused by the worker");
  }
  if (get_u32(ack + 8) != shard || get_u64(ack + 16) != nonce) {
    throw TransportError(TransportError::Kind::kUnexpected,
                         "handshake: ack echoes a different shard/nonce "
                         "(crossed connections?)");
  }
  if (peer_version != kFrameVersion) {
    // An "ok" from a different version would still be unsafe to trust.
    throw TransportError(
        TransportError::Kind::kBadVersion,
        "handshake: peer accepted but speaks frame protocol version " +
            std::to_string(peer_version) + ", this build speaks version " +
            std::to_string(kFrameVersion));
  }
}

HandshakeHello handshake_accept(
    ShardChannel& ch,
    const std::function<HandshakeStatus(const HandshakeHello&)>& vet) {
  std::byte hello[kHandshakeBytes];
  read_exact(ch, hello, kHandshakeBytes, "handshake hello");
  if (get_u32(hello + 0) != kHelloMagic) {
    throw TransportError(TransportError::Kind::kBadMagic,
                         "handshake: peer did not open with a shard "
                         "handshake hello (wrong endpoint?)");
  }
  HandshakeHello h;
  h.version = get_u16(hello + 4);
  h.shard = get_u32(hello + 8);
  h.nonce = get_u64(hello + 16);
  if (h.version != kFrameVersion) {
    send_ack(ch, HandshakeStatus::kVersionMismatch, h.shard, h.nonce);
    throw TransportError(
        TransportError::Kind::kBadVersion,
        "handshake: refused — peer speaks frame protocol version " +
            std::to_string(h.version) + ", this build speaks version " +
            std::to_string(kFrameVersion));
  }
  const HandshakeStatus status = vet ? vet(h) : HandshakeStatus::kOk;
  send_ack(ch, status, h.shard, h.nonce);
  if (status != HandshakeStatus::kOk) {
    throw TransportError(
        TransportError::Kind::kUnexpected,
        status == HandshakeStatus::kDuplicateShard
            ? "handshake: refused — shard " + std::to_string(h.shard) +
                  " already registered for job nonce " +
                  std::to_string(h.nonce)
            : "handshake: connection refused by the acceptance policy");
  }
  return h;
}

}  // namespace mrlr::exec
