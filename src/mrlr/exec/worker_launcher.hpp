#pragma once
// How the process-shard coordinator obtains its workers — the one seam
// between "fork a local child" and "connect to a worker on another
// host". Both launch modes hand back a connected ShardChannel and from
// that point on are indistinguishable: the same handshake, the same
// kJobSetup bootstrap, the same round protocol.
//
//   * ForkLauncher — today's local mode. Forks a child per worker shard
//     (shards 1..K-1 — shard 0 stays in the coordinator) over a
//     socketpair; the child serves forked_worker_main against the job
//     plane it inherited at fork. It still receives and validates the
//     full wire bootstrap (minus the job spec — its state arrived via
//     fork), so the fork path exercises the exact code path a remote
//     worker does.
//
//   * TcpLauncher — multi-host mode. Connects to pre-started worker
//     processes (`mrlr_cli worker --listen`) at the configured
//     endpoints, one per worker shard (a K-shard job needs K-1
//     endpoints), with a bounded connect timeout and
//     refused-connection backoff. The bootstrap ships the full job spec
//     so the worker reconstructs everything from the wire.
//
// Mode selection is ambient (ProcessBackendConfig): drivers build their
// executors deep inside algorithm code via make_executor(threads,
// shards) and cannot thread a launcher argument through, so the CLI /
// tests install a scoped config and every ProcessShardExecutor built
// under it uses the TCP launcher.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include <sys/types.h>

#include "mrlr/exec/shard_channel.hpp"

namespace mrlr::exec {

class ShardJobPlane;

/// One launched worker: a connected channel, plus the child pid when
/// the worker is a local fork (-1 for remote workers — they are not
/// ours to reap).
struct LaunchedWorker {
  pid_t pid = -1;
  std::unique_ptr<ShardChannel> channel;
};

class WorkerLauncher {
 public:
  virtual ~WorkerLauncher() = default;

  /// Produces the connected worker for `shard` (>= 1; shard 0 is the
  /// coordinator itself). Throws TransportError on failure — typed,
  /// within the timeout, never a hang.
  virtual LaunchedWorker launch(std::uint32_t shard,
                                std::uint64_t nonce) = 0;

  /// Whether launched workers start from nothing and need the job spec
  /// shipped in the bootstrap (TCP), or inherited the job state at fork
  /// and only need the validation fields (fork).
  virtual bool ships_job_state() const = 0;

  /// Bound on how long the coordinator may wait for this launcher's
  /// workers during handshake and bootstrap ack.
  virtual std::chrono::milliseconds bootstrap_timeout() const = 0;

  virtual std::string_view name() const = 0;
};

/// Forks a local child per worker shard (K-1 children for K shards)
/// over a socketpair.
class ForkLauncher final : public WorkerLauncher {
 public:
  ForkLauncher(ShardJobPlane* plane, std::uint64_t num_machines);

  LaunchedWorker launch(std::uint32_t shard, std::uint64_t nonce) override;
  bool ships_job_state() const override { return false; }
  std::chrono::milliseconds bootstrap_timeout() const override {
    // Local children answer the bootstrap immediately; worker death
    // already surfaces as EOF on the socketpair, so no read timeout is
    // armed on the fork path (0 = wait for EOF).
    return std::chrono::milliseconds(0);
  }
  std::string_view name() const override { return "fork"; }

 private:
  ShardJobPlane* plane_;
  std::uint64_t num_machines_;
  std::vector<int> coordinator_fds_;  ///< parent ends handed out so far;
                                      ///< each new child closes them all
};

/// Connects to pre-started workers at fixed endpoints: shard s uses
/// endpoints[s - 1].
class TcpLauncher final : public WorkerLauncher {
 public:
  TcpLauncher(std::vector<Endpoint> endpoints,
              std::chrono::milliseconds connect_timeout);

  LaunchedWorker launch(std::uint32_t shard, std::uint64_t nonce) override;
  bool ships_job_state() const override { return true; }
  std::chrono::milliseconds bootstrap_timeout() const override {
    return connect_timeout_;
  }
  std::string_view name() const override { return "tcp"; }

 private:
  std::vector<Endpoint> endpoints_;
  std::chrono::milliseconds connect_timeout_;
};

// ------------------------------------------------- backend selection --

/// Ambient configuration of the process backend, installed by the CLI
/// (--workers) or tests. With a non-empty worker list every
/// ProcessShardExecutor job launches over TCP; otherwise it forks.
struct ProcessBackendConfig {
  std::vector<Endpoint> workers;
  std::chrono::milliseconds connect_timeout{10000};
  /// Opaque jobs-layer spec shipped in the bootstrap when the launcher
  /// ships job state (empty = the coordinator has nothing to ship and
  /// TCP workers will refuse the job).
  std::vector<std::byte> job_spec;
};

/// The active config, or nullptr (fork mode).
const ProcessBackendConfig* process_backend_config();

/// Installs `config` for the current scope, restoring the previous one
/// on destruction (configs nest; tests rely on that).
class ScopedProcessBackendConfig {
 public:
  explicit ScopedProcessBackendConfig(ProcessBackendConfig config);
  ~ScopedProcessBackendConfig();

  ScopedProcessBackendConfig(const ScopedProcessBackendConfig&) = delete;
  ScopedProcessBackendConfig& operator=(const ScopedProcessBackendConfig&) =
      delete;

 private:
  ProcessBackendConfig config_;
  const ProcessBackendConfig* prev_;
};

/// Picks the launcher for a job of `shards` shards (including the
/// coordinator's own shard 0): TCP when a config with workers is
/// installed — throwing ExecError if it lists fewer than shards - 1
/// endpoints — else fork.
std::unique_ptr<WorkerLauncher> make_worker_launcher(
    ShardJobPlane* plane, std::uint64_t num_machines, unsigned shards);

}  // namespace mrlr::exec
