#include "mrlr/exec/shard_worker.hpp"

#include "mrlr/exec/shard_channel.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include <unistd.h>

#include "mrlr/exec/thread_pool_executor.hpp"
#include "mrlr/obs/telemetry.hpp"

namespace mrlr::exec {

namespace {

// Worker exit codes (shared with process_shard_executor's reaper).
constexpr int kWorkerOk = 0;
constexpr int kWorkerTransportFailed = 113;

[[noreturn]] void bad_bootstrap(const std::string& what) {
  throw TransportError(TransportError::Kind::kBadPayload,
                       "job bootstrap: " + what);
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t n) {
  if (n == 0) return;
  const auto at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, data, n);
}

}  // namespace

std::vector<std::byte> encode_bootstrap(const JobBootstrap& b) {
  std::vector<std::byte> out;
  // The thread count trails the spec and rides behind its own flag bit
  // so serial jobs keep the exact pre-composition encoding (see
  // kBootstrapThreads in the header for the compat story).
  std::uint64_t flags = b.flags & ~kBootstrapThreads;
  if (b.threads > 1) flags |= kBootstrapThreads;
  append_u64(out, b.first);
  append_u64(out, b.last);
  append_u64(out, b.machines);
  append_u64(out, flags);
  append_u64(out, b.nonce);
  append_u64(out, b.round_labels.size());
  for (const std::string& label : b.round_labels) {
    append_u64(out, label.size());
    append_bytes(out, label.data(), label.size());
  }
  append_u64(out, b.job_spec.size());
  append_bytes(out, b.job_spec.data(), b.job_spec.size());
  if (b.threads > 1) append_u64(out, b.threads);
  return out;
}

JobBootstrap decode_bootstrap(std::span<const std::byte> bytes) {
  std::size_t at = 0;
  const auto need = [&](std::size_t n, const char* what) {
    if (bytes.size() - at < n || at > bytes.size()) {
      bad_bootstrap(std::string("truncated inside ") + what);
    }
  };
  const auto take_u64 = [&](const char* what) {
    need(8, what);
    const std::uint64_t v = read_u64(bytes, at);
    at += 8;
    return v;
  };

  JobBootstrap b;
  b.first = take_u64("machine range");
  b.last = take_u64("machine range");
  b.machines = take_u64("machine count");
  b.flags = take_u64("flags");
  b.nonce = take_u64("nonce");
  constexpr std::uint64_t kKnownFlags =
      kBootstrapCarriesSpec | kBootstrapTelemetry | kBootstrapThreads;
  if ((b.flags & ~kKnownFlags) != 0) {
    bad_bootstrap("unknown flag bits 0x" +
                  std::to_string(b.flags & ~kKnownFlags));
  }
  if (b.first > b.last || b.last > b.machines) {
    bad_bootstrap("machine range [" + std::to_string(b.first) + ", " +
                  std::to_string(b.last) + ") escapes the job's " +
                  std::to_string(b.machines) + " machines");
  }

  const std::uint64_t label_count = take_u64("round-label count");
  // Each label costs at least its 8-byte length prefix; this bound makes
  // a corrupt count fail here instead of driving a giant reserve.
  if (label_count > (bytes.size() - at) / 8) {
    bad_bootstrap("round-label count " + std::to_string(label_count) +
                  " exceeds the remaining payload");
  }
  b.round_labels.reserve(label_count);
  for (std::uint64_t i = 0; i < label_count; ++i) {
    const std::uint64_t len = take_u64("round label");
    need(len, "round label");
    b.round_labels.emplace_back(
        reinterpret_cast<const char*>(bytes.data() + at), len);
    at += len;
  }

  const std::uint64_t spec_len = take_u64("job spec");
  need(spec_len, "job spec");
  b.job_spec.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                    bytes.begin() + static_cast<std::ptrdiff_t>(at + spec_len));
  at += spec_len;
  if ((b.flags & kBootstrapThreads) != 0) {
    b.threads = take_u64("thread count");
    if (b.threads < 2) {
      bad_bootstrap("thread count " + std::to_string(b.threads) +
                    " under the threads flag (serial jobs omit the "
                    "field)");
    }
    if (b.threads > 1024) {
      bad_bootstrap("thread count " + std::to_string(b.threads) +
                    " exceeds the 1024-thread cap");
    }
  }
  if (at != bytes.size()) {
    bad_bootstrap(std::to_string(bytes.size() - at) +
                  " trailing bytes after the last field");
  }
  if (!b.job_spec.empty() && (b.flags & kBootstrapCarriesSpec) == 0) {
    bad_bootstrap("a job spec is attached but the carries-spec flag is "
                  "clear");
  }
  return b;
}

void validate_bootstrap(const JobBootstrap& b, const ShardJobPlane& plane,
                        std::uint64_t num_machines) {
  const auto refuse = [](const std::string& what) {
    throw TransportError(TransportError::Kind::kUnexpected,
                         "job bootstrap: " + what);
  };
  if (b.machines != num_machines) {
    refuse("coordinator job has " + std::to_string(b.machines) +
           " machines, this worker's plane has " +
           std::to_string(num_machines));
  }
  if (b.round_labels.size() != plane.registered_rounds()) {
    refuse("coordinator registered " +
           std::to_string(b.round_labels.size()) +
           " rounds, this worker registered " +
           std::to_string(plane.registered_rounds()));
  }
  for (std::size_t i = 0; i < b.round_labels.size(); ++i) {
    if (b.round_labels[i] != plane.round_label(i)) {
      refuse("round " + std::to_string(i) + " is \"" +
             std::string(plane.round_label(i)) +
             "\" on this worker but \"" + b.round_labels[i] +
             "\" on the coordinator — the round registries diverged");
    }
  }
}

void configure_worker_telemetry(const JobBootstrap& b, std::uint32_t shard) {
  obs::Telemetry& tel = obs::Telemetry::instance();
  if ((b.flags & kBootstrapTelemetry) != 0) {
    // A forked worker inherited the coordinator's live recorder (same
    // clock epoch, history trimmed by the per-round Mark) — re-enabling
    // would reset that epoch and skew every merged span. A TCP worker
    // starts dark and enables here.
    if (!tel.enabled()) tel.enable();
    tel.set_shard(shard);
  } else if (tel.enabled()) {
    tel.disable();
  }
}

void send_bootstrap_ack(ShardChannel& ch, std::uint32_t shard, bool ok,
                        std::string_view error) {
  std::vector<std::byte> payload;
  append_u64(payload, ok ? 1 : 0);
  append_bytes(payload, error.data(), error.size());
  write_frame(ch, FrameKind::kBootstrapAck, shard, 0, payload);
}

void expect_bootstrap_ack(ShardChannel& ch, std::uint32_t shard) {
  const Frame ack = expect_frame(ch, FrameKind::kBootstrapAck, shard, 0);
  if (ack.payload.size() < 8) {
    throw TransportError(TransportError::Kind::kBadPayload,
                         "job bootstrap: ack frame shorter than its ok "
                         "flag");
  }
  const std::uint64_t ok = read_u64(ack.payload, 0);
  if (ok > 1) {
    throw TransportError(TransportError::Kind::kBadPayload,
                         "job bootstrap: ack frame has invalid ok flag " +
                             std::to_string(ok));
  }
  if (ok == 0) {
    std::string text(
        reinterpret_cast<const char*>(ack.payload.data() + 8),
        ack.payload.size() - 8);
    if (text.empty()) text = "worker refused the bootstrap";
    throw WorkerError(shard, 0,
                      "process-shard: shard " + std::to_string(shard) +
                          " refused the job bootstrap: " + text);
  }
}

void serve_job_rounds(ShardChannel& ch, std::uint32_t shard,
                      ShardJobPlane& plane, const JobBootstrap& b) {
  const std::uint64_t first = b.first;
  const std::uint64_t last = b.last;
  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = tel.enabled();

  // Shard-local parallelism: the pool is built here — after the fork in
  // the forked-worker case — so no pool thread ever crosses a fork
  // boundary, and it persists across every round of the job.
  std::unique_ptr<ThreadPoolExecutor> pool;
  if (b.threads > 1) {
    pool = std::make_unique<ThreadPoolExecutor>(
        static_cast<unsigned>(b.threads));
  }

  for (;;) {
    Frame frame = read_frame(ch);
    if (frame.kind == FrameKind::kJobTeardown) return;
    if (frame.kind != FrameKind::kRoundControl || frame.shard != shard) {
      throw TransportError(
          TransportError::Kind::kUnexpected,
          "worker shard " + std::to_string(shard) +
              ": expected round control or teardown, got kind " +
              std::to_string(static_cast<int>(frame.kind)) + " for shard " +
              std::to_string(frame.shard));
    }
    const std::uint64_t sequence = frame.sequence;
    const std::uint64_t round_ix = sequence - 1;

    std::span<const std::byte> p = frame.payload;
    if (p.size() < 16) {
      throw TransportError(TransportError::Kind::kBadPayload,
                           "worker shard " + std::to_string(shard) +
                               ": round control frame shorter than its "
                               "fixed fields");
    }
    const std::uint64_t round_id = read_u64(p, 0);
    const std::uint64_t param_count = read_u64(p, 8);
    p = p.subspan(16);
    if (param_count > p.size() / 8) {
      throw TransportError(TransportError::Kind::kBadPayload,
                           "worker shard " + std::to_string(shard) +
                               ": parameter count " +
                               std::to_string(param_count) +
                               " exceeds the payload");
    }
    // Frame payloads have no alignment guarantee; params are tiny, so
    // copy them into an aligned buffer instead of aliasing bytes.
    std::vector<std::uint64_t> params(param_count);
    for (std::uint64_t i = 0; i < param_count; ++i) {
      params[i] = read_u64(p, i * 8);
    }
    p = p.subspan(param_count * 8);

    obs::Telemetry::Mark tel_mark;
    if (telemetry) tel_mark = tel.mark();

    plane.apply_round_input(first, last, p);

    std::uint64_t error_machine = 0;
    bool failed = false;
    std::string error_what;
    std::uint64_t t0 = telemetry ? tel.now_ns() : 0;
    std::exception_ptr error;
    run_shard_range(
        pool.get(), first, last,
        [&](std::uint64_t m) { plane.run_registered(round_id, m, params); },
        error, error_machine);
    if (error) {
      failed = true;
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        error_what = e.what();
      } catch (...) {
        error_what = "unknown exception";
      }
    }
    if (telemetry) {
      tel.record_span(obs::Phase::kCallback, t0, tel.now_ns(), round_ix,
                      "machines [" + std::to_string(first) + ", " +
                          std::to_string(last) + ")");
    }

    std::vector<std::byte> bytes;
    t0 = telemetry ? tel.now_ns() : 0;
    plane.serialize_machines(first, last, bytes);
    if (telemetry) {
      tel.record_span(obs::Phase::kShardSerialize, t0, tel.now_ns(),
                      round_ix);
      t0 = tel.now_ns();
    }
    write_frame(ch, FrameKind::kShardData, shard, sequence, bytes);
    if (telemetry) {
      tel.record_span(obs::Phase::kShardTransport, t0, tel.now_ns(),
                      round_ix);
      // Everything this worker recorded this round ships back for the
      // coordinator's merged profile. The telemetry and status frames
      // themselves are written after this snapshot, so their wire
      // counters are only visible on the coordinator's receive side.
      write_frame(ch, FrameKind::kShardTelemetry, shard, sequence,
                  tel.serialize_since(tel_mark));
    }

    std::vector<std::byte> status;
    append_u64(status, failed ? 1 : 0);
    append_u64(status, error_machine);
    append_bytes(status, error_what.data(), error_what.size());
    write_frame(ch, FrameKind::kShardStatus, shard, sequence, status);
  }
}

[[noreturn]] void forked_worker_main(FdChannel& ch, std::uint32_t shard,
                                     std::uint64_t nonce,
                                     ShardJobPlane* plane,
                                     std::uint64_t num_machines) {
  try {
    // Same handshake as a TCP worker: the fork path exercises the wire
    // bootstrap end to end, so the two launch modes cannot drift apart.
    handshake_accept(ch, [&](const HandshakeHello& h) {
      return (h.shard == shard && h.nonce == nonce)
                 ? HandshakeStatus::kOk
                 : HandshakeStatus::kRefused;
    });
    const Frame setup = expect_frame(ch, FrameKind::kJobSetup, shard, 0);
    const JobBootstrap b = decode_bootstrap(setup.payload);
    try {
      if (b.nonce != nonce) {
        throw TransportError(TransportError::Kind::kUnexpected,
                             "job bootstrap: nonce does not match the "
                             "handshake");
      }
      validate_bootstrap(b, *plane, num_machines);
    } catch (const std::exception& e) {
      send_bootstrap_ack(ch, shard, false, e.what());
      _exit(kWorkerTransportFailed);
    }
    configure_worker_telemetry(b, shard);
    send_bootstrap_ack(ch, shard, true, {});
    serve_job_rounds(ch, shard, *plane, b);
    _exit(kWorkerOk);
  } catch (...) {
    // Never unwind into the coordinator's stack (no atexit, no stdio
    // flush of buffers the parent also owns).
    _exit(kWorkerTransportFailed);
  }
}

namespace {
WorkerSession* g_worker_session = nullptr;
}  // namespace

WorkerSession* active_worker_session() { return g_worker_session; }

void set_active_worker_session(WorkerSession* session) {
  g_worker_session = session;
}

WorkerShardExecutor::WorkerShardExecutor(WorkerSession* session)
    : session_(session) {}

unsigned WorkerShardExecutor::num_threads() const {
  return session_ == nullptr
             ? 1u
             : static_cast<unsigned>(
                   std::max<std::uint64_t>(session_->bootstrap.threads, 1));
}

void WorkerShardExecutor::run_machines(std::uint64_t first,
                                       std::uint64_t last,
                                       const MachineFn& fn) {
  // Pre-job rounds replay the coordinator's preamble serially and
  // deterministically (every machine runs; lowest-id exception wins).
  std::exception_ptr error;
  for (std::uint64_t m = first; m < last; ++m) {
    try {
      fn(m);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void WorkerShardExecutor::run_machines_sharded(std::uint64_t first,
                                               std::uint64_t last,
                                               const MachineFn& fn,
                                               ShardDataPlane* dp) {
  // Mirror of ProcessShardExecutor: the coordinator refuses ad-hoc
  // sharded rounds under persistent workers, so a replayed driver that
  // reaches one here means the replay diverged from the coordinator.
  if (dp != nullptr && last - first > 1) {
    throw ExecError(
        "worker-shard: ad-hoc sharded rounds are not supported by "
        "persistent workers — register the round with the engine job API "
        "(define_round / invoke_round) instead of run_round");
  }
  run_machines(first, last, fn);
}

void WorkerShardExecutor::start_job(std::uint64_t num_machines,
                                    ShardJobPlane* plane) {
  WorkerSession* s = session_;
  if (s == nullptr || s->channel == nullptr) {
    throw ExecError("worker-shard: start_job without an active worker "
                    "session");
  }
  try {
    validate_bootstrap(s->bootstrap, *plane, num_machines);
  } catch (const std::exception& e) {
    send_bootstrap_ack(*s->channel, s->shard, false, e.what());
    s->acked = true;
    throw;
  }
  configure_worker_telemetry(s->bootstrap, s->shard);
  send_bootstrap_ack(*s->channel, s->shard, true, {});
  s->acked = true;
  serve_job_rounds(*s->channel, s->shard, *plane, s->bootstrap);
  s->served = true;
  // Unwind the replayed driver: the job is over from this worker's
  // perspective — there is no meaningful result to compute locally.
  throw JobServed{};
}

void WorkerShardExecutor::run_job_round(std::uint64_t round_id,
                                        std::span<const std::uint64_t>,
                                        std::uint64_t, const MachineFn&,
                                        ShardJobPlane*) {
  // start_job never returns (it serves the whole job then throws
  // JobServed), so the engine can never legitimately get here.
  throw ExecError("worker-shard: run_job_round after start_job (round " +
                  std::to_string(round_id) +
                  ") — the job loop should have unwound");
}

}  // namespace mrlr::exec
