#pragma once
// Wire transport between the coordinator and shard worker processes of
// the process-sharded execution backend.
//
// Layers, bottom up:
//
//   * ShardChannel — an abstract ordered byte stream. The in-tree
//     implementation (FdChannel) wraps one end of a socketpair; a TCP
//     socket satisfies the same interface, which is the seam where a
//     true multi-host backend plugs in later without touching the
//     engine or the framing layer.
//
//   * Frames — every message on a channel is one length-prefixed,
//     checksummed frame:
//
//       offset  size  field
//       0       4     magic     0x3146534D ("MSF1")
//       4       2     version   1
//       6       2     kind      FrameKind
//       8       4     shard     sender shard index
//       12      4     reserved  must be zero
//       16      8     sequence  round sequence number
//       24      8     payload_len (bytes; capped, see kMaxFramePayload)
//       32      8     checksum  rolling mix64 over the payload bytes
//                               (the .mgb checksum construction)
//       40      ...   payload
//
//     Readers validate everything before trusting the payload and throw
//     a typed TransportError (same taxonomy spirit as graph::ParseError)
//     on any malformed, truncated, reordered, or corrupt frame — a bad
//     peer must fail loudly, never deadlock or silently merge.
//
// Error taxonomy (all derive from ExecError):
//   * TransportError — the byte stream or a frame on it is bad; `kind`
//     says how (truncated, bad magic/version, length cap, checksum
//     mismatch, out-of-order/unexpected frame, malformed payload, OS
//     I/O error).
//   * WorkerError — a shard worker process failed (died mid-round,
//     nonzero exit); carries the shard index and round sequence.
//   * ShardCallbackError — a machine callback threw inside a worker
//     process; carries the machine id and round sequence, message text
//     preserved from the original exception.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mrlr::exec {

/// Base class for every execution-backend failure.
class ExecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TransportError : public ExecError {
 public:
  enum class Kind {
    kTruncated,     ///< stream ended inside a header or payload
    kBadMagic,      ///< frame does not start with the MSF1 magic
    kBadVersion,    ///< unsupported protocol version
    kBadLength,     ///< payload_len exceeds the sanity cap
    kBadChecksum,   ///< payload bytes do not match the header checksum
    kUnexpected,    ///< wrong kind / shard / sequence for this point in
                    ///< the protocol (reordered or replayed frame)
    kBadPayload,    ///< frame intact but its payload fails validation
    kIo,            ///< read/write failed at the OS level
  };

  TransportError(Kind kind, std::string what)
      : ExecError(std::move(what)), kind(kind) {}

  Kind kind;
};

class WorkerError : public ExecError {
 public:
  WorkerError(std::uint32_t shard, std::uint64_t round, std::string what)
      : ExecError(std::move(what)), shard(shard), round(round) {}

  std::uint32_t shard;
  std::uint64_t round;
};

class ShardCallbackError : public ExecError {
 public:
  ShardCallbackError(std::uint64_t machine, std::uint64_t round,
                     std::string what)
      : ExecError(std::move(what)), machine(machine), round(round) {}

  std::uint64_t machine;
  std::uint64_t round;
};

/// Abstract ordered byte stream between two transport endpoints.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Writes all `n` bytes. Throws TransportError(kIo) on failure
  /// (including a closed peer).
  virtual void write_all(const std::byte* data, std::size_t n) = 0;

  /// Reads up to `n` bytes into `data`; returns the count actually
  /// read, 0 only at end of stream. Throws TransportError(kIo) on
  /// failure.
  virtual std::size_t read_some(std::byte* data, std::size_t n) = 0;

  /// Closes the underlying endpoint immediately (so a stuck peer sees
  /// EOF/EPIPE instead of blocking forever). Default: nothing to close.
  virtual void close_now() {}

  /// Bounds how long read_some may block (0 = wait forever, the
  /// default). Channels without timeout support ignore the call; the
  /// coordinator only arms this during connect/handshake/bootstrap,
  /// where a silent peer must fail typed instead of hanging.
  virtual void set_read_timeout(std::chrono::milliseconds timeout) {
    (void)timeout;
  }
};

/// Reads exactly n bytes or throws TransportError(kTruncated) if the
/// stream ends first; `context` names what was being read.
void read_exact(ShardChannel& ch, std::byte* data, std::size_t n,
                const char* context);

/// ShardChannel over an OS file descriptor (one end of a socketpair or
/// pipe). Owns the descriptor and closes it on destruction.
class FdChannel final : public ShardChannel {
 public:
  explicit FdChannel(int fd) : fd_(fd) {}
  ~FdChannel() override;

  FdChannel(const FdChannel&) = delete;
  FdChannel& operator=(const FdChannel&) = delete;
  FdChannel(FdChannel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  void write_all(const std::byte* data, std::size_t n) override;
  std::size_t read_some(std::byte* data, std::size_t n) override;

  int fd() const { return fd_; }
  void close_now() override;

 private:
  int fd_;
};

/// A connected AF_UNIX stream socketpair (CLOEXEC), as {parent end,
/// child end}. Throws TransportError(kIo) if the OS refuses.
std::pair<FdChannel, FdChannel> make_socketpair_channel();

// ------------------------------------------------------------ frames --

inline constexpr std::uint32_t kFrameMagic = 0x3146534Du;  // "MSF1"
/// Version 2 is the handshake era: every channel (fork socketpair or
/// TCP) opens with an explicit hello/ack handshake (see
/// shard_channel.hpp) and kJobSetup carries the full wire bootstrap
/// (machine range, round-label table, optional job spec) instead of a
/// bare range quadruple. A version-1 peer is refused during the
/// handshake with a typed error naming both versions.
inline constexpr std::uint16_t kFrameVersion = 2;

/// Sanity cap on a single frame payload (1 TiB of words is far beyond
/// any simulated round): an adversarial or corrupt length field fails
/// the cap check instead of driving a giant allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 40;

enum class FrameKind : std::uint16_t {
  kShardData = 1,       ///< serialized per-machine staging arenas
  kShardStatus = 2,     ///< worker round status (ok / callback exception)
  kShardTelemetry = 3,  ///< worker span/counter buffer (obs::Telemetry
                        ///< wire encoding); sent between data and status
                        ///< only when telemetry is enabled — workers
                        ///< inherit the flag at fork, so both ends of
                        ///< the channel always agree on the protocol
  kJobSetup = 4,        ///< coordinator -> worker, once per job
                        ///< (sequence 0): the worker's machine range,
                        ///< total machine count, and the number of
                        ///< registered rounds — the persistent worker
                        ///< validates its inherited job plane against
                        ///< the coordinator's before serving rounds
  kRoundControl = 5,    ///< coordinator -> worker, once per registered
                        ///< round: round id, invoke parameters, and the
                        ///< serialized inbox state for the worker's
                        ///< machine range (the worker holds no
                        ///< coordinator memory after setup, so every
                        ///< round's inputs arrive on the wire)
  kJobTeardown = 6,     ///< coordinator -> worker: the job is over;
                        ///< the worker exits cleanly
  kBootstrapAck = 7,    ///< worker -> coordinator, once per job
                        ///< (sequence 0): the worker validated the
                        ///< kJobSetup bootstrap against its own job
                        ///< plane (inherited at fork, or reconstructed
                        ///< from the shipped spec) and either accepts
                        ///< the job or refuses it with a message — so a
                        ///< bootstrap mismatch fails typed on the
                        ///< coordinator before any round is shipped

  // Serve-mode kinds (src/mrlr/serve/): the job-submission protocol a
  // long-running mrlr_serve daemon speaks with its clients, on the same
  // framing and handshake as the shard protocol above.
  kJobSubmit = 8,       ///< client -> daemon: one encoded JobSpec
  kJobAdmission = 9,    ///< daemon -> client: the admission decision —
                        ///< accepted (job id) or rejected with a typed
                        ///< reason (serve/protocol.hpp)
  kJobResult = 10,      ///< daemon -> client (and job process ->
                        ///< daemon): the encoded JobResult, or a typed
                        ///< execution error
  kServeStats = 11,     ///< client -> daemon: empty request; daemon ->
                        ///< client: counter snapshot
  kServeHealth = 12,    ///< client -> daemon: empty request; daemon ->
                        ///< client: liveness summary
  kServeShutdown = 13,  ///< client -> daemon: drain and stop accepting;
                        ///< daemon -> client: empty ack
};

/// Highest FrameKind this build understands; read_frame rejects
/// anything outside [kShardData, kMaxFrameKind] typed before the
/// payload is trusted.
inline constexpr std::uint16_t kMaxFrameKind =
    static_cast<std::uint16_t>(FrameKind::kServeShutdown);

struct Frame {
  FrameKind kind;
  std::uint32_t shard = 0;
  std::uint64_t sequence = 0;
  std::vector<std::byte> payload;
};

/// Rolling mix64 checksum over a byte span (the .mgb construction on
/// 8-byte little-endian lanes, zero-padded tail, length absorbed last).
std::uint64_t frame_checksum(std::span<const std::byte> payload);

/// Little-endian u64 append / read for frame payload encodings — the
/// one implementation every wire-protocol participant (engine data
/// plane, worker status frames) shares, so coordinator and workers can
/// never disagree on the lane format. read_u64 requires offset + 8 <=
/// in.size() (callers bounds-check first).
void append_u64(std::vector<std::byte>& out, std::uint64_t v);
std::uint64_t read_u64(std::span<const std::byte> in, std::size_t offset);

void write_frame(ShardChannel& ch, FrameKind kind, std::uint32_t shard,
                 std::uint64_t sequence, std::span<const std::byte> payload);

/// Reads and fully validates one frame; throws the TransportError
/// taxonomy above on anything malformed.
Frame read_frame(ShardChannel& ch,
                 std::uint64_t max_payload = kMaxFramePayload);

/// read_frame + protocol-position validation: the frame must have
/// exactly this kind, shard, and sequence, else TransportError
/// (kUnexpected) — a reordered, replayed, or misrouted frame never
/// reaches the merge.
Frame expect_frame(ShardChannel& ch, FrameKind kind, std::uint32_t shard,
                   std::uint64_t sequence,
                   std::uint64_t max_payload = kMaxFramePayload);

}  // namespace mrlr::exec
