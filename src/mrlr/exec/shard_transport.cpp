#include "mrlr/exec/shard_transport.hpp"

#include "mrlr/exec/shard_channel.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/mix64.hpp"

namespace mrlr::exec {

namespace {

constexpr std::uint64_t kChecksumSeed = 0x6D726C722E6D7366ull;  // "mrlr.msf"

[[noreturn]] void io_fail(const char* op, int err) {
  throw TransportError(TransportError::Kind::kIo,
                       std::string("shard transport: ") + op +
                           " failed: " + std::strerror(err));
}

// Fixed 40-byte header, assembled field by field so the wire layout
// never depends on struct padding.
constexpr std::size_t kHeaderBytes = 40;

void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

void read_exact(ShardChannel& ch, std::byte* data, std::size_t n,
                const char* context) {
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = ch.read_some(data + got, n - got);
    if (r == 0) {
      throw TransportError(
          TransportError::Kind::kTruncated,
          std::string("shard transport: stream ended inside ") + context +
              " (" + std::to_string(got) + " of " + std::to_string(n) +
              " bytes)");
    }
    got += r;
  }
}

FdChannel::~FdChannel() { close_now(); }

void FdChannel::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FdChannel::write_all(const std::byte* data, std::size_t n) {
  // The EINTR-retry / partial-write continuation loop lives in one
  // shared helper (shard_channel.hpp) so FdChannel and TcpChannel can
  // never drift apart on short-write handling.
  io_write_all(fd_, data, n, [](int fd, const void* buf, std::size_t len) {
    // MSG_NOSIGNAL: a fork child that died must surface as a typed kIo
    // (EPIPE), not a SIGPIPE kill of the coordinator. The fd is a
    // socketpair in every production path; plain pipes (ENOTSOCK) fall
    // back to write() for generality.
    const ::ssize_t r = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) return ::write(fd, buf, len);
    return r;
  }, "fd channel");
}

std::size_t FdChannel::read_some(std::byte* data, std::size_t n) {
  return io_read_some(fd_, data, n, [](int fd, void* buf, std::size_t len) {
    return ::read(fd, buf, len);
  }, "fd channel");
}

std::pair<FdChannel, FdChannel> make_socketpair_channel() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    io_fail("socketpair", errno);
  }
  return {FdChannel(fds[0]), FdChannel(fds[1])};
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto n = out.size();
  out.resize(n + 8);
  std::memcpy(out.data() + n, &v, 8);
}

std::uint64_t read_u64(std::span<const std::byte> in, std::size_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, 8);
  return v;
}

std::uint64_t frame_checksum(std::span<const std::byte> payload) {
  std::uint64_t h = kChecksumSeed;
  std::size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    h = mix64(h ^ get_u64(payload.data() + i));
  }
  if (i < payload.size()) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, payload.data() + i, payload.size() - i);
    h = mix64(h ^ tail);
  }
  return mix64(h ^ static_cast<std::uint64_t>(payload.size()));
}

void write_frame(ShardChannel& ch, FrameKind kind, std::uint32_t shard,
                 std::uint64_t sequence,
                 std::span<const std::byte> payload) {
  std::byte header[kHeaderBytes];
  put_u32(header + 0, kFrameMagic);
  put_u16(header + 4, kFrameVersion);
  put_u16(header + 6, static_cast<std::uint16_t>(kind));
  put_u32(header + 8, shard);
  put_u32(header + 12, 0);  // reserved
  put_u64(header + 16, sequence);
  put_u64(header + 24, payload.size());
  put_u64(header + 32, frame_checksum(payload));
  ch.write_all(header, kHeaderBytes);
  if (!payload.empty()) ch.write_all(payload.data(), payload.size());
  obs::count("exec.frames_sent");
  obs::count("exec.wire_bytes_out", kHeaderBytes + payload.size());
}

Frame read_frame(ShardChannel& ch, std::uint64_t max_payload) {
  std::byte header[kHeaderBytes];
  read_exact(ch, header, kHeaderBytes, "frame header");

  const std::uint32_t magic = get_u32(header + 0);
  if (magic != kFrameMagic) {
    throw TransportError(TransportError::Kind::kBadMagic,
                         "shard transport: bad frame magic 0x" +
                             [&] {
                               char buf[16];
                               std::snprintf(buf, sizeof(buf), "%08X", magic);
                               return std::string(buf);
                             }());
  }
  const std::uint16_t version = get_u16(header + 4);
  if (version != kFrameVersion) {
    throw TransportError(TransportError::Kind::kBadVersion,
                         "shard transport: unsupported frame version " +
                             std::to_string(version));
  }
  const std::uint16_t kind_raw = get_u16(header + 6);
  // The kind space is dense: [kShardData, kMaxFrameKind] with no holes.
  if (kind_raw < static_cast<std::uint16_t>(FrameKind::kShardData) ||
      kind_raw > kMaxFrameKind) {
    // A kind this build does not know (version skew, corruption) fails
    // typed here, before any payload is trusted — never a hang.
    throw TransportError(TransportError::Kind::kBadMagic,
                         "shard transport: unknown frame kind " +
                             std::to_string(kind_raw));
  }
  if (get_u32(header + 12) != 0) {
    throw TransportError(TransportError::Kind::kBadMagic,
                         "shard transport: nonzero reserved header bits");
  }
  const std::uint64_t payload_len = get_u64(header + 24);
  if (payload_len > max_payload) {
    throw TransportError(TransportError::Kind::kBadLength,
                         "shard transport: frame payload length " +
                             std::to_string(payload_len) +
                             " exceeds the cap " +
                             std::to_string(max_payload));
  }

  Frame f;
  f.kind = static_cast<FrameKind>(kind_raw);
  f.shard = get_u32(header + 8);
  f.sequence = get_u64(header + 16);
  f.payload.resize(payload_len);
  if (payload_len > 0) {
    read_exact(ch, f.payload.data(), payload_len, "frame payload");
  }
  const std::uint64_t expected = get_u64(header + 32);
  const std::uint64_t actual = frame_checksum(f.payload);
  if (expected != actual) {
    throw TransportError(TransportError::Kind::kBadChecksum,
                         "shard transport: frame checksum mismatch "
                         "(corrupt payload)");
  }
  obs::count("exec.frames_received");
  obs::count("exec.wire_bytes_in", kHeaderBytes + payload_len);
  return f;
}

Frame expect_frame(ShardChannel& ch, FrameKind kind, std::uint32_t shard,
                   std::uint64_t sequence, std::uint64_t max_payload) {
  Frame f = read_frame(ch, max_payload);
  if (f.kind != kind || f.shard != shard || f.sequence != sequence) {
    throw TransportError(
        TransportError::Kind::kUnexpected,
        "shard transport: unexpected frame (kind " +
            std::to_string(static_cast<int>(f.kind)) + ", shard " +
            std::to_string(f.shard) + ", seq " +
            std::to_string(f.sequence) + ") while expecting (kind " +
            std::to_string(static_cast<int>(kind)) + ", shard " +
            std::to_string(shard) + ", seq " + std::to_string(sequence) +
            ") — reordered or misrouted");
  }
  return f;
}

}  // namespace mrlr::exec
