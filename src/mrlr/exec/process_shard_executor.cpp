#include "mrlr/exec/process_shard_executor.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::exec {

namespace {

constexpr unsigned kMaxShards = 256;

// Worker exit codes (distinct from anything a callback can produce:
// workers never return through main).
constexpr int kWorkerOk = 0;
constexpr int kWorkerTransportFailed = 113;

/// Contiguous partition of [first, last) into k near-equal ranges.
std::vector<std::pair<std::uint64_t, std::uint64_t>> partition(
    std::uint64_t first, std::uint64_t last, unsigned k) {
  const std::uint64_t total = last - first;
  const std::uint64_t base = total / k;
  const std::uint64_t rem = total % k;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  ranges.reserve(k);
  std::uint64_t at = first;
  for (unsigned i = 0; i < k; ++i) {
    const std::uint64_t len = base + (i < rem ? 1 : 0);
    ranges.emplace_back(at, at + len);
    at += len;
  }
  return ranges;
}

/// Serial ascending run honoring the Executor exception contract
/// (every machine runs; the lowest-id exception is kept).
void run_serial_range(std::uint64_t first, std::uint64_t last,
                      const Executor::MachineFn& fn,
                      std::exception_ptr& error,
                      std::uint64_t& error_machine) {
  for (std::uint64_t m = first; m < last; ++m) {
    try {
      fn(m);
    } catch (...) {
      if (!error) {
        error = std::current_exception();
        error_machine = m;
      }
    }
  }
}

/// Worker-process body: run the shard's machines, ship the serialized
/// data plane plus a status frame, and _exit without ever unwinding
/// into the coordinator's stack (no atexit, no stdio flush of buffers
/// the parent also owns).
[[noreturn]] void worker_main(FdChannel& ch, std::uint32_t shard,
                              std::uint64_t sequence, std::uint64_t first,
                              std::uint64_t last,
                              const Executor::MachineFn& fn,
                              ShardDataPlane* dp) {
  // Telemetry: the fork inherited the coordinator's recorder state
  // (COW), including everything recorded in earlier rounds. Mark the
  // inherited position so only this shard's own events ship back, and
  // re-attribute subsequent spans to this shard. Round index is
  // sequence - 1: the executor bumps round_seq_ once per engine round.
  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = tel.enabled();
  obs::Telemetry::Mark tel_mark;
  const std::uint64_t round_ix = sequence - 1;
  if (telemetry) {
    tel_mark = tel.mark();
    tel.set_shard(shard);
  }

  std::uint64_t error_machine = 0;
  bool failed = false;
  std::string error_what;
  std::uint64_t t0 = telemetry ? tel.now_ns() : 0;
  for (std::uint64_t m = first; m < last; ++m) {
    try {
      fn(m);
    } catch (const std::exception& e) {
      if (!failed) {
        failed = true;
        error_machine = m;
        error_what = e.what();
      }
    } catch (...) {
      if (!failed) {
        failed = true;
        error_machine = m;
        error_what = "unknown exception";
      }
    }
  }
  if (telemetry) {
    tel.record_span(obs::Phase::kCallback, t0, tel.now_ns(), round_ix,
                    "machines [" + std::to_string(first) + ", " +
                        std::to_string(last) + ")");
  }
  try {
    std::vector<std::byte> bytes;
    t0 = telemetry ? tel.now_ns() : 0;
    dp->serialize_machines(first, last, bytes);
    if (telemetry) {
      tel.record_span(obs::Phase::kShardSerialize, t0, tel.now_ns(),
                      round_ix);
      t0 = tel.now_ns();
    }
    write_frame(ch, FrameKind::kShardData, shard, sequence, bytes);
    if (telemetry) {
      tel.record_span(obs::Phase::kShardTransport, t0, tel.now_ns(),
                      round_ix);
      // Everything this worker recorded after the fork ships back for
      // the coordinator's merged profile. The telemetry and status
      // frames themselves are written after this snapshot, so their
      // wire counters are only visible on the coordinator's receive
      // side.
      write_frame(ch, FrameKind::kShardTelemetry, shard, sequence,
                  tel.serialize_since(tel_mark));
    }

    std::vector<std::byte> status;
    append_u64(status, failed ? 1 : 0);
    append_u64(status, error_machine);
    const auto text = status.size();
    status.resize(text + error_what.size());
    std::memcpy(status.data() + text, error_what.data(), error_what.size());
    write_frame(ch, FrameKind::kShardStatus, shard, sequence, status);
  } catch (...) {
    _exit(kWorkerTransportFailed);
  }
  _exit(kWorkerOk);
}

std::string describe_exit(int wait_status) {
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == kWorkerOk) return "exited cleanly";
    if (code == kWorkerTransportFailed) {
      return "failed to ship its round data (exit " +
             std::to_string(code) + ")";
    }
    return "exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(wait_status)) {
    return std::string("killed by signal ") +
           std::to_string(WTERMSIG(wait_status));
  }
  return "ended abnormally";
}

}  // namespace

ProcessShardExecutor::ProcessShardExecutor(unsigned num_shards)
    : num_shards_(std::clamp(num_shards, 1u, kMaxShards)) {}

void ProcessShardExecutor::run_machines(std::uint64_t first,
                                        std::uint64_t last,
                                        const MachineFn& fn) {
  // No data plane, nothing to exchange: degenerate serial semantics.
  std::exception_ptr error;
  std::uint64_t error_machine = 0;
  run_serial_range(first, last, fn, error, error_machine);
  if (error) std::rethrow_exception(error);
}

void ProcessShardExecutor::run_machines_sharded(std::uint64_t first,
                                                std::uint64_t last,
                                                const MachineFn& fn,
                                                ShardDataPlane* dp) {
  const std::uint64_t sequence = ++round_seq_;
  const std::uint64_t total = last - first;
  const unsigned shards = static_cast<unsigned>(std::min<std::uint64_t>(
      num_shards_, std::max<std::uint64_t>(total, 1)));
  if (dp == nullptr || shards <= 1) {
    run_machines(first, last, fn);
    return;
  }

  const auto ranges = partition(first, last, shards);

  struct Worker {
    pid_t pid;
    FdChannel channel;  // coordinator end
    std::uint32_t shard;
    std::uint64_t first, last;
  };
  std::vector<Worker> workers;
  workers.reserve(shards - 1);

  // Fork all workers up front so every shard snapshots the same
  // round-start state (shard 0 has not run yet).
  for (unsigned s = 1; s < shards; ++s) {
    auto [parent_end, child_end] = make_socketpair_channel();
    std::fflush(nullptr);  // no buffered stdio duplicated into workers
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Unwind: reap the workers already forked (closing our channel
      // ends makes their shipping writes fail, so they exit).
      const int err = errno;
      for (Worker& w : workers) {
        w.channel.close_now();
        int st;
        ::waitpid(w.pid, &st, 0);
      }
      throw WorkerError(
          s, sequence,
          "process-shard: fork failed for shard " + std::to_string(s) +
              " in round " + std::to_string(sequence) + ": " +
              std::strerror(err));
    }
    if (pid == 0) {
      // Worker: drop the coordinator ends we inherited, then run.
      parent_end.close_now();
      for (Worker& w : workers) w.channel.close_now();
      worker_main(child_end, s, sequence, ranges[s].first,
                  ranges[s].second, fn, dp);  // never returns
    }
    // Coordinator: child_end closes when it goes out of scope below,
    // which is what turns a dead worker into EOF instead of a hang.
    workers.push_back(Worker{pid, std::move(parent_end), s,
                             ranges[s].first, ranges[s].second});
  }

  // Shard 0 runs here, in the coordinator: host-resident machine state
  // (notably the central machine's) persists across rounds.
  std::exception_ptr local_error;
  std::uint64_t local_error_machine = 0;
  run_serial_range(ranges[0].first, ranges[0].second, fn, local_error,
                   local_error_machine);

  // Collect shard results in shard order (= machine-id order, so the
  // apply order is deterministic even though workers finish whenever).
  std::uint64_t remote_error_machine = 0;
  std::string remote_error_what;
  bool remote_failed = false;
  std::uint32_t failed_shard = 0;
  std::string failure_what;
  bool transport_failed = false;

  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = tel.enabled();
  for (Worker& w : workers) {
    if (transport_failed) break;  // reap-and-report below
    try {
      const std::uint64_t wait_start = telemetry ? tel.now_ns() : 0;
      Frame data = expect_frame(w.channel, FrameKind::kShardData, w.shard,
                                sequence);
      if (telemetry) {
        tel.record_span(obs::Phase::kWorkerWait, wait_start, tel.now_ns(),
                        sequence - 1,
                        "shard " + std::to_string(w.shard));
      }
      dp->apply_machines(w.first, w.last, data.payload);
      if (telemetry) {
        // The worker only sends its span buffer when its inherited
        // enabled flag was set, which is exactly when ours is: the
        // protocol shape is deterministic on both ends.
        Frame spans = expect_frame(w.channel, FrameKind::kShardTelemetry,
                                   w.shard, sequence);
        tel.merge_remote(spans.payload, w.shard);
      }
      Frame status = expect_frame(w.channel, FrameKind::kShardStatus,
                                  w.shard, sequence);
      std::span<const std::byte> p = status.payload;
      if (p.size() < 16) {
        throw TransportError(TransportError::Kind::kBadPayload,
                             "process-shard: status frame shorter than "
                             "its fixed fields");
      }
      const std::uint64_t flag = read_u64(p, 0);
      const std::uint64_t machine = read_u64(p, 8);
      p = p.subspan(16);
      if (flag > 1) {
        throw TransportError(TransportError::Kind::kBadPayload,
                             "process-shard: status frame has invalid "
                             "flag " + std::to_string(flag));
      }
      if (flag == 1 && !remote_failed) {
        remote_failed = true;
        remote_error_machine = machine;
        remote_error_what.assign(
            reinterpret_cast<const char*>(p.data()), p.size());
      }
    } catch (const ExecError& e) {
      transport_failed = true;
      failed_shard = w.shard;
      failure_what = e.what();
    }
  }

  // Reap every worker exactly once. Closing the channels first makes a
  // worker stuck writing into a full socket die with EPIPE instead of
  // blocking waitpid forever.
  std::string failed_exit;
  for (Worker& w : workers) {
    w.channel.close_now();
    int st = 0;
    ::waitpid(w.pid, &st, 0);
    if (transport_failed && w.shard == failed_shard) {
      failed_exit = describe_exit(st);
    }
  }

  if (transport_failed) {
    throw WorkerError(failed_shard, sequence,
                      "process-shard: shard " +
                          std::to_string(failed_shard) +
                          " worker failed in round " +
                          std::to_string(sequence) + " (" + failed_exit +
                          "): " + failure_what);
  }

  // Executor contract: the lowest-id throwing machine wins. Shard 0's
  // machines precede every worker machine, and workers were scanned in
  // machine-id order.
  if (local_error) std::rethrow_exception(local_error);
  if (remote_failed) {
    throw ShardCallbackError(
        remote_error_machine, sequence,
        "process-shard: machine " + std::to_string(remote_error_machine) +
            " threw in round " + std::to_string(sequence) + ": " +
            remote_error_what);
  }
}

}  // namespace mrlr::exec
