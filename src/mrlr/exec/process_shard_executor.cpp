#include "mrlr/exec/process_shard_executor.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::exec {

namespace {

constexpr unsigned kMaxShards = 256;

// Worker exit codes (distinct from anything a callback can produce:
// workers never return through main).
constexpr int kWorkerOk = 0;
constexpr int kWorkerTransportFailed = 113;

/// Contiguous partition of [first, last) into k near-equal ranges.
std::vector<std::pair<std::uint64_t, std::uint64_t>> partition(
    std::uint64_t first, std::uint64_t last, unsigned k) {
  const std::uint64_t total = last - first;
  const std::uint64_t base = total / k;
  const std::uint64_t rem = total % k;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  ranges.reserve(k);
  std::uint64_t at = first;
  for (unsigned i = 0; i < k; ++i) {
    const std::uint64_t len = base + (i < rem ? 1 : 0);
    ranges.emplace_back(at, at + len);
    at += len;
  }
  return ranges;
}

/// Serial ascending run honoring the Executor exception contract
/// (every machine runs; the lowest-id exception is kept).
void run_serial_range(std::uint64_t first, std::uint64_t last,
                      const Executor::MachineFn& fn,
                      std::exception_ptr& error,
                      std::uint64_t& error_machine) {
  for (std::uint64_t m = first; m < last; ++m) {
    try {
      fn(m);
    } catch (...) {
      if (!error) {
        error = std::current_exception();
        error_machine = m;
      }
    }
  }
}

/// Persistent-worker body: validate the setup frame against the
/// inherited job plane, then serve kRoundControl frames until teardown.
/// Each round: install the shipped inbox state for our machine range,
/// run the registered round over it, and ship the staged arenas plus a
/// status frame back. Exits via _exit only — never unwinding into the
/// coordinator's stack (no atexit, no stdio flush of buffers the parent
/// also owns).
[[noreturn]] void worker_service_loop(FdChannel& ch, std::uint32_t shard,
                                      ShardJobPlane* plane) {
  try {
    const Frame setup = expect_frame(ch, FrameKind::kJobSetup, shard, 0);
    if (setup.payload.size() != 32) _exit(kWorkerTransportFailed);
    const std::uint64_t first = read_u64(setup.payload, 0);
    const std::uint64_t last = read_u64(setup.payload, 8);
    const std::uint64_t machines = read_u64(setup.payload, 16);
    const std::uint64_t rounds = read_u64(setup.payload, 24);
    if (first > last || last > machines ||
        rounds != plane->registered_rounds()) {
      _exit(kWorkerTransportFailed);
    }

    // Telemetry: the fork inherited the coordinator's recorder state
    // (COW), including everything recorded before the job. Each round
    // marks the current position so only that round's own events ship
    // back; spans recorded here are re-attributed to this shard.
    obs::Telemetry& tel = obs::Telemetry::instance();
    const bool telemetry = tel.enabled();
    if (telemetry) tel.set_shard(shard);

    for (;;) {
      Frame frame = read_frame(ch);
      if (frame.kind == FrameKind::kJobTeardown) _exit(kWorkerOk);
      if (frame.kind != FrameKind::kRoundControl || frame.shard != shard) {
        _exit(kWorkerTransportFailed);
      }
      const std::uint64_t sequence = frame.sequence;
      const std::uint64_t round_ix = sequence - 1;

      std::span<const std::byte> p = frame.payload;
      if (p.size() < 16) _exit(kWorkerTransportFailed);
      const std::uint64_t round_id = read_u64(p, 0);
      const std::uint64_t param_count = read_u64(p, 8);
      p = p.subspan(16);
      if (param_count > p.size() / 8) _exit(kWorkerTransportFailed);
      // Frame payloads have no alignment guarantee; params are tiny, so
      // copy them into an aligned buffer instead of aliasing bytes.
      std::vector<std::uint64_t> params(param_count);
      for (std::uint64_t i = 0; i < param_count; ++i) {
        params[i] = read_u64(p, i * 8);
      }
      p = p.subspan(param_count * 8);

      obs::Telemetry::Mark tel_mark;
      if (telemetry) tel_mark = tel.mark();

      plane->apply_round_input(first, last, p);

      std::uint64_t error_machine = 0;
      bool failed = false;
      std::string error_what;
      std::uint64_t t0 = telemetry ? tel.now_ns() : 0;
      for (std::uint64_t m = first; m < last; ++m) {
        try {
          plane->run_registered(round_id, m, params);
        } catch (const std::exception& e) {
          if (!failed) {
            failed = true;
            error_machine = m;
            error_what = e.what();
          }
        } catch (...) {
          if (!failed) {
            failed = true;
            error_machine = m;
            error_what = "unknown exception";
          }
        }
      }
      if (telemetry) {
        tel.record_span(obs::Phase::kCallback, t0, tel.now_ns(), round_ix,
                        "machines [" + std::to_string(first) + ", " +
                            std::to_string(last) + ")");
      }

      std::vector<std::byte> bytes;
      t0 = telemetry ? tel.now_ns() : 0;
      plane->serialize_machines(first, last, bytes);
      if (telemetry) {
        tel.record_span(obs::Phase::kShardSerialize, t0, tel.now_ns(),
                        round_ix);
        t0 = tel.now_ns();
      }
      write_frame(ch, FrameKind::kShardData, shard, sequence, bytes);
      if (telemetry) {
        tel.record_span(obs::Phase::kShardTransport, t0, tel.now_ns(),
                        round_ix);
        // Everything this worker recorded this round ships back for the
        // coordinator's merged profile. The telemetry and status frames
        // themselves are written after this snapshot, so their wire
        // counters are only visible on the coordinator's receive side.
        write_frame(ch, FrameKind::kShardTelemetry, shard, sequence,
                    tel.serialize_since(tel_mark));
      }

      std::vector<std::byte> status;
      append_u64(status, failed ? 1 : 0);
      append_u64(status, error_machine);
      const auto text = status.size();
      status.resize(text + error_what.size());
      std::memcpy(status.data() + text, error_what.data(),
                  error_what.size());
      write_frame(ch, FrameKind::kShardStatus, shard, sequence, status);
    }
  } catch (...) {
    _exit(kWorkerTransportFailed);
  }
}

std::string describe_exit(int wait_status) {
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == kWorkerOk) return "exited cleanly";
    if (code == kWorkerTransportFailed) {
      return "failed on the job channel (exit " + std::to_string(code) +
             ")";
    }
    return "exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(wait_status)) {
    return std::string("killed by signal ") +
           std::to_string(WTERMSIG(wait_status));
  }
  return "ended abnormally";
}

}  // namespace

ProcessShardExecutor::ProcessShardExecutor(unsigned num_shards)
    : num_shards_(std::clamp(num_shards, 1u, kMaxShards)) {}

ProcessShardExecutor::~ProcessShardExecutor() { end_job(); }

void ProcessShardExecutor::run_machines(std::uint64_t first,
                                        std::uint64_t last,
                                        const MachineFn& fn) {
  // No data plane, nothing to exchange: degenerate serial semantics.
  std::exception_ptr error;
  std::uint64_t error_machine = 0;
  run_serial_range(first, last, fn, error, error_machine);
  if (error) std::rethrow_exception(error);
}

void ProcessShardExecutor::run_machines_sharded(std::uint64_t first,
                                                std::uint64_t last,
                                                const MachineFn& fn,
                                                ShardDataPlane* dp) {
  ++round_seq_;
  const std::uint64_t total = last - first;
  if (dp != nullptr && num_shards_ > 1 && total > 1) {
    throw ExecError(
        "process-shard: ad-hoc sharded rounds are not supported by "
        "persistent workers — register the round with the engine job API "
        "(define_round / invoke_round) instead of run_round");
  }
  run_machines(first, last, fn);
}

void ProcessShardExecutor::start_job(std::uint64_t num_machines,
                                     ShardJobPlane* plane) {
  MRLR_REQUIRE(!job_active_,
               "process-shard: start_job while a job is active");
  MRLR_REQUIRE(plane != nullptr, "process-shard: job needs a data plane");
  job_active_ = true;
  job_failed_ = false;
  const unsigned shards = static_cast<unsigned>(std::min<std::uint64_t>(
      num_shards_, std::max<std::uint64_t>(num_machines, 1)));
  local_range_ = {0, num_machines};
  if (shards <= 1) return;  // degenerate single-shard job: all local

  const auto ranges = partition(0, num_machines, shards);
  local_range_ = ranges[0];

  obs::Telemetry& tel = obs::Telemetry::instance();
  job_telemetry_ = tel.enabled();

  // Spawn every worker up front so each inherits the same job-start
  // snapshot: the graph, the parameters, and the registered rounds —
  // the one implicit transfer of the whole job. Everything after this
  // point crosses the process boundary on the frame protocol.
  workers_.reserve(shards - 1);
  for (unsigned s = 1; s < shards; ++s) {
    auto [parent_end, child_end] = make_socketpair_channel();
    std::fflush(nullptr);  // no buffered stdio duplicated into workers
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      std::string what = "process-shard: fork failed for shard " +
                         std::to_string(s) + " at job start: " +
                         std::strerror(err);
      fail_job(s, 0, what);
    }
    if (pid == 0) {
      // Worker: drop the coordinator ends we inherited, then serve.
      parent_end.close_now();
      for (Worker& w : workers_) w.channel.close_now();
      worker_service_loop(child_end, s, plane);  // never returns
    }
    // Coordinator: child_end closes when it goes out of scope, which is
    // what turns a dead worker into EOF instead of a hang.
    workers_.push_back(Worker{pid, std::move(parent_end), s,
                              ranges[s].first, ranges[s].second});
  }

  // Ship each worker its machine range. The setup frame is the last
  // read of coordinator state a worker ever validates against — from
  // here on rounds are fully wire-driven.
  std::uint64_t shipped = 0;
  for (Worker& w : workers_) {
    std::vector<std::byte> payload;
    append_u64(payload, w.first);
    append_u64(payload, w.last);
    append_u64(payload, num_machines);
    append_u64(payload, plane->registered_rounds());
    try {
      write_frame(w.channel, FrameKind::kJobSetup, w.shard, 0, payload);
    } catch (const ExecError& e) {
      fail_job(w.shard, 0, e.what());
    }
    shipped += payload.size();
  }
  if (job_telemetry_) {
    tel.add_counter("exec.workers_spawned", workers_.size());
    tel.add_counter("exec.state_bytes_shipped", shipped);
  }
}

void ProcessShardExecutor::run_job_round(std::uint64_t round_id,
                                         std::span<const std::uint64_t> params,
                                         std::uint64_t num_machines,
                                         const MachineFn& fn,
                                         ShardJobPlane* plane) {
  MRLR_REQUIRE(job_active_,
               "process-shard: run_job_round without start_job");
  if (job_failed_) {
    // Reconnect refusal: a respawned worker could not reconstruct the
    // dead worker's resident state mid-job, so once a job failed every
    // further round fails typed instead of silently recomputing.
    throw WorkerError(failed_shard_, round_seq_,
                      "process-shard: shard " +
                          std::to_string(failed_shard_) +
                          " already failed this job; refusing to run "
                          "further rounds (restart the job)");
  }
  const std::uint64_t sequence = ++round_seq_;
  if (workers_.empty()) {
    run_machines(local_range_.first, local_range_.second, fn);
    return;
  }

  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = job_telemetry_;

  // Ship every worker its round: id, invoke params, and the inbox state
  // of its machine range. Workers start their machines while shard 0
  // runs below.
  std::uint64_t shipped = 0;
  for (Worker& w : workers_) {
    std::vector<std::byte> payload;
    append_u64(payload, round_id);
    append_u64(payload, params.size());
    for (const std::uint64_t p : params) append_u64(payload, p);
    plane->serialize_round_input(w.first, w.last, payload);
    try {
      write_frame(w.channel, FrameKind::kRoundControl, w.shard, sequence,
                  payload);
    } catch (const ExecError& e) {
      fail_job(w.shard, sequence, e.what());
    }
    shipped += payload.size();
  }
  if (telemetry) tel.add_counter("exec.state_bytes_shipped", shipped);

  // Shard 0 runs here, in the coordinator: host-resident machine state
  // (notably the central machine's) persists across rounds.
  std::exception_ptr local_error;
  std::uint64_t local_error_machine = 0;
  run_serial_range(local_range_.first, local_range_.second, fn, local_error,
                   local_error_machine);

  // Collect shard results in shard order (= machine-id order, so the
  // apply order is deterministic even though workers finish whenever).
  std::uint64_t remote_error_machine = 0;
  std::string remote_error_what;
  bool remote_failed = false;
  for (Worker& w : workers_) {
    try {
      const std::uint64_t wait_start = telemetry ? tel.now_ns() : 0;
      Frame data = expect_frame(w.channel, FrameKind::kShardData, w.shard,
                                sequence);
      if (telemetry) {
        tel.record_span(obs::Phase::kWorkerWait, wait_start, tel.now_ns(),
                        sequence - 1, "shard " + std::to_string(w.shard));
      }
      plane->apply_machines(w.first, w.last, data.payload);
      if (telemetry) {
        // The worker only sends its span buffer when its inherited
        // enabled flag was set, which is exactly when job_telemetry_
        // is: the protocol shape is deterministic on both ends.
        Frame spans = expect_frame(w.channel, FrameKind::kShardTelemetry,
                                   w.shard, sequence);
        tel.merge_remote(spans.payload, w.shard);
      }
      Frame status = expect_frame(w.channel, FrameKind::kShardStatus,
                                  w.shard, sequence);
      std::span<const std::byte> p = status.payload;
      if (p.size() < 16) {
        throw TransportError(TransportError::Kind::kBadPayload,
                             "process-shard: status frame shorter than "
                             "its fixed fields");
      }
      const std::uint64_t flag = read_u64(p, 0);
      const std::uint64_t machine = read_u64(p, 8);
      p = p.subspan(16);
      if (flag > 1) {
        throw TransportError(TransportError::Kind::kBadPayload,
                             "process-shard: status frame has invalid "
                             "flag " + std::to_string(flag));
      }
      if (flag == 1 && !remote_failed) {
        remote_failed = true;
        remote_error_machine = machine;
        remote_error_what.assign(
            reinterpret_cast<const char*>(p.data()), p.size());
      }
    } catch (const ExecError& e) {
      fail_job(w.shard, sequence, e.what());
    }
  }

  // Executor contract: the lowest-id throwing machine wins. Shard 0's
  // machines precede every worker machine, and workers were scanned in
  // machine-id order.
  if (local_error) std::rethrow_exception(local_error);
  if (remote_failed) {
    throw ShardCallbackError(
        remote_error_machine, sequence,
        "process-shard: machine " + std::to_string(remote_error_machine) +
            " threw in round " + std::to_string(sequence) + ": " +
            remote_error_what);
  }
}

void ProcessShardExecutor::fail_job(std::uint32_t shard,
                                    std::uint64_t sequence,
                                    const std::string& what) {
  job_failed_ = true;
  failed_shard_ = shard;
  // Close every channel before reaping: a worker stuck writing into a
  // full socket dies with EPIPE instead of blocking waitpid forever.
  std::string failed_exit = "never spawned";
  for (Worker& w : workers_) w.channel.close_now();
  for (Worker& w : workers_) {
    int st = 0;
    ::waitpid(w.pid, &st, 0);
    if (w.shard == shard) failed_exit = describe_exit(st);
  }
  workers_.clear();
  throw WorkerError(shard, sequence,
                    "process-shard: shard " + std::to_string(shard) +
                        " worker failed in round " +
                        std::to_string(sequence) + " (" + failed_exit +
                        "): " + what);
}

void ProcessShardExecutor::end_job() {
  if (!job_active_) return;
  for (Worker& w : workers_) {
    try {
      write_frame(w.channel, FrameKind::kJobTeardown, w.shard,
                  round_seq_ + 1, {});
    } catch (...) {
      // Best effort: a dead worker is reaped below either way.
    }
  }
  for (Worker& w : workers_) w.channel.close_now();
  for (Worker& w : workers_) {
    int st = 0;
    ::waitpid(w.pid, &st, 0);
  }
  workers_.clear();
  job_active_ = false;
  job_failed_ = false;
  local_range_ = {0, 0};
}

}  // namespace mrlr::exec
