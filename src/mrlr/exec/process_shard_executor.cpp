#include "mrlr/exec/process_shard_executor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mrlr/exec/shard_worker.hpp"
#include "mrlr/exec/thread_pool_executor.hpp"
#include "mrlr/exec/worker_launcher.hpp"
#include "mrlr/obs/telemetry.hpp"
#include "mrlr/util/mix64.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::exec {

namespace {

constexpr unsigned kMaxShards = 256;

// Worker exit codes (distinct from anything a callback can produce:
// workers never return through main).
constexpr int kWorkerOk = 0;
constexpr int kWorkerTransportFailed = 113;

/// Contiguous partition of [first, last) into k near-equal ranges.
std::vector<std::pair<std::uint64_t, std::uint64_t>> partition(
    std::uint64_t first, std::uint64_t last, unsigned k) {
  const std::uint64_t total = last - first;
  const std::uint64_t base = total / k;
  const std::uint64_t rem = total % k;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  ranges.reserve(k);
  std::uint64_t at = first;
  for (unsigned i = 0; i < k; ++i) {
    const std::uint64_t len = base + (i < rem ? 1 : 0);
    ranges.emplace_back(at, at + len);
    at += len;
  }
  return ranges;
}

/// Job identity stamped into the handshake and bootstrap: a reconnect
/// or a crossed connection from another job fails the nonce check
/// instead of silently merging state. Uniqueness per (process, job) is
/// all that is needed — this is an identity, not a secret.
std::uint64_t next_job_nonce() {
  static std::uint64_t counter = 0;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return mix64(static_cast<std::uint64_t>(::getpid())) ^
         mix64(0x6A6F626E6F6E6365ull + ++counter) ^  // "jobnonce"
         mix64(static_cast<std::uint64_t>(now.count()));
}

std::string describe_exit(int wait_status) {
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code == kWorkerOk) return "exited cleanly";
    if (code == kWorkerTransportFailed) {
      return "failed on the job channel (exit " + std::to_string(code) +
             ")";
    }
    return "exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(wait_status)) {
    return std::string("killed by signal ") +
           std::to_string(WTERMSIG(wait_status));
  }
  return "ended abnormally";
}

}  // namespace

ProcessShardExecutor::ProcessShardExecutor(unsigned num_shards,
                                           unsigned num_threads)
    : num_shards_(std::clamp(num_shards, 1u, kMaxShards)),
      num_threads_(std::clamp(num_threads, 1u, 1024u)) {}

ProcessShardExecutor::~ProcessShardExecutor() { end_job(); }

void ProcessShardExecutor::run_machines(std::uint64_t first,
                                        std::uint64_t last,
                                        const MachineFn& fn) {
  // No data plane, nothing to exchange: these are pre-job (or
  // central-only) rounds, run in the coordinator. Outside a job the
  // local pool does not exist — forking workers later with live pool
  // threads would be unsafe — so they run serially; inside a job they
  // reuse shard 0's pool.
  std::exception_ptr error;
  std::uint64_t error_machine = 0;
  run_shard_range(local_pool_.get(), first, last, fn, error, error_machine);
  if (error) std::rethrow_exception(error);
}

void ProcessShardExecutor::run_machines_sharded(std::uint64_t first,
                                                std::uint64_t last,
                                                const MachineFn& fn,
                                                ShardDataPlane* dp) {
  ++round_seq_;
  const std::uint64_t total = last - first;
  if (dp != nullptr && num_shards_ > 1 && total > 1) {
    throw ExecError(
        "process-shard: ad-hoc sharded rounds are not supported by "
        "persistent workers — register the round with the engine job API "
        "(define_round / invoke_round) instead of run_round");
  }
  run_machines(first, last, fn);
}

void ProcessShardExecutor::start_job(std::uint64_t num_machines,
                                     ShardJobPlane* plane) {
  MRLR_REQUIRE(!job_active_,
               "process-shard: start_job while a job is active");
  MRLR_REQUIRE(plane != nullptr, "process-shard: job needs a data plane");
  job_active_ = true;
  job_failed_ = false;
  const unsigned shards = static_cast<unsigned>(std::min<std::uint64_t>(
      num_shards_, std::max<std::uint64_t>(num_machines, 1)));
  local_range_ = {0, num_machines};
  if (shards <= 1) {
    // Degenerate single-shard job: all machines local, no forks — the
    // shard-local pool can be built immediately.
    if (num_threads_ > 1) {
      local_pool_ = std::make_unique<ThreadPoolExecutor>(num_threads_);
    }
    return;
  }

  const auto ranges = partition(0, num_machines, shards);
  local_range_ = ranges[0];

  obs::Telemetry& tel = obs::Telemetry::instance();
  job_telemetry_ = tel.enabled();

  // Launch mode is ambient (worker_launcher.hpp): fork local children,
  // or connect to --workers endpoints. Everything below this point is
  // identical for both — handshake, wire bootstrap, ack — so the fork
  // path exercises exactly what a remote worker sees.
  std::unique_ptr<WorkerLauncher> launcher =
      make_worker_launcher(plane, num_machines, shards);
  const std::uint64_t nonce = next_job_nonce();
  const std::chrono::milliseconds timeout = launcher->bootstrap_timeout();

  std::uint64_t flags = launcher->ships_job_state() ? kBootstrapCarriesSpec
                                                    : std::uint64_t{0};
  if (job_telemetry_) flags |= kBootstrapTelemetry;
  std::vector<std::byte> spec;
  if (launcher->ships_job_state()) {
    const ProcessBackendConfig* cfg = process_backend_config();
    if (cfg == nullptr || cfg->job_spec.empty()) {
      throw ExecError(
          "process-shard: TCP workers reconstruct the job from a shipped "
          "spec, but no job spec is installed — drivers launched outside "
          "the jobs layer cannot use --workers");
    }
    spec = cfg->job_spec;
  }
  std::vector<std::string> round_labels;
  round_labels.reserve(plane->registered_rounds());
  for (std::uint64_t i = 0; i < plane->registered_rounds(); ++i) {
    round_labels.emplace_back(plane->round_label(i));
  }

  // Phase 1 — launch every worker, handshake, and ship its bootstrap.
  // Acks are collected in a second pass so TCP workers replay their job
  // state concurrently instead of one after another.
  workers_.reserve(shards - 1);
  std::uint64_t shipped = 0;
  for (unsigned s = 1; s < shards; ++s) {
    try {
      LaunchedWorker lw = launcher->launch(s, nonce);
      workers_.push_back(Worker{lw.pid, std::move(lw.channel), s,
                                ranges[s].first, ranges[s].second});
      Worker& w = workers_.back();
      // A silent peer during handshake/bootstrap must fail typed, not
      // hang: arm the read timeout until the ack is in (fork-launched
      // children report death via EOF and use no timeout).
      if (timeout.count() > 0) w.channel->set_read_timeout(timeout);
      handshake_connect(*w.channel, s, nonce);
      JobBootstrap b;
      b.first = w.first;
      b.last = w.last;
      b.machines = num_machines;
      b.flags = flags;
      b.nonce = nonce;
      b.threads = num_threads_;
      b.round_labels = round_labels;
      b.job_spec = spec;
      const std::vector<std::byte> payload = encode_bootstrap(b);
      write_frame(*w.channel, FrameKind::kJobSetup, s, 0, payload);
      shipped += payload.size();
    } catch (const ExecError& e) {
      fail_job(s, 0, e.what());
    }
  }

  // Phase 2 — every worker validated the bootstrap against its own job
  // plane and either accepted or refused with a message.
  for (Worker& w : workers_) {
    try {
      expect_bootstrap_ack(*w.channel, w.shard);
      if (timeout.count() > 0) {
        w.channel->set_read_timeout(std::chrono::milliseconds(0));
      }
    } catch (const ExecError& e) {
      fail_job(w.shard, 0, e.what());
    }
  }

  if (job_telemetry_) {
    tel.add_counter("exec.workers_spawned", workers_.size());
    tel.add_counter("exec.state_bytes_shipped", shipped);
    tel.add_counter("exec.bootstrap_bytes_shipped", shipped);
    // Concurrent callback threads job-wide: every shard (this process
    // and each worker) runs its range on a num_threads_-wide pool.
    tel.add_counter("exec.worker_threads",
                    static_cast<std::uint64_t>(num_threads_) * shards);
  }

  // Shard 0's own pool. Built only now, after every worker has forked:
  // a fork taken while pool threads are live could duplicate held locks
  // into the child.
  if (num_threads_ > 1) {
    local_pool_ = std::make_unique<ThreadPoolExecutor>(num_threads_);
  }
}

void ProcessShardExecutor::run_job_round(std::uint64_t round_id,
                                         std::span<const std::uint64_t> params,
                                         std::uint64_t num_machines,
                                         const MachineFn& fn,
                                         ShardJobPlane* plane) {
  // The machine count was fixed at start_job; the per-round value is
  // only part of the interface so other executors can size their runs.
  (void)num_machines;
  MRLR_REQUIRE(job_active_,
               "process-shard: run_job_round without start_job");
  if (job_failed_) {
    // Reconnect refusal: a respawned worker could not reconstruct the
    // dead worker's resident state mid-job, so once a job failed every
    // further round fails typed instead of silently recomputing.
    throw WorkerError(failed_shard_, round_seq_,
                      "process-shard: shard " +
                          std::to_string(failed_shard_) +
                          " already failed this job; refusing to run "
                          "further rounds (restart the job)");
  }
  const std::uint64_t sequence = ++round_seq_;
  if (workers_.empty()) {
    run_machines(local_range_.first, local_range_.second, fn);
    return;
  }

  obs::Telemetry& tel = obs::Telemetry::instance();
  const bool telemetry = job_telemetry_;

  // Ship every worker its round: id, invoke params, and the inbox state
  // of its machine range. Workers start their machines while shard 0
  // runs below.
  std::uint64_t shipped = 0;
  for (Worker& w : workers_) {
    std::vector<std::byte> payload;
    append_u64(payload, round_id);
    append_u64(payload, params.size());
    for (const std::uint64_t p : params) append_u64(payload, p);
    plane->serialize_round_input(w.first, w.last, payload);
    try {
      write_frame(*w.channel, FrameKind::kRoundControl, w.shard, sequence,
                  payload);
    } catch (const ExecError& e) {
      fail_job(w.shard, sequence, e.what());
    }
    shipped += payload.size();
  }
  if (telemetry) tel.add_counter("exec.state_bytes_shipped", shipped);

  // Shard 0 runs here, in the coordinator: host-resident machine state
  // (notably the central machine's) persists across rounds. With
  // num_threads_ > 1 the range runs on shard 0's local pool, mirroring
  // what every worker does with its own range.
  std::exception_ptr local_error;
  std::uint64_t local_error_machine = 0;
  run_shard_range(local_pool_.get(), local_range_.first, local_range_.second,
                  fn, local_error, local_error_machine);

  // Collect shard results in shard order (= machine-id order, so the
  // apply order is deterministic even though workers finish whenever).
  std::uint64_t remote_error_machine = 0;
  std::string remote_error_what;
  bool remote_failed = false;
  for (Worker& w : workers_) {
    try {
      const std::uint64_t wait_start = telemetry ? tel.now_ns() : 0;
      Frame data = expect_frame(*w.channel, FrameKind::kShardData, w.shard,
                                sequence);
      if (telemetry) {
        tel.record_span(obs::Phase::kWorkerWait, wait_start, tel.now_ns(),
                        sequence - 1, "shard " + std::to_string(w.shard));
      }
      plane->apply_machines(w.first, w.last, data.payload);
      if (telemetry) {
        // The worker only sends its span buffer when the bootstrap's
        // telemetry flag was set, which is exactly when job_telemetry_
        // is: the protocol shape is deterministic on both ends.
        Frame spans = expect_frame(*w.channel, FrameKind::kShardTelemetry,
                                   w.shard, sequence);
        tel.merge_remote(spans.payload, w.shard);
      }
      Frame status = expect_frame(*w.channel, FrameKind::kShardStatus,
                                  w.shard, sequence);
      std::span<const std::byte> p = status.payload;
      if (p.size() < 16) {
        throw TransportError(TransportError::Kind::kBadPayload,
                             "process-shard: status frame shorter than "
                             "its fixed fields");
      }
      const std::uint64_t flag = read_u64(p, 0);
      const std::uint64_t machine = read_u64(p, 8);
      p = p.subspan(16);
      if (flag > 1) {
        throw TransportError(TransportError::Kind::kBadPayload,
                             "process-shard: status frame has invalid "
                             "flag " + std::to_string(flag));
      }
      if (flag == 1 && !remote_failed) {
        remote_failed = true;
        remote_error_machine = machine;
        remote_error_what.assign(
            reinterpret_cast<const char*>(p.data()), p.size());
      }
    } catch (const ExecError& e) {
      fail_job(w.shard, sequence, e.what());
    }
  }

  // Executor contract: the lowest-id throwing machine wins. Shard 0's
  // machines precede every worker machine, and workers were scanned in
  // machine-id order.
  if (local_error) std::rethrow_exception(local_error);
  if (remote_failed) {
    throw ShardCallbackError(
        remote_error_machine, sequence,
        "process-shard: machine " + std::to_string(remote_error_machine) +
            " threw in round " + std::to_string(sequence) + ": " +
            remote_error_what);
  }
}

void ProcessShardExecutor::fail_job(std::uint32_t shard,
                                    std::uint64_t sequence,
                                    const std::string& what) {
  job_failed_ = true;
  failed_shard_ = shard;
  // Close every channel before reaping: a worker stuck writing into a
  // full socket dies with EPIPE instead of blocking waitpid forever.
  std::string failed_exit = "never launched";
  for (Worker& w : workers_) w.channel->close_now();
  for (Worker& w : workers_) {
    if (w.pid > 0) {
      int st = 0;
      ::waitpid(w.pid, &st, 0);
      if (w.shard == shard) failed_exit = describe_exit(st);
    } else if (w.shard == shard) {
      failed_exit = "remote worker";
    }
  }
  workers_.clear();
  throw WorkerError(shard, sequence,
                    "process-shard: shard " + std::to_string(shard) +
                        " worker failed in round " +
                        std::to_string(sequence) + " (" + failed_exit +
                        "): " + what);
}

void ProcessShardExecutor::end_job() {
  if (!job_active_) return;
  for (Worker& w : workers_) {
    try {
      write_frame(*w.channel, FrameKind::kJobTeardown, w.shard,
                  round_seq_ + 1, {});
    } catch (...) {
      // Best effort: a dead worker is reaped below either way.
    }
  }
  for (Worker& w : workers_) w.channel->close_now();
  for (Worker& w : workers_) {
    if (w.pid > 0) {
      int st = 0;
      ::waitpid(w.pid, &st, 0);
    }
  }
  workers_.clear();
  // The pool dies with the job: the next start_job forks its workers
  // before rebuilding it, keeping forks free of live pool threads.
  local_pool_.reset();
  job_active_ = false;
  job_failed_ = false;
  local_range_ = {0, 0};
}

}  // namespace mrlr::exec
