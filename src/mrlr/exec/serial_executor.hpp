#pragma once
// The sequential backend: machines run in ascending id order on the
// calling thread, exactly as the engine did before the exec layer.

#include "mrlr/exec/executor.hpp"

namespace mrlr::exec {

class SerialExecutor final : public Executor {
 public:
  void run_machines(std::uint64_t first, std::uint64_t last,
                    const MachineFn& fn) override;
  std::string_view name() const override { return "serial"; }
  unsigned num_threads() const override { return 1; }
};

}  // namespace mrlr::exec
