#pragma once
// Execution backends for the round engine: how the M simulated machines
// of one synchronous round are mapped onto OS threads.
//
// Machines within a round are data-independent — each reads only its own
// inbox and writes only its own staging outbox and accounting slots — so
// an Executor is free to run them in any order and on any thread. The
// engine restores full determinism after the barrier by merging staged
// messages in machine-id order, which makes traces, metrics, and
// algorithm outputs byte-identical across backends and thread counts.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace mrlr::exec {

/// Host-side view of the per-machine state an out-of-process backend
/// must ship across the round barrier. The engine implements it: a
/// worker process serializes the machines it ran (their staged message
/// arenas and accounting slots) and the coordinator applies the bytes
/// into its own engine, after which the ordinary id-ordered merge
/// proceeds exactly as it would in-process. In-process backends never
/// touch it.
class ShardDataPlane {
 public:
  virtual ~ShardDataPlane() = default;

  /// Appends the wire encoding of machines [first, last) to `out`
  /// (worker side, after the callbacks ran).
  virtual void serialize_machines(std::uint64_t first, std::uint64_t last,
                                  std::vector<std::byte>& out) const = 0;

  /// Installs the encoding produced by serialize_machines for the same
  /// range (coordinator side). Must validate `bytes` and throw
  /// TransportError(kBadPayload) on anything malformed.
  virtual void apply_machines(std::uint64_t first, std::uint64_t last,
                              std::span<const std::byte> bytes) = 0;
};

/// Abstract machine-range runner.
class Executor {
 public:
  /// Per-machine callback; the argument is the machine id.
  using MachineFn = std::function<void(std::uint64_t)>;

  virtual ~Executor() = default;

  /// Invokes fn(m) exactly once for every m in [first, last). All
  /// invocations have completed (the round barrier) when this returns.
  /// No ordering is promised between machines; callbacks must touch only
  /// machine-disjoint state. If callbacks throw, the exception of the
  /// lowest-id throwing machine is rethrown after the barrier.
  virtual void run_machines(std::uint64_t first, std::uint64_t last,
                            const MachineFn& fn) = 0;

  /// run_machines with a data plane for out-of-process backends: the
  /// engine calls this form so a sharding backend can ship callback
  /// effects (staged messages, accounting) back to the coordinator.
  /// In-process backends ignore the data plane — shared memory already
  /// is the data plane.
  virtual void run_machines_sharded(std::uint64_t first, std::uint64_t last,
                                    const MachineFn& fn,
                                    ShardDataPlane* data_plane) {
    (void)data_plane;
    run_machines(first, last, fn);
  }

  /// Backend name for traces and --help output.
  virtual std::string_view name() const = 0;

  /// Number of OS threads that may run callbacks concurrently (>= 1).
  virtual unsigned num_threads() const = 0;
};

/// Builds a backend from the shared `num_threads` knob (Topology,
/// MrParams, --threads all use the same convention):
///   1  -> SerialExecutor (the historical sequential simulation),
///   N>1-> ThreadPoolExecutor with N persistent workers (clamped to
///         1024 — OS thread counts beyond that only add overhead;
///         Executor::num_threads() reports the effective value),
///   0  -> ThreadPoolExecutor sized to the hardware.
std::unique_ptr<Executor> make_executor(std::uint64_t num_threads);

/// As above, plus the `num_shards` knob: when num_shards > 1 the result
/// is a ProcessShardExecutor with that many forked worker shards per
/// round (machines run serially within each shard, so num_threads must
/// be 0 or 1 — the two knobs do not compose yet).
std::unique_ptr<Executor> make_executor(std::uint64_t num_threads,
                                        std::uint64_t num_shards);

}  // namespace mrlr::exec
