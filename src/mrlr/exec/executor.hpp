#pragma once
// Execution backends for the round engine: how the M simulated machines
// of one synchronous round are mapped onto OS threads.
//
// Machines within a round are data-independent — each reads only its own
// inbox and writes only its own staging outbox and accounting slots — so
// an Executor is free to run them in any order and on any thread. The
// engine restores full determinism after the barrier by merging staged
// messages in machine-id order, which makes traces, metrics, and
// algorithm outputs byte-identical across backends and thread counts.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace mrlr::exec {

/// Host-side view of the per-machine state an out-of-process backend
/// must ship across the round barrier. The engine implements it: a
/// worker process serializes the machines it ran (their staged message
/// arenas and accounting slots) and the coordinator applies the bytes
/// into its own engine, after which the ordinary id-ordered merge
/// proceeds exactly as it would in-process. In-process backends never
/// touch it.
class ShardDataPlane {
 public:
  virtual ~ShardDataPlane() = default;

  /// Appends the wire encoding of machines [first, last) to `out`
  /// (worker side, after the callbacks ran).
  virtual void serialize_machines(std::uint64_t first, std::uint64_t last,
                                  std::vector<std::byte>& out) const = 0;

  /// Installs the encoding produced by serialize_machines for the same
  /// range (coordinator side). Must validate `bytes` and throw
  /// TransportError(kBadPayload) on anything malformed.
  virtual void apply_machines(std::uint64_t first, std::uint64_t last,
                              std::span<const std::byte> bytes) = 0;
};

/// Job-scoped extension of the data plane for backends with persistent
/// workers: rounds are *registered* (closures defined before the job
/// starts, inherited by workers at spawn) and then *invoked* by id with
/// a small parameter vector, so a long-lived worker never needs a
/// closure shipped to it. Per-round inputs (each machine's inbox) flow
/// coordinator -> worker through serialize_round_input /
/// apply_round_input; results flow back through the inherited
/// serialize_machines / apply_machines pair. After the setup frame a
/// worker reads nothing from coordinator memory — every round's inputs
/// arrive on the wire.
class ShardJobPlane : public ShardDataPlane {
 public:
  /// Appends the wire encoding of the round inputs (delivered inbox
  /// frames and words) of machines [first, last) to `out`
  /// (coordinator side, before the round runs).
  virtual void serialize_round_input(std::uint64_t first, std::uint64_t last,
                                     std::vector<std::byte>& out) const = 0;

  /// Installs round inputs produced by serialize_round_input for the
  /// same range and resets the range's per-round scratch (worker side).
  /// Must validate `bytes` and throw TransportError(kBadPayload) on
  /// anything malformed.
  virtual void apply_round_input(std::uint64_t first, std::uint64_t last,
                                 std::span<const std::byte> bytes) = 0;

  /// Runs the registered round `round_id` on machine `machine` with the
  /// invoke parameters (worker side, and coordinator side for shard 0).
  virtual void run_registered(std::uint64_t round_id, std::uint64_t machine,
                              std::span<const std::uint64_t> params) = 0;

  /// Number of rounds registered before the job started; workers
  /// validate this against the setup frame so a coordinator/worker
  /// registry mismatch fails typed instead of invoking the wrong round.
  virtual std::uint64_t registered_rounds() const = 0;

  /// Label of registered round i (i < registered_rounds()), in
  /// registration order. The job bootstrap ships the full label table so
  /// a worker whose registry diverged in *content* — not just count —
  /// refuses the job instead of invoking the wrong closure.
  virtual std::string_view round_label(std::uint64_t i) const = 0;
};

/// Abstract machine-range runner.
class Executor {
 public:
  /// Per-machine callback; the argument is the machine id.
  using MachineFn = std::function<void(std::uint64_t)>;

  virtual ~Executor() = default;

  /// Invokes fn(m) exactly once for every m in [first, last). All
  /// invocations have completed (the round barrier) when this returns.
  /// No ordering is promised between machines; callbacks must touch only
  /// machine-disjoint state. If callbacks throw, the exception of the
  /// lowest-id throwing machine is rethrown after the barrier.
  virtual void run_machines(std::uint64_t first, std::uint64_t last,
                            const MachineFn& fn) = 0;

  /// run_machines with a data plane for out-of-process backends: the
  /// engine calls this form so a sharding backend can ship callback
  /// effects (staged messages, accounting) back to the coordinator.
  /// In-process backends ignore the data plane — shared memory already
  /// is the data plane.
  virtual void run_machines_sharded(std::uint64_t first, std::uint64_t last,
                                    const MachineFn& fn,
                                    ShardDataPlane* data_plane) {
    (void)data_plane;
    run_machines(first, last, fn);
  }

  /// Starts a persistent job: `plane` owns the registered rounds and
  /// the machine-range state for [0, num_machines). Backends with
  /// long-lived workers spawn them here (exactly once per job) and ship
  /// each worker its range over setup frames; in-process backends need
  /// no job lifecycle and ignore the call.
  virtual void start_job(std::uint64_t num_machines, ShardJobPlane* plane) {
    (void)num_machines;
    (void)plane;
  }

  /// Runs one registered round of the active job. `fn` is the
  /// coordinator-local form of the round (id -> run_registered bound by
  /// the caller); in-process backends just run it over every machine.
  /// Worker-backed backends ship (round_id, params, round inputs) to
  /// each worker instead and run only their local machines through
  /// `fn`. The exception contract matches run_machines (lowest-id
  /// throwing machine wins).
  virtual void run_job_round(std::uint64_t round_id,
                             std::span<const std::uint64_t> params,
                             std::uint64_t num_machines, const MachineFn& fn,
                             ShardJobPlane* plane) {
    (void)round_id;
    (void)params;
    (void)plane;
    run_machines(0, num_machines, fn);
  }

  /// Ends the active job: worker-backed backends send teardown frames
  /// and reap their workers. Must be safe to call without a job and
  /// after a job failure; must not throw.
  virtual void end_job() {}

  /// Backend name for traces and --help output.
  virtual std::string_view name() const = 0;

  /// Number of OS threads that may run callbacks concurrently (>= 1).
  virtual unsigned num_threads() const = 0;
};

/// Builds a backend from the shared `num_threads` knob (Topology,
/// MrParams, --threads all use the same convention):
///   1  -> SerialExecutor (the historical sequential simulation),
///   N>1-> ThreadPoolExecutor with N persistent workers (clamped to
///         1024 — OS thread counts beyond that only add overhead;
///         Executor::num_threads() reports the effective value),
///   0  -> ThreadPoolExecutor sized to the hardware.
std::unique_ptr<Executor> make_executor(std::uint64_t num_threads);

/// As above, plus the `num_shards` knob: when num_shards > 1 the result
/// is a ProcessShardExecutor with that many persistent per-job worker
/// shards. The knobs compose: each shard (the coordinator's shard 0 and
/// every worker) runs its machine range on a shard-local thread pool of
/// the resolved num_threads (1 = serial within the shard, 0 = hardware),
/// giving up to K x T concurrent callbacks with traces, metrics, and
/// results byte-identical to serial.
std::unique_ptr<Executor> make_executor(std::uint64_t num_threads,
                                        std::uint64_t num_shards);

}  // namespace mrlr::exec
