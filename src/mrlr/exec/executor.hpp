#pragma once
// Execution backends for the round engine: how the M simulated machines
// of one synchronous round are mapped onto OS threads.
//
// Machines within a round are data-independent — each reads only its own
// inbox and writes only its own staging outbox and accounting slots — so
// an Executor is free to run them in any order and on any thread. The
// engine restores full determinism after the barrier by merging staged
// messages in machine-id order, which makes traces, metrics, and
// algorithm outputs byte-identical across backends and thread counts.

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

namespace mrlr::exec {

/// Abstract machine-range runner.
class Executor {
 public:
  /// Per-machine callback; the argument is the machine id.
  using MachineFn = std::function<void(std::uint64_t)>;

  virtual ~Executor() = default;

  /// Invokes fn(m) exactly once for every m in [first, last). All
  /// invocations have completed (the round barrier) when this returns.
  /// No ordering is promised between machines; callbacks must touch only
  /// machine-disjoint state. If callbacks throw, the exception of the
  /// lowest-id throwing machine is rethrown after the barrier.
  virtual void run_machines(std::uint64_t first, std::uint64_t last,
                            const MachineFn& fn) = 0;

  /// Backend name for traces and --help output.
  virtual std::string_view name() const = 0;

  /// Number of OS threads that may run callbacks concurrently (>= 1).
  virtual unsigned num_threads() const = 0;
};

/// Builds a backend from the shared `num_threads` knob (Topology,
/// MrParams, --threads all use the same convention):
///   1  -> SerialExecutor (the historical sequential simulation),
///   N>1-> ThreadPoolExecutor with N persistent workers (clamped to
///         1024 — OS thread counts beyond that only add overhead;
///         Executor::num_threads() reports the effective value),
///   0  -> ThreadPoolExecutor sized to the hardware.
std::unique_ptr<Executor> make_executor(std::uint64_t num_threads);

}  // namespace mrlr::exec
