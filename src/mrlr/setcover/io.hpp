#pragma once
// Plain-text set system I/O so examples and the CLI can load
// user-provided cover instances.
//
// Format: header "n m [weighted]" (n sets over universe [m]); then one
// line per set: "[w] k e1 e2 ... ek" (weight first when the header says
// weighted). '#' lines are comments.
//
// read_set_system shares the graph reader's error taxonomy: a garbage
// or truncated header, a short set row, an element outside the
// universe, or a missing/non-finite/non-positive weight throws
// graph::ParseError instead of yielding a silently empty system.

#include <iosfwd>

#include "mrlr/graph/io.hpp"
#include "mrlr/setcover/set_system.hpp"

namespace mrlr::setcover {

using graph::ParseError;

void write_set_system(const SetSystem& sys, std::ostream& os);

/// Parses the format written by write_set_system. Throws ParseError on
/// malformed input.
SetSystem read_set_system(std::istream& is);

}  // namespace mrlr::setcover
