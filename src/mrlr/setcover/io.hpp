#pragma once
// Plain-text set system I/O so examples and the CLI can load
// user-provided cover instances.
//
// Format: header "n m [weighted]" (n sets over universe [m]); then one
// line per set: "[w] k e1 e2 ... ek" (weight first when the header says
// weighted). '#' lines are comments.

#include <iosfwd>

#include "mrlr/setcover/set_system.hpp"

namespace mrlr::setcover {

void write_set_system(const SetSystem& sys, std::ostream& os);

SetSystem read_set_system(std::istream& is);

}  // namespace mrlr::setcover
