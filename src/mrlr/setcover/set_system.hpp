#pragma once
// Weighted set systems for the set cover problems (Sections 2 and 4).
//
// Notation follows the paper: n sets S_1..S_n over universe U = [m] with
// positive weights w_1..w_n. The *frequency* of element j is the number
// of sets containing it; f is the maximum frequency. Delta is the largest
// set size. The dual view T_j = { i : j in S_i } ("element incidence") is
// precomputed because both the f-approximation (which distributes the
// dual sets across machines, Theorem 2.4) and the validators need it.

#include <cstdint>
#include <span>
#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::setcover {

using SetId = std::uint32_t;
using ElementId = std::uint32_t;

class SetSystem {
 public:
  /// Builds a system of `sets` over universe [universe_size] with unit
  /// weights.
  SetSystem(std::uint64_t universe_size,
            std::vector<std::vector<ElementId>> sets);

  /// As above with explicit positive weights (one per set).
  SetSystem(std::uint64_t universe_size,
            std::vector<std::vector<ElementId>> sets,
            std::vector<double> weights);

  std::uint64_t num_sets() const { return sets_.size(); }
  std::uint64_t universe_size() const { return m_; }

  std::span<const ElementId> set(SetId i) const { return sets_[i]; }
  double weight(SetId i) const { return weights_[i]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Dual incidence T_j: ids of all sets containing element j.
  std::span<const SetId> sets_containing(ElementId j) const {
    return element_sets_[j];
  }

  /// Maximum frequency f = max_j |T_j|.
  std::uint64_t max_frequency() const { return max_frequency_; }

  /// Delta = max_i |S_i|.
  std::uint64_t max_set_size() const { return max_set_size_; }

  /// Sum over all sets of |S_i| (the paper's Phi upper bound in Thm 4.5).
  std::uint64_t total_incidences() const { return total_incidences_; }

  double max_weight() const { return max_weight_; }
  double min_weight() const { return min_weight_; }

  /// True if every element belongs to at least one set (a cover exists).
  bool coverable() const;

  /// The weighted vertex cover instance of a graph: one set per vertex
  /// (covering its incident edges), universe = edges, f = 2.
  static SetSystem vertex_cover_instance(
      const graph::Graph& g, const std::vector<double>& vertex_weights);

 private:
  void build_dual();

  std::uint64_t m_;
  std::vector<std::vector<ElementId>> sets_;
  std::vector<double> weights_;
  std::vector<std::vector<SetId>> element_sets_;
  std::uint64_t max_frequency_ = 0;
  std::uint64_t max_set_size_ = 0;
  std::uint64_t total_incidences_ = 0;
  double max_weight_ = 0.0;
  double min_weight_ = 0.0;
};

}  // namespace mrlr::setcover
