#include "mrlr/setcover/validate.hpp"

#include <algorithm>
#include <unordered_set>

namespace mrlr::setcover {

bool is_cover(const SetSystem& sys, const std::vector<SetId>& chosen) {
  std::vector<char> covered(sys.universe_size(), 0);
  for (const SetId i : chosen) {
    if (i >= sys.num_sets()) return false;
    for (const ElementId j : sys.set(i)) covered[j] = 1;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](char c) { return c != 0; });
}

double cover_weight(const SetSystem& sys, const std::vector<SetId>& chosen) {
  std::unordered_set<SetId> distinct(chosen.begin(), chosen.end());
  double s = 0.0;
  for (const SetId i : distinct) s += sys.weight(i);
  return s;
}

bool is_minimal_cover(const SetSystem& sys,
                      const std::vector<SetId>& chosen) {
  if (!is_cover(sys, chosen)) return false;
  // coverage count per element
  std::vector<std::uint32_t> count(sys.universe_size(), 0);
  for (const SetId i : chosen) {
    for (const ElementId j : sys.set(i)) ++count[j];
  }
  for (const SetId i : chosen) {
    const bool redundant =
        std::all_of(sys.set(i).begin(), sys.set(i).end(),
                    [&](ElementId j) { return count[j] >= 2; });
    if (redundant) return false;
  }
  return true;
}

std::vector<SetId> prune_cover(const SetSystem& sys,
                               std::vector<SetId> chosen) {
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  std::vector<std::uint32_t> count(sys.universe_size(), 0);
  for (const SetId i : chosen) {
    for (const ElementId j : sys.set(i)) ++count[j];
  }
  // Try to drop sets from most expensive to cheapest.
  std::vector<SetId> order = chosen;
  std::sort(order.begin(), order.end(), [&](SetId a, SetId b) {
    return sys.weight(a) > sys.weight(b);
  });
  std::unordered_set<SetId> kept(chosen.begin(), chosen.end());
  for (const SetId i : order) {
    const bool redundant =
        std::all_of(sys.set(i).begin(), sys.set(i).end(),
                    [&](ElementId j) { return count[j] >= 2; });
    if (redundant) {
      kept.erase(i);
      for (const ElementId j : sys.set(i)) --count[j];
    }
  }
  return {kept.begin(), kept.end()};
}

}  // namespace mrlr::setcover
