#pragma once
// Set system generators for the two regimes the paper distinguishes:
// Theorem 2.4 targets n >> m handled via bounded frequency f; Theorem 4.6
// targets m << n with many sets of bounded size Delta.

#include <cstdint>

#include "mrlr/graph/generators.hpp"
#include "mrlr/setcover/set_system.hpp"
#include "mrlr/util/rng.hpp"

namespace mrlr::setcover {

/// System where every element appears in at least 1 and at most f sets,
/// and some element attains frequency exactly f (so max_frequency() == f).
/// Weights drawn from `dist`. Coverage is guaranteed.
SetSystem bounded_frequency(std::uint64_t num_sets, std::uint64_t universe,
                            std::uint64_t f, graph::WeightDist dist,
                            Rng& rng);

/// Many-sets regime (m << n): `num_sets` random subsets of [universe],
/// each of size in [1, max_set_size], plus a forced partition of the
/// universe into cheap "backbone" sets so a low-cost cover exists and the
/// instance is always coverable. The backbone sets get weight ~1; the
/// rest get weights from `dist` (typically much larger).
SetSystem many_sets(std::uint64_t num_sets, std::uint64_t universe,
                    std::uint64_t max_set_size, graph::WeightDist dist,
                    Rng& rng);

/// Instance with a *planted* cover: `opt_sets` disjoint cheap sets exactly
/// partition the universe (their total weight is returned through
/// planted_cost); `decoys` additional expensive overlapping sets are added.
/// Gives a known upper bound on OPT for approximation-ratio reporting.
SetSystem planted_cover(std::uint64_t opt_sets, std::uint64_t decoys,
                        std::uint64_t universe, Rng& rng,
                        double* planted_cost);

}  // namespace mrlr::setcover
