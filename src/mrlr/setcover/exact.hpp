#pragma once
// Exact solvers for small instances, used to certify approximation ratios
// in tests and the quality bench (FIG-Q in DESIGN.md).

#include <cstdint>
#include <optional>
#include <vector>

#include "mrlr/graph/graph.hpp"
#include "mrlr/setcover/set_system.hpp"

namespace mrlr::setcover {

/// Minimum-weight set cover by subset DP over the universe.
/// Requires universe_size <= 24 (memory 2^m doubles). Returns nullopt if
/// the instance is not coverable.
std::optional<double> exact_min_cover_weight(const SetSystem& sys);

/// As above, also returning one optimal selection.
struct ExactCover {
  double weight = 0.0;
  std::vector<SetId> sets;
};
std::optional<ExactCover> exact_min_cover(const SetSystem& sys);

/// Minimum-weight vertex cover by brute force over vertex subsets.
/// Requires num_vertices <= 24.
double exact_min_vertex_cover_weight(const graph::Graph& g,
                                     const std::vector<double>& weights);

}  // namespace mrlr::setcover
