#include "mrlr/setcover/set_system.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::setcover {

SetSystem::SetSystem(std::uint64_t universe_size,
                     std::vector<std::vector<ElementId>> sets)
    : SetSystem(universe_size, std::move(sets), {}) {}

SetSystem::SetSystem(std::uint64_t universe_size,
                     std::vector<std::vector<ElementId>> sets,
                     std::vector<double> weights)
    : m_(universe_size), sets_(std::move(sets)), weights_(std::move(weights)) {
  if (weights_.empty()) {
    weights_.assign(sets_.size(), 1.0);
  }
  MRLR_REQUIRE(weights_.size() == sets_.size(),
               "one weight per set required");
  for (const double w : weights_) {
    MRLR_REQUIRE(w > 0.0, "set weights must be positive");
  }
  build_dual();
}

void SetSystem::build_dual() {
  element_sets_.assign(m_, {});
  max_set_size_ = 0;
  total_incidences_ = 0;
  for (SetId i = 0; i < sets_.size(); ++i) {
    auto& s = sets_[i];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    for (const ElementId j : s) {
      MRLR_REQUIRE(j < m_, "set element outside the universe");
      element_sets_[j].push_back(i);
    }
    max_set_size_ = std::max<std::uint64_t>(max_set_size_, s.size());
    total_incidences_ += s.size();
  }
  max_frequency_ = 0;
  for (const auto& t : element_sets_) {
    max_frequency_ = std::max<std::uint64_t>(max_frequency_, t.size());
  }
  max_weight_ = 0.0;
  min_weight_ = weights_.empty() ? 0.0 : weights_[0];
  for (const double w : weights_) {
    max_weight_ = std::max(max_weight_, w);
    min_weight_ = std::min(min_weight_, w);
  }
}

bool SetSystem::coverable() const {
  return std::all_of(element_sets_.begin(), element_sets_.end(),
                     [](const auto& t) { return !t.empty(); });
}

SetSystem SetSystem::vertex_cover_instance(
    const graph::Graph& g, const std::vector<double>& vertex_weights) {
  MRLR_REQUIRE(vertex_weights.size() == g.num_vertices(),
               "one weight per vertex required");
  std::vector<std::vector<ElementId>> sets(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    sets[v].reserve(g.degree(v));
    for (const graph::Incidence& inc : g.neighbours(v)) {
      sets[v].push_back(inc.edge);
    }
  }
  return SetSystem(g.num_edges(), std::move(sets), vertex_weights);
}

}  // namespace mrlr::setcover
