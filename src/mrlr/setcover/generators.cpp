#include "mrlr/setcover/generators.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::setcover {

namespace {
double draw_weight(graph::WeightDist dist, Rng& rng) {
  // Reuse the edge-weight distributions via a 1-edge dummy call pattern is
  // overkill; duplicate the small switch here for set weights.
  switch (dist) {
    case graph::WeightDist::kUniform:
      return rng.uniform_real(1.0, 100.0);
    case graph::WeightDist::kExponential:
      return 1.0 + 10.0 * rng.exponential(1.0);
    case graph::WeightDist::kIntegral:
      return static_cast<double>(rng.uniform_int(1, 1000));
    case graph::WeightDist::kPolarized:
      return rng.bernoulli(0.1) ? rng.uniform_real(1000.0, 2000.0)
                                : rng.uniform_real(1.0, 2.0);
  }
  return 1.0;
}
}  // namespace

SetSystem bounded_frequency(std::uint64_t num_sets, std::uint64_t universe,
                            std::uint64_t f, graph::WeightDist dist,
                            Rng& rng) {
  MRLR_REQUIRE(f >= 1, "frequency bound must be at least 1");
  MRLR_REQUIRE(num_sets >= f, "need at least f sets");
  std::vector<std::vector<ElementId>> sets(num_sets);
  for (ElementId j = 0; j < universe; ++j) {
    // Element 0 is forced to frequency exactly f so max_frequency() == f;
    // the rest draw a frequency uniformly in [1, f].
    const std::uint64_t freq =
        (j == 0) ? f : 1 + rng.uniform(f);
    const auto owners = rng.sample_without_replacement(num_sets, freq);
    for (const auto i : owners) {
      sets[static_cast<SetId>(i)].push_back(j);
    }
  }
  std::vector<double> weights(num_sets);
  for (auto& w : weights) w = draw_weight(dist, rng);
  return SetSystem(universe, std::move(sets), std::move(weights));
}

SetSystem many_sets(std::uint64_t num_sets, std::uint64_t universe,
                    std::uint64_t max_set_size, graph::WeightDist dist,
                    Rng& rng) {
  MRLR_REQUIRE(max_set_size >= 1, "sets must be able to hold an element");
  std::vector<std::vector<ElementId>> sets;
  sets.reserve(num_sets);
  std::vector<double> weights;
  weights.reserve(num_sets);

  // Backbone: partition the universe into consecutive chunks of size
  // max_set_size with weight ~1 each, guaranteeing coverability.
  for (std::uint64_t start = 0; start < universe; start += max_set_size) {
    std::vector<ElementId> s;
    const std::uint64_t end = std::min(universe, start + max_set_size);
    for (std::uint64_t j = start; j < end; ++j) {
      s.push_back(static_cast<ElementId>(j));
    }
    sets.push_back(std::move(s));
    weights.push_back(rng.uniform_real(1.0, 2.0));
  }

  while (sets.size() < num_sets) {
    const std::uint64_t size = 1 + rng.uniform(max_set_size);
    const auto members = rng.sample_without_replacement(universe, size);
    std::vector<ElementId> s;
    s.reserve(size);
    for (const auto j : members) s.push_back(static_cast<ElementId>(j));
    sets.push_back(std::move(s));
    weights.push_back(draw_weight(dist, rng));
  }
  return SetSystem(universe, std::move(sets), std::move(weights));
}

SetSystem planted_cover(std::uint64_t opt_sets, std::uint64_t decoys,
                        std::uint64_t universe, Rng& rng,
                        double* planted_cost) {
  MRLR_REQUIRE(opt_sets >= 1 && opt_sets <= universe,
               "planted cover size must be in [1, universe]");
  // Random partition of the universe into opt_sets nonempty parts.
  auto perm = rng.permutation(universe);
  std::vector<std::vector<ElementId>> sets(opt_sets);
  // Give each part one element first, then spread the rest randomly.
  for (std::uint64_t i = 0; i < opt_sets; ++i) {
    sets[i].push_back(static_cast<ElementId>(perm[i]));
  }
  for (std::uint64_t j = opt_sets; j < universe; ++j) {
    sets[rng.uniform(opt_sets)].push_back(static_cast<ElementId>(perm[j]));
  }
  std::vector<double> weights;
  double cost = 0.0;
  for (std::uint64_t i = 0; i < opt_sets; ++i) {
    const double w = rng.uniform_real(1.0, 2.0);
    weights.push_back(w);
    cost += w;
  }
  // Decoys: random subsets with weight large enough that any cover using
  // them is far from the planted one.
  for (std::uint64_t d = 0; d < decoys; ++d) {
    const std::uint64_t size = 1 + rng.uniform(std::max<std::uint64_t>(
                                       1, universe / 4));
    const auto members = rng.sample_without_replacement(universe, size);
    std::vector<ElementId> s;
    for (const auto j : members) s.push_back(static_cast<ElementId>(j));
    sets.push_back(std::move(s));
    weights.push_back(rng.uniform_real(50.0, 100.0));
  }
  if (planted_cost) *planted_cost = cost;
  return SetSystem(universe, std::move(sets), std::move(weights));
}

}  // namespace mrlr::setcover
