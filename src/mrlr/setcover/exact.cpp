#include "mrlr/setcover/exact.hpp"

#include <limits>

#include "mrlr/util/require.hpp"

namespace mrlr::setcover {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// dp[mask] = min weight covering exactly the elements of `mask` (at
/// least). Transition: from mask, pick any uncovered element j and try
/// every set containing j — this keeps the transition count near
/// 2^m * f rather than 2^m * n.
std::vector<double> cover_dp(const SetSystem& sys,
                             std::vector<SetId>* choice_out) {
  const std::uint64_t m = sys.universe_size();
  MRLR_REQUIRE(m <= 24, "exact set cover limited to universe size 24");
  const std::uint64_t full = (m == 0) ? 0 : ((1ull << m) - 1);

  std::vector<std::uint32_t> set_mask(sys.num_sets(), 0);
  for (SetId i = 0; i < sys.num_sets(); ++i) {
    std::uint32_t mask = 0;
    for (const ElementId j : sys.set(i)) mask |= (1u << j);
    set_mask[i] = mask;
  }

  std::vector<double> dp(full + 1, kInf);
  std::vector<SetId> choice(full + 1, 0);
  std::vector<std::uint32_t> parent(full + 1, 0);
  dp[0] = 0.0;
  for (std::uint64_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf) continue;
    if (mask == full) break;
    // Lowest uncovered element.
    const unsigned j = static_cast<unsigned>(__builtin_ctzll(~mask));
    for (const SetId i : sys.sets_containing(static_cast<ElementId>(j))) {
      const std::uint64_t next = mask | set_mask[i];
      const double cand = dp[mask] + sys.weight(i);
      if (cand < dp[next]) {
        dp[next] = cand;
        choice[next] = i;
        parent[next] = static_cast<std::uint32_t>(mask);
      }
    }
  }
  if (choice_out && dp[full] != kInf) {
    choice_out->clear();
    std::uint64_t cur = full;
    while (cur != 0) {
      choice_out->push_back(choice[cur]);
      cur = parent[cur];
    }
  }
  return dp;
}
}  // namespace

std::optional<double> exact_min_cover_weight(const SetSystem& sys) {
  const std::uint64_t m = sys.universe_size();
  if (m == 0) return 0.0;
  const auto dp = cover_dp(sys, nullptr);
  const double best = dp[(1ull << m) - 1];
  if (best == kInf) return std::nullopt;
  return best;
}

std::optional<ExactCover> exact_min_cover(const SetSystem& sys) {
  const std::uint64_t m = sys.universe_size();
  ExactCover out;
  if (m == 0) return out;
  const auto dp = cover_dp(sys, &out.sets);
  out.weight = dp[(1ull << m) - 1];
  if (out.weight == kInf) return std::nullopt;
  return out;
}

double exact_min_vertex_cover_weight(const graph::Graph& g,
                                     const std::vector<double>& weights) {
  const std::uint64_t n = g.num_vertices();
  MRLR_REQUIRE(n <= 24, "exact vertex cover limited to 24 vertices");
  MRLR_REQUIRE(weights.size() == n, "one weight per vertex");
  double best = kInf;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    bool covers = true;
    for (const graph::Edge& e : g.edges()) {
      if (((mask >> e.u) & 1) == 0 && ((mask >> e.v) & 1) == 0) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    double w = 0.0;
    for (std::uint64_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1) w += weights[v];
    }
    best = std::min(best, w);
  }
  return best;
}

}  // namespace mrlr::setcover
