#include "mrlr/setcover/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "mrlr/util/require.hpp"

namespace mrlr::setcover {

void write_set_system(const SetSystem& sys, std::ostream& os) {
  os << sys.num_sets() << ' ' << sys.universe_size() << " weighted\n";
  for (SetId i = 0; i < sys.num_sets(); ++i) {
    os << sys.weight(i) << ' ' << sys.set(i).size();
    for (const ElementId j : sys.set(i)) os << ' ' << j;
    os << '\n';
  }
}

SetSystem read_set_system(std::istream& is) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  MRLR_REQUIRE(next_content_line(), "set system: missing header");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  std::string flag;
  header >> n >> m >> flag;
  const bool weighted = flag == "weighted";

  std::vector<std::vector<ElementId>> sets;
  std::vector<double> weights;
  sets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MRLR_REQUIRE(next_content_line(), "set system: truncated file");
    std::istringstream ls(line);
    double w = 1.0;
    if (weighted) ls >> w;
    std::uint64_t k = 0;
    ls >> k;
    std::vector<ElementId> s;
    s.reserve(k);
    for (std::uint64_t t = 0; t < k; ++t) {
      std::uint64_t j = 0;
      ls >> j;
      MRLR_REQUIRE(j < m, "set system: element outside universe");
      s.push_back(static_cast<ElementId>(j));
    }
    sets.push_back(std::move(s));
    weights.push_back(w);
  }
  return SetSystem(m, std::move(sets), std::move(weights));
}

}  // namespace mrlr::setcover
