#include "mrlr/setcover/io.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace mrlr::setcover {

namespace {

[[noreturn]] void fail(std::uint64_t line_no, const std::string& what) {
  throw ParseError("set system: line " + std::to_string(line_no) + ": " +
                   what);
}

}  // namespace

void write_set_system(const SetSystem& sys, std::ostream& os) {
  os << sys.num_sets() << ' ' << sys.universe_size() << " weighted\n";
  for (SetId i = 0; i < sys.num_sets(); ++i) {
    os << sys.weight(i) << ' ' << sys.set(i).size();
    for (const ElementId j : sys.set(i)) os << ' ' << j;
    os << '\n';
  }
}

SetSystem read_set_system(std::istream& is) {
  std::string line;
  std::uint64_t line_no = 0;
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos || line[i] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_content_line()) throw ParseError("set system: missing header");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  std::string flag;
  if (!(header >> n >> m)) fail(line_no, "malformed header counts");
  const bool weighted = static_cast<bool>(header >> flag);
  if (weighted && flag != "weighted") {
    fail(line_no, "unrecognized header flag '" + flag + "'");
  }
  std::string extra;
  if (header >> extra) fail(line_no, "trailing characters after header");

  // Cap up-front reservations so adversarial header/row counts fail as
  // ParseError (truncated file / short row) instead of std::length_error
  // out of reserve; genuinely large systems grow geometrically.
  std::vector<std::vector<ElementId>> sets;
  std::vector<double> weights;
  sets.reserve(std::min(n, graph::kIoReserveCap));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!next_content_line()) {
      throw ParseError("set system: truncated file: " + std::to_string(i) +
                       " of " + std::to_string(n) + " sets read");
    }
    std::istringstream ls(line);
    double w = 1.0;
    if (weighted) {
      if (!(ls >> w)) fail(line_no, "missing set weight");
      if (!std::isfinite(w) || w <= 0.0) {
        fail(line_no, "set weight must be finite and positive");
      }
    }
    std::uint64_t k = 0;
    if (!(ls >> k)) fail(line_no, "missing set size");
    std::vector<ElementId> s;
    s.reserve(std::min(k, graph::kIoReserveCap));
    for (std::uint64_t t = 0; t < k; ++t) {
      std::uint64_t j = 0;
      if (!(ls >> j)) fail(line_no, "set row shorter than its declared size");
      if (j >= m) fail(line_no, "element outside universe");
      s.push_back(static_cast<ElementId>(j));
    }
    if (ls >> extra) fail(line_no, "trailing characters after set row");
    sets.push_back(std::move(s));
    weights.push_back(w);
  }
  return SetSystem(m, std::move(sets), std::move(weights));
}

}  // namespace mrlr::setcover
