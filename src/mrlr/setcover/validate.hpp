#pragma once
// Independent validation of set cover solutions.

#include <vector>

#include "mrlr/setcover/set_system.hpp"

namespace mrlr::setcover {

/// True if the chosen sets cover the entire universe.
bool is_cover(const SetSystem& sys, const std::vector<SetId>& chosen);

/// Total weight of the chosen sets (duplicates counted once).
double cover_weight(const SetSystem& sys, const std::vector<SetId>& chosen);

/// True if removing any single chosen set breaks coverage (no redundant
/// set). The paper's algorithms do not guarantee minimality; this is used
/// by tests of the optional prune post-pass.
bool is_minimal_cover(const SetSystem& sys, const std::vector<SetId>& chosen);

/// Drop redundant sets greedily (highest weight first). Preserves
/// coverage; used as an optional post-processing step.
std::vector<SetId> prune_cover(const SetSystem& sys,
                               std::vector<SetId> chosen);

}  // namespace mrlr::setcover
