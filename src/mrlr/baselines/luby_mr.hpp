#pragma once
// Luby's maximal independent set as a MapReduce algorithm — the
// O(log n)-round PRAM-simulation baseline Section 6 of the paper
// mentions ("Luby's randomized algorithms ... have clean MapReduce
// implementations by using one machine per processor"). Each Luby phase
// costs three engine rounds: draw+exchange marks, announce winners,
// drop dominated vertices.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::baselines {

struct LubyMrResult {
  std::vector<graph::VertexId> independent_set;
  std::uint64_t phases = 0;
  core::MrOutcome outcome;
};

LubyMrResult luby_mis_mr(const graph::Graph& g,
                         const core::MrParams& params);

}  // namespace mrlr::baselines
