#include "mrlr/baselines/filtering_vertex_cover.hpp"

namespace mrlr::baselines {

FilteringVertexCoverResult filtering_vertex_cover(
    const graph::Graph& g, const core::MrParams& params) {
  FilteringVertexCoverResult res;
  const FilteringMatchingResult matching = filtering_matching(g, params);
  res.cover.reserve(2 * matching.matching.size());
  for (const graph::EdgeId e : matching.matching) {
    res.cover.push_back(g.edge(e).u);
    res.cover.push_back(g.edge(e).v);
  }
  res.outcome = matching.outcome;
  return res;
}

}  // namespace mrlr::baselines
