#include "mrlr/baselines/sample_prune_setcover.hpp"

#include <algorithm>
#include <limits>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::allreduce_sum_direct;
using core::MrParams;
using core::owner_of;
using mrc::MachineContext;
using mrc::Word;
using setcover::ElementId;
using setcover::SetId;

SamplePruneResult sample_prune_set_cover(const setcover::SetSystem& sys,
                                         double eps,
                                         const MrParams& params) {
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  const std::uint64_t n = sys.num_sets();
  const std::uint64_t m = std::max<std::uint64_t>(sys.universe_size(), 2);
  const std::uint64_t cap_base = ipow_real(m, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(sys.total_incidences() + n, cap_base));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack *
                               static_cast<double>(cap_base)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(m, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (SetId l = 0; l < n; ++l) {
    footprint[owner_of(l, machines)] += 3 + sys.set(l).size();
  }

  std::vector<char> covered(sys.universe_size(), 0);
  std::uint64_t covered_count = 0;
  std::vector<std::uint64_t> residual(n);
  for (SetId l = 0; l < n; ++l) residual[l] = sys.set(l).size();
  std::vector<char> taken(n, 0);

  SamplePruneResult res;
  auto take_set = [&](SetId l) {
    taken[l] = 1;
    res.cover.push_back(l);
    res.weight += sys.weight(l);
    for (const ElementId j : sys.set(l)) {
      if (!covered[j]) {
        covered[j] = 1;
        ++covered_count;
        for (const SetId l2 : sys.sets_containing(j)) {
          if (residual[l2] > 0) --residual[l2];
        }
      }
    }
  };
  auto ratio = [&](SetId l) {
    return static_cast<double>(residual[l]) / sys.weight(l);
  };

  double level = 0.0;
  for (SetId l = 0; l < n; ++l) level = std::max(level, ratio(l));

  Rng root_rng(params.seed);
  std::uint64_t guard = 0;
  // Sample budget per round: one machine's worth of sets.
  const std::uint64_t budget = std::max<std::uint64_t>(1, cap_base /
                                   std::max<std::uint64_t>(1, sys.max_set_size() + 3));

  while (covered_count < sys.universe_size() &&
         guard < params.max_iterations) {
    const double threshold = level / (1.0 + eps);
    while (guard < params.max_iterations) {
      ++guard;
      ++res.outcome.iterations;
      std::vector<Word> counts(machines, 0);
      for (SetId l = 0; l < n; ++l) {
        if (!taken[l] && residual[l] > 0 && threshold > 0.0 &&
            ratio(l) >= threshold) {
          ++counts[owner_of(l, machines)];
        }
      }
      const std::uint64_t qualifying =
          allreduce_sum_direct(engine, counts, "count-qualifying");
      if (qualifying == 0) break;

      const double p = std::min(1.0, static_cast<double>(budget) /
                                         static_cast<double>(qualifying));
      // Per-machine staging, concatenated in machine-id order after the
      // barrier: the central prune scans the sample in the same order on
      // every backend.
      std::vector<std::vector<SetId>> sampled_by(machines);
      engine.run_round("sample", [&](MachineContext& ctx) {
        ctx.charge_resident(footprint[ctx.id()]);
        Rng rng = root_rng.stream((guard << 20) ^ ctx.id());
        for (SetId l = static_cast<SetId>(ctx.id()); l < n;
             l = static_cast<SetId>(l + machines)) {
          if (taken[l] || residual[l] == 0 || ratio(l) < threshold) continue;
          if (!rng.bernoulli(p)) continue;
          sampled_by[ctx.id()].push_back(l);
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(l);
          msg.push(core::pack_double(sys.weight(l)));
          for (const ElementId j : sys.set(l)) {
            if (!covered[j]) msg.push(j);
          }
        }
      });
      std::vector<SetId> sampled;
      for (const auto& part : sampled_by) {
        sampled.insert(sampled.end(), part.begin(), part.end());
      }

      std::vector<ElementId> newly;
      engine.run_central_round("prune", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words());
        for (const SetId l : sampled) {
          if (!taken[l] && residual[l] > 0 && ratio(l) >= threshold) {
            const std::uint64_t before = covered_count;
            take_set(l);
            (void)before;
          }
        }
        for (ElementId j = 0; j < sys.universe_size(); ++j) {
          if (covered[j]) newly.push_back(j);
        }
      });

      // Broadcast covered elements so owners prune (tree).
      std::vector<Word> payload(newly.begin(), newly.end());
      mrc::broadcast_from_central(engine, payload, "bcast covered");
      if (covered_count >= sys.universe_size()) break;
    }
    if (covered_count >= sys.universe_size()) break;
    level /= (1.0 + eps);
    ++res.level_drops;
    if (level <= std::numeric_limits<double>::min()) break;
  }

  res.outcome.failed = covered_count < sys.universe_size();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
