#include "mrlr/baselines/sample_prune_setcover.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using core::owner_of;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;
using setcover::ElementId;
using setcover::SetId;

SamplePruneResult sample_prune_set_cover(const setcover::SetSystem& sys,
                                         double eps,
                                         const MrParams& params) {
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  const std::uint64_t n = sys.num_sets();
  const std::uint64_t m = std::max<std::uint64_t>(sys.universe_size(), 2);
  const std::uint64_t cap_base = ipow_real(m, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(sys.total_incidences() + n, cap_base));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack *
                               static_cast<double>(cap_base)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(m, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (SetId l = 0; l < n; ++l) {
    footprint[owner_of(l, machines)] += 3 + sys.set(l).size();
  }

  // Host (central) algorithm state.
  std::vector<char> covered(sys.universe_size(), 0);
  std::uint64_t covered_count = 0;
  std::vector<std::uint64_t> residual(n);
  for (SetId l = 0; l < n; ++l) residual[l] = sys.set(l).size();
  std::vector<char> taken(n, 0);

  SamplePruneResult res;
  auto take_set = [&](SetId l) {
    taken[l] = 1;
    res.cover.push_back(l);
    res.weight += sys.weight(l);
    for (const ElementId j : sys.set(l)) {
      if (!covered[j]) {
        covered[j] = 1;
        ++covered_count;
        for (const SetId l2 : sys.sets_containing(j)) {
          if (residual[l2] > 0) --residual[l2];
        }
      }
    }
  };
  auto ratio = [&](SetId l) {
    return static_cast<double>(residual[l]) / sys.weight(l);
  };

  double level = 0.0;
  for (SetId l = 0; l < n; ++l) level = std::max(level, ratio(l));

  const Rng root(params.seed);
  // Sample budget per round: one machine's worth of sets.
  const std::uint64_t budget = std::max<std::uint64_t>(1, cap_base /
                                   std::max<std::uint64_t>(1, sys.max_set_size() + 3));

  // Worker mirrors: per-machine covered mirrors plus the owner-strided
  // residual counts, refreshed only by the covered-element broadcast. A
  // taken set has residual 0, so no separate taken mirror is needed.
  std::vector<std::vector<char>> covered_by(
      machines, std::vector<char>(sys.universe_size(), 0));
  std::vector<std::uint64_t> residual_dist = residual;

  mrc::JobBroadcast bcast(
      engine, "bcast covered",
      [&](MachineContext& ctx, std::span<const Word> elements) {
        const MachineId id = ctx.id();
        std::vector<char>& cov = covered_by[id];
        for (const Word jw : elements) {
          const auto j = static_cast<ElementId>(jw);
          if (cov[j]) continue;
          cov[j] = 1;
          for (const SetId l2 : sys.sets_containing(j)) {
            if (owner_of(l2, machines) != id) continue;
            if (residual_dist[l2] > 0) --residual_dist[l2];
          }
        }
      });

  // Owners count their qualifying sets.
  const mrc::RoundId r_count = engine.define_round(
      "count-qualifying", [&](MachineContext& ctx, std::span<const Word> ps) {
        const double threshold = core::unpack_double(ps[0]);
        Word cnt = 0;
        for (SetId l = static_cast<SetId>(ctx.id()); l < n;
             l = static_cast<SetId>(l + machines)) {
          if (residual_dist[l] == 0 || threshold <= 0.0) continue;
          const double r = static_cast<double>(residual_dist[l]) /
                           sys.weight(l);
          if (r >= threshold) ++cnt;
        }
        ctx.charge_resident(1);
        ctx.send(mrc::kCentral, {cnt});
      });

  // Qualifying sets self-select with probability p and ship their
  // residual element lists to central. One message per set; messages
  // merge in sender-id order, then per-machine in ascending set order,
  // so the central prune scans the same order on every backend.
  const mrc::RoundId r_sample = engine.define_round(
      "sample", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t guard = ps[0];
        const double threshold = core::unpack_double(ps[1]);
        const double p = core::unpack_double(ps[2]);
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        const std::vector<char>& cov = covered_by[id];
        Rng rng = root.stream((guard << 20) ^ id);
        for (SetId l = static_cast<SetId>(id); l < n;
             l = static_cast<SetId>(l + machines)) {
          if (residual_dist[l] == 0 || threshold <= 0.0) continue;
          const double r = static_cast<double>(residual_dist[l]) /
                           sys.weight(l);
          if (r < threshold) continue;
          if (!rng.bernoulli(p)) continue;
          mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
          msg.push(l);
          msg.push(core::pack_double(sys.weight(l)));
          for (const ElementId j : sys.set(l)) {
            if (!cov[j]) msg.push(j);
          }
        }
      });

  std::uint64_t guard = 0;

  while (covered_count < sys.universe_size() &&
         guard < params.max_iterations) {
    const double threshold = level / (1.0 + eps);
    while (guard < params.max_iterations) {
      ++guard;
      ++res.outcome.iterations;
      engine.invoke_round(r_count, {core::pack_double(threshold)});
      std::uint64_t qualifying = 0;
      engine.run_central_round("sum-qualifying", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + 1);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (const Word w : msg.payload) qualifying += w;
        }
      });
      if (qualifying == 0) break;

      const double p = std::min(1.0, static_cast<double>(budget) /
                                         static_cast<double>(qualifying));
      engine.invoke_round(r_sample, {guard, core::pack_double(threshold),
                                     core::pack_double(p)});

      std::vector<ElementId> newly;
      engine.run_central_round("prune", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words());
        for (const mrc::MessageView msg : ctx.messages()) {
          const auto l = static_cast<SetId>(msg.payload[0]);
          if (!taken[l] && residual[l] > 0 && ratio(l) >= threshold) {
            take_set(l);
          }
        }
        for (ElementId j = 0; j < sys.universe_size(); ++j) {
          if (covered[j]) newly.push_back(j);
        }
      });

      // Broadcast covered elements so owners prune (tree).
      bcast.run(std::vector<Word>(newly.begin(), newly.end()));
      if (covered_count >= sys.universe_size()) break;
    }
    if (covered_count >= sys.universe_size()) break;
    level /= (1.0 + eps);
    ++res.level_drops;
    if (level <= std::numeric_limits<double>::min()) break;
  }

  res.outcome.failed = covered_count < sys.universe_size();
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
