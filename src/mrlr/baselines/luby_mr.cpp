#include "mrlr/baselines/luby_mr.hpp"

#include <algorithm>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using core::owner_of;
using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::Word;

LubyMrResult luby_mis_mr(const graph::Graph& g, const MrParams& params) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    footprint[owner_of(v, machines)] += 2 + g.degree(v);
  }

  std::vector<char> live(g.num_vertices(), 1);
  std::vector<std::uint64_t> mark(g.num_vertices(), 0);
  std::uint64_t remaining = g.num_vertices();

  LubyMrResult res;
  Rng root_rng(params.seed);

  while (remaining > 0 && res.phases < params.max_iterations) {
    ++res.phases;
    // Round 1: every live vertex draws a mark and sends it to the
    // owners of its live neighbours.
    engine.run_round("luby-marks", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      Rng rng = root_rng.stream((res.phases << 20) ^ ctx.id());
      for (VertexId v = static_cast<VertexId>(ctx.id());
           v < g.num_vertices();
           v = static_cast<VertexId>(v + machines)) {
        if (!live[v]) continue;
        mark[v] = rng();
        for (const Incidence& inc : g.neighbours(v)) {
          if (live[inc.neighbour]) {
            ctx.send(owner_of(inc.neighbour, machines),
                     {inc.neighbour, v, mark[v]});
          }
        }
      }
    });

    // Round 2: local minima declare themselves winners and notify
    // neighbours. Winners stage per machine and concatenate in
    // machine-id order, matching the sequential discovery order.
    std::vector<std::vector<VertexId>> winners_by(machines);
    engine.run_round("luby-winners", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()] + ctx.inbox_words());
      for (VertexId v = static_cast<VertexId>(ctx.id());
           v < g.num_vertices();
           v = static_cast<VertexId>(v + machines)) {
        if (!live[v]) continue;
        bool is_min = true;
        for (const Incidence& inc : g.neighbours(v)) {
          const VertexId u = inc.neighbour;
          if (!live[u]) continue;
          if (mark[u] < mark[v] || (mark[u] == mark[v] && u < v)) {
            is_min = false;
            break;
          }
        }
        if (is_min) {
          winners_by[ctx.id()].push_back(v);
          for (const Incidence& inc : g.neighbours(v)) {
            if (live[inc.neighbour]) {
              ctx.send(owner_of(inc.neighbour, machines),
                       {inc.neighbour});
            }
          }
        }
      }
    });
    std::vector<VertexId> winners;
    for (const auto& part : winners_by) {
      winners.insert(winners.end(), part.begin(), part.end());
    }

    // Round 3: winners join the MIS; dominated vertices leave.
    engine.run_round("luby-drop", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()] + ctx.inbox_words());
    });
    for (const VertexId v : winners) {
      if (!live[v]) continue;
      res.independent_set.push_back(v);
      live[v] = 0;
      --remaining;
      for (const Incidence& inc : g.neighbours(v)) {
        if (live[inc.neighbour]) {
          live[inc.neighbour] = 0;
          --remaining;
        }
      }
    }
  }

  std::sort(res.independent_set.begin(), res.independent_set.end());
  res.outcome.iterations = res.phases;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
