#include "mrlr/baselines/luby_mr.hpp"

#include <algorithm>
#include <span>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using core::owner_of;
using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

LubyMrResult luby_mis_mr(const graph::Graph& g, const MrParams& params) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    footprint[owner_of(v, machines)] += 2 + g.degree(v);
  }

  // Worker state: per-machine liveness mirrors (refreshed only by the
  // winner broadcast) and the owner-strided mark array. The host keeps
  // its own liveness replay to drive loop termination.
  std::vector<std::vector<char>> live_by(
      machines, std::vector<char>(g.num_vertices(), 1));
  std::vector<std::uint64_t> mark(g.num_vertices(), 0);
  std::vector<char> live_host(g.num_vertices(), 1);
  std::uint64_t remaining = g.num_vertices();

  LubyMrResult res;
  const Rng root(params.seed);

  // Winners are an independent set, so mirrors can replay the host's
  // deactivation pass verbatim: drop the winner, then its neighbours.
  mrc::JobBroadcast bcast(
      engine, "bcast-winners",
      [&](MachineContext& ctx, std::span<const Word> winners) {
        std::vector<char>& live = live_by[ctx.id()];
        for (const Word vw : winners) {
          const auto v = static_cast<VertexId>(vw);
          if (!live[v]) continue;
          live[v] = 0;
          for (const Incidence& inc : g.neighbours(v)) {
            if (live[inc.neighbour]) live[inc.neighbour] = 0;
          }
        }
      });

  // Round 1: every live vertex draws a mark and sends it to the owners
  // of its live neighbours.
  const mrc::RoundId r_marks = engine.define_round(
      "luby-marks", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t phase = ps[0];
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        const std::vector<char>& live = live_by[id];
        Rng rng = root.stream((phase << 20) ^ id);
        for (VertexId v = static_cast<VertexId>(id); v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (!live[v]) continue;
          mark[v] = rng();
          for (const Incidence& inc : g.neighbours(v)) {
            if (live[inc.neighbour]) {
              ctx.send(owner_of(inc.neighbour, machines),
                       {inc.neighbour, v, mark[v]});
            }
          }
        }
      });

  // Round 2: owners compare their marks against the neighbour marks in
  // the inbox; local minima declare themselves winners to central (one
  // batch message per machine, merging in machine-id order).
  const mrc::RoundId r_winners = engine.define_round(
      "luby-winners", [&](MachineContext& ctx, std::span<const Word>) {
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id] + ctx.inbox_words());
        std::vector<char> beaten(g.num_vertices(), 0);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 2 < msg.payload.size(); k += 3) {
            const auto v = static_cast<VertexId>(msg.payload[k]);
            const auto u = static_cast<VertexId>(msg.payload[k + 1]);
            const std::uint64_t mark_u = msg.payload[k + 2];
            if (mark_u < mark[v] || (mark_u == mark[v] && u < v)) {
              beaten[v] = 1;
            }
          }
        }
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        const std::vector<char>& live = live_by[id];
        for (VertexId v = static_cast<VertexId>(id); v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (live[v] && !beaten[v]) msg.push(v);
        }
        if (msg.empty()) msg.cancel();
      });

  while (remaining > 0 && res.phases < params.max_iterations) {
    ++res.phases;
    engine.invoke_round(r_marks, {res.phases});
    engine.invoke_round(r_winners);

    // Round 3: central collects the winners (they join the MIS; the
    // host replays the deactivations to track progress), then the
    // winner list goes down the fanout tree so every mirror replays the
    // same deactivations.
    std::vector<Word> winners;
    engine.run_central_round("luby-drop", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        winners.insert(winners.end(), msg.payload.begin(),
                       msg.payload.end());
      }
      for (const Word vw : winners) {
        const auto v = static_cast<VertexId>(vw);
        if (!live_host[v]) continue;
        res.independent_set.push_back(v);
        live_host[v] = 0;
        --remaining;
        for (const Incidence& inc : g.neighbours(v)) {
          if (live_host[inc.neighbour]) {
            live_host[inc.neighbour] = 0;
            --remaining;
          }
        }
      }
    });
    bcast.run(winners);
  }

  std::sort(res.independent_set.begin(), res.independent_set.end());
  res.outcome.iterations = res.phases;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
