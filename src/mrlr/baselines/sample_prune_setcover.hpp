#pragma once
// Sample-and-prune style greedy set cover in the spirit of Kumar,
// Moseley, Vassilvitskii and Vattani (TOPC 2015) — the threshold-greedy
// comparator for Algorithm 3. Identical epsilon-greedy quality target,
// but *without* the paper's size-class bucketing: per inner iteration a
// single uniform sample of qualifying sets is shipped and admitted
// greedily, so exhausting a threshold level takes more rounds — exactly
// the gap Theorem 4.6's bucketing closes.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/setcover/set_system.hpp"

namespace mrlr::baselines {

struct SamplePruneResult {
  std::vector<setcover::SetId> cover;
  double weight = 0.0;
  std::uint64_t level_drops = 0;
  core::MrOutcome outcome;
};

SamplePruneResult sample_prune_set_cover(const setcover::SetSystem& sys,
                                         double eps,
                                         const core::MrParams& params);

}  // namespace mrlr::baselines
