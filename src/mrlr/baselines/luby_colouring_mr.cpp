#include "mrlr/baselines/luby_colouring_mr.hpp"

#include <algorithm>
#include <limits>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using core::owner_of;
using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;

namespace {
constexpr std::uint32_t kUncoloured =
    std::numeric_limits<std::uint32_t>::max();
}

LubyColouringResult luby_colouring_mr(const graph::Graph& g,
                                      const MrParams& params) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    footprint[owner_of(v, machines)] += 2 + g.degree(v);
  }

  const auto palette =
      static_cast<std::uint32_t>(g.max_degree() + 1);
  LubyColouringResult res;
  res.colour.assign(g.num_vertices(), kUncoloured);
  std::uint64_t uncoloured = g.num_vertices();
  std::vector<std::uint32_t> proposal(g.num_vertices(), kUncoloured);
  Rng root_rng(params.seed);

  while (uncoloured > 0 && res.phases < params.max_iterations) {
    ++res.phases;
    // Round 1: uncoloured vertices propose a colour that no coloured
    // neighbour holds, drawn uniformly from the first such candidates,
    // and tell uncoloured neighbours.
    engine.run_round("propose", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      Rng rng = root_rng.stream((res.phases << 20) ^ ctx.id());
      for (VertexId v = static_cast<VertexId>(ctx.id());
           v < g.num_vertices();
           v = static_cast<VertexId>(v + machines)) {
        if (res.colour[v] != kUncoloured) continue;
        // Free colours = palette minus coloured neighbours' colours.
        std::vector<char> taken(palette, 0);
        for (const Incidence& inc : g.neighbours(v)) {
          const std::uint32_t cn = res.colour[inc.neighbour];
          if (cn != kUncoloured) taken[cn] = 1;
        }
        std::vector<std::uint32_t> free;
        for (std::uint32_t col = 0; col < palette; ++col) {
          if (!taken[col]) free.push_back(col);
        }
        MRLR_REQUIRE(!free.empty(), "palette exhausted: degree bound bug");
        proposal[v] = free[rng.uniform(free.size())];
        for (const Incidence& inc : g.neighbours(v)) {
          if (res.colour[inc.neighbour] == kUncoloured) {
            ctx.send(owner_of(inc.neighbour, machines),
                     {inc.neighbour, v, proposal[v]});
          }
        }
      }
    });

    // Round 2: a proposal sticks if no uncoloured neighbour proposed the
    // same colour with a smaller id (deterministic tie-break).
    engine.run_round("commit", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()] + ctx.inbox_words());
    });
    // Two-pass commit: decide every winner against the *pre-phase*
    // colour state, then apply — committing in place would let a later
    // vertex miss a conflict with a same-phase winner.
    std::vector<VertexId> winners;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (res.colour[v] != kUncoloured || proposal[v] == kUncoloured) {
        continue;
      }
      bool wins = true;
      for (const Incidence& inc : g.neighbours(v)) {
        const VertexId u = inc.neighbour;
        if (res.colour[u] == kUncoloured && proposal[u] == proposal[v] &&
            u < v) {
          wins = false;
          break;
        }
      }
      if (wins) winners.push_back(v);
    }
    for (const VertexId v : winners) {
      res.colour[v] = proposal[v];
      --uncoloured;
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (res.colour[v] != kUncoloured) proposal[v] = kUncoloured;
    }
  }

  std::uint32_t max_colour = 0;
  for (const auto col : res.colour) {
    if (col != kUncoloured) max_colour = std::max(max_colour, col);
  }
  res.colours_used = g.num_vertices() == 0 ? 0 : max_colour + 1;
  res.outcome.iterations = res.phases;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
