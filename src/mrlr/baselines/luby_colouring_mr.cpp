#include "mrlr/baselines/luby_colouring_mr.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using core::owner_of;
using graph::Incidence;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {
constexpr std::uint32_t kUncoloured =
    std::numeric_limits<std::uint32_t>::max();
}

LubyColouringResult luby_colouring_mr(const graph::Graph& g,
                                      const MrParams& params) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);
  const std::uint64_t machines = topo.num_machines;

  std::vector<std::uint64_t> footprint(machines, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    footprint[owner_of(v, machines)] += 2 + g.degree(v);
  }

  const auto palette =
      static_cast<std::uint32_t>(g.max_degree() + 1);
  LubyColouringResult res;
  res.colour.assign(g.num_vertices(), kUncoloured);
  std::uint64_t uncoloured = g.num_vertices();

  // Worker state: per-machine colour mirrors (refreshed only by the
  // winner broadcast) and the owner-strided proposal array.
  std::vector<std::vector<std::uint32_t>> colour_by(
      machines, std::vector<std::uint32_t>(g.num_vertices(), kUncoloured));
  std::vector<std::uint32_t> proposal(g.num_vertices(), kUncoloured);
  const Rng root(params.seed);

  // Winners broadcast as (vertex, colour) pairs; mirrors adopt them.
  mrc::JobBroadcast bcast(
      engine, "bcast-winners",
      [&](MachineContext& ctx, std::span<const Word> pairs) {
        std::vector<std::uint32_t>& colour = colour_by[ctx.id()];
        for (std::size_t k = 0; k + 1 < pairs.size(); k += 2) {
          colour[static_cast<VertexId>(pairs[k])] =
              static_cast<std::uint32_t>(pairs[k + 1]);
        }
      });

  // Round 1: uncoloured vertices propose a colour that no coloured
  // neighbour holds, drawn uniformly from the first such candidates,
  // and tell their uncoloured neighbours' owners.
  const mrc::RoundId r_propose = engine.define_round(
      "propose", [&](MachineContext& ctx, std::span<const Word> ps) {
        const std::uint64_t phase = ps[0];
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id]);
        const std::vector<std::uint32_t>& colour = colour_by[id];
        Rng rng = root.stream((phase << 20) ^ id);
        for (VertexId v = static_cast<VertexId>(id); v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (colour[v] != kUncoloured) continue;
          // Free colours = palette minus coloured neighbours' colours.
          std::vector<char> taken(palette, 0);
          for (const Incidence& inc : g.neighbours(v)) {
            const std::uint32_t cn = colour[inc.neighbour];
            if (cn != kUncoloured) taken[cn] = 1;
          }
          std::vector<std::uint32_t> free;
          for (std::uint32_t col = 0; col < palette; ++col) {
            if (!taken[col]) free.push_back(col);
          }
          MRLR_REQUIRE(!free.empty(), "palette exhausted: degree bound bug");
          proposal[v] = free[rng.uniform(free.size())];
          for (const Incidence& inc : g.neighbours(v)) {
            if (colour[inc.neighbour] == kUncoloured) {
              ctx.send(owner_of(inc.neighbour, machines),
                       {inc.neighbour, v, proposal[v]});
            }
          }
        }
      });

  // Round 2: a proposal sticks if no uncoloured neighbour proposed the
  // same colour with a smaller id (deterministic tie-break). The inbox
  // holds exactly the competing proposals, all decided against the
  // pre-phase colour state (mirrors update only after the broadcast).
  // Winners ship (v, colour) to central, one batch per machine.
  const mrc::RoundId r_commit = engine.define_round(
      "commit", [&](MachineContext& ctx, std::span<const Word>) {
        const MachineId id = ctx.id();
        ctx.charge_resident(footprint[id] + ctx.inbox_words());
        std::vector<char> beaten(g.num_vertices(), 0);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t k = 0; k + 2 < msg.payload.size(); k += 3) {
            const auto v = static_cast<VertexId>(msg.payload[k]);
            const auto u = static_cast<VertexId>(msg.payload[k + 1]);
            const auto c = static_cast<std::uint32_t>(msg.payload[k + 2]);
            if (c == proposal[v] && u < v) beaten[v] = 1;
          }
        }
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        const std::vector<std::uint32_t>& colour = colour_by[id];
        for (VertexId v = static_cast<VertexId>(id); v < g.num_vertices();
             v = static_cast<VertexId>(v + machines)) {
          if (colour[v] != kUncoloured || proposal[v] == kUncoloured) {
            continue;
          }
          if (!beaten[v]) {
            msg.push(v);
            msg.push(proposal[v]);
          }
        }
        if (msg.empty()) msg.cancel();
      });

  while (uncoloured > 0 && res.phases < params.max_iterations) {
    ++res.phases;
    engine.invoke_round(r_propose, {res.phases});
    engine.invoke_round(r_commit);

    // Central collects the committed (v, colour) pairs into the result
    // and broadcasts them so every mirror adopts the same colours.
    std::vector<Word> winners;
    engine.run_central_round("collect-winners", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words() + 1);
      for (const mrc::MessageView msg : ctx.messages()) {
        winners.insert(winners.end(), msg.payload.begin(),
                       msg.payload.end());
      }
      for (std::size_t k = 0; k + 1 < winners.size(); k += 2) {
        res.colour[static_cast<VertexId>(winners[k])] =
            static_cast<std::uint32_t>(winners[k + 1]);
        --uncoloured;
      }
    });
    bcast.run(winners);
  }

  std::uint32_t max_colour = 0;
  for (const auto col : res.colour) {
    if (col != kUncoloured) max_colour = std::max(max_colour, col);
  }
  res.colours_used = g.num_vertices() == 0 ? 0 : max_colour + 1;
  res.outcome.iterations = res.phases;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
