#pragma once
// (Delta+1) vertex colouring in O(log n) MapReduce rounds, in the style
// of Luby / Johansson: every uncoloured vertex proposes a uniformly
// random colour from its remaining palette; proposals that beat all
// uncoloured neighbours' proposals (and avoid coloured neighbours)
// stick. Section 6 of the paper cites exactly this family as the
// O(log n)-round baseline its O(1)-round Algorithm 5 improves on —
// at the price of (1+o(1))Delta colours instead of Delta+1.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::baselines {

struct LubyColouringResult {
  std::vector<std::uint32_t> colour;
  std::uint64_t colours_used = 0;
  std::uint64_t phases = 0;
  core::MrOutcome outcome;
};

LubyColouringResult luby_colouring_mr(const graph::Graph& g,
                                      const core::MrParams& params);

}  // namespace mrlr::baselines
