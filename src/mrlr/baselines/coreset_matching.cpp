#include "mrlr/baselines/coreset_matching.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::Word;

namespace {

/// Greedy max-weight-first matching restricted to the given edges.
std::vector<EdgeId> local_greedy(const graph::Graph& g,
                                 std::vector<EdgeId> edges) {
  std::sort(edges.begin(), edges.end(), [&](EdgeId a, EdgeId b) {
    if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
    return a < b;
  });
  std::vector<char> used(g.num_vertices(), 0);
  std::vector<EdgeId> out;
  for (const EdgeId e : edges) {
    const graph::Edge& ed = g.edge(e);
    if (!used[ed.u] && !used[ed.v]) {
      used[ed.u] = used[ed.v] = 1;
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

CoresetMatchingResult coreset_matching(const graph::Graph& g,
                                       const MrParams& params,
                                       std::uint64_t machines) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t m = g.num_edges();
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);
  if (machines == 0) {
    machines = std::max<std::uint64_t>(
        1, ceil_div(std::max<std::uint64_t>(m, 1), eta));
  }

  mrc::Topology topo;
  topo.num_machines = machines;
  // The central machine holds the coreset union: up to M * n/2 edges at
  // 2 words each, plus the per-part input of m/M edges.
  topo.words_per_machine =
      static_cast<std::uint64_t>(
          params.slack *
          static_cast<double>(std::max(eta, machines * n))) +
      64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  // Random partition of edges into parts (seeded).
  Rng rng(params.seed);
  std::vector<std::uint32_t> part(m);
  for (auto& p : part) p = static_cast<std::uint32_t>(rng.uniform(machines));
  std::vector<std::uint64_t> part_words(machines, 0);
  for (EdgeId e = 0; e < m; ++e) part_words[part[e]] += 3;

  CoresetMatchingResult res;

  // Round 1: each machine computes its coreset and ships it to central.
  // Process-clean: the coreset travels only as messages; no host-side
  // side channel. `g`, `part`, and `part_words` are job-immutable.
  const mrc::RoundId r_coreset = engine.define_round(
      "coreset", [&g, &part, &part_words, m](mrc::MachineContext& ctx,
                                             std::span<const Word>) {
        ctx.charge_resident(part_words[ctx.id()]);
        std::vector<EdgeId> mine;
        for (EdgeId e = 0; e < m; ++e) {
          if (part[e] == ctx.id()) mine.push_back(e);
        }
        const auto core = local_greedy(g, std::move(mine));
        mrc::MessageWriter msg = ctx.begin_message(mrc::kCentral);
        for (const EdgeId e : core) {
          msg.push(e);
          msg.push(core::pack_double(g.weight(e)));
        }
        if (msg.empty()) msg.cancel();
      });
  engine.invoke_round(r_coreset);

  // Round 2: central decodes the union from its inbox — messages merge
  // in sender-id order, so the union's tie-break order matches the old
  // machine-id-order concatenation on every backend — and matches it.
  engine.run_central_round("combine", [&](MachineContext& ctx) {
    ctx.charge_resident(ctx.inbox_words());
    std::vector<EdgeId> coreset_union;
    for (const mrc::MessageView msg : ctx.messages()) {
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        coreset_union.push_back(static_cast<EdgeId>(msg.payload[i]));
      }
    }
    res.coreset_union_size = coreset_union.size();
    res.matching = local_greedy(g, std::move(coreset_union));
  });
  for (const EdgeId e : res.matching) res.weight += g.weight(e);
  res.outcome.iterations = 1;
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
