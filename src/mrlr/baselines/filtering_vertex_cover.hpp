#pragma once
// Filtering vertex cover (Lattanzi et al.): the matched vertices of a
// filtering maximal matching form a 2-approximate *unweighted* vertex
// cover. Comparison row for Theorem 2.4 (which additionally handles
// weights at the same ratio).

#include <vector>

#include "mrlr/baselines/filtering_matching.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::baselines {

struct FilteringVertexCoverResult {
  std::vector<graph::VertexId> cover;
  core::MrOutcome outcome;
};

FilteringVertexCoverResult filtering_vertex_cover(
    const graph::Graph& g, const core::MrParams& params);

}  // namespace mrlr::baselines
