#include "mrlr/baselines/filtering_matching.hpp"

#include <algorithm>
#include <cmath>

#include "mrlr/seq/greedy_matching.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::allreduce_sum_direct;
using core::MrParams;
using core::owner_of;
using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// Core filtering loop over an initial alive-edge set. Matched vertices
/// accumulate in `used`; matched edges append to `out`.
void filter_rounds(mrc::Engine& engine, const graph::Graph& g,
                   std::vector<char>& alive, std::vector<char>& used,
                   std::vector<EdgeId>& out, std::uint64_t eta,
                   const MrParams& params, core::MrOutcome& outcome,
                   Rng& root_rng) {
  const std::uint64_t machines = engine.num_machines();
  std::vector<std::uint64_t> footprint(machines, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    footprint[owner_of(e, machines)] += 3;
  }

  for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
    std::vector<Word> counts(machines, 0);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (alive[e]) ++counts[owner_of(e, machines)];
    }
    const std::uint64_t alive_total =
        allreduce_sum_direct(engine, counts, "count|E|");
    if (alive_total == 0) break;
    ++outcome.iterations;

    const bool ship_all = alive_total <= eta;
    const double p =
        ship_all ? 1.0
                 : std::min(1.0, static_cast<double>(eta) /
                                     static_cast<double>(alive_total));

    // Per-machine staging keeps the sample race-free under the threaded
    // backend; machine-id-order concatenation preserves the order the
    // central matching pass has always seen.
    std::vector<std::vector<EdgeId>> sampled_by(machines);
    engine.run_round("sample", [&](MachineContext& ctx) {
      ctx.charge_resident(footprint[ctx.id()]);
      Rng rng = root_rng.stream((iter << 20) ^ ctx.id());
      for (EdgeId e = static_cast<EdgeId>(ctx.id()); e < g.num_edges();
           e = static_cast<EdgeId>(e + machines)) {
        if (!alive[e] || !rng.bernoulli(p)) continue;
        sampled_by[ctx.id()].push_back(e);
        const graph::Edge& ed = g.edge(e);
        ctx.send(mrc::kCentral, {e, ed.u, ed.v});
      }
    });
    std::vector<EdgeId> sampled;
    for (const auto& part : sampled_by) {
      sampled.insert(sampled.end(), part.begin(), part.end());
    }

    // Central: maximal matching on the sample (respecting already-used
    // vertices), then announce the matched vertices.
    std::vector<VertexId> newly_used;
    engine.run_central_round("match-sample", [&](MachineContext& ctx) {
      ctx.charge_resident(ctx.inbox_words());
      for (const EdgeId e : sampled) {
        const graph::Edge& ed = g.edge(e);
        if (!used[ed.u] && !used[ed.v]) {
          used[ed.u] = used[ed.v] = 1;
          out.push_back(e);
          newly_used.push_back(ed.u);
          newly_used.push_back(ed.v);
        }
      }
    });

    // Filter: the matched-vertex list (at most n words) goes down the
    // fanout tree; every machine drops its own incident edges locally.
    std::vector<Word> matched_payload(newly_used.begin(), newly_used.end());
    mrc::broadcast_from_central(engine, matched_payload, "bcast-matched");
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!alive[e]) continue;
      const graph::Edge& ed = g.edge(e);
      if (used[ed.u] || used[ed.v]) alive[e] = 0;
    }
    if (ship_all) break;  // the sample was everything; matching is maximal
  }
}

}  // namespace

FilteringMatchingResult filtering_matching(const graph::Graph& g,
                                           const MrParams& params) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);

  FilteringMatchingResult res;
  std::vector<char> alive(g.num_edges(), 1);
  std::vector<char> used(g.num_vertices(), 0);
  Rng rng(params.seed);
  filter_rounds(engine, g, alive, used, res.matching, eta, params,
                res.outcome, rng);
  for (const EdgeId e : res.matching) res.weight += g.weight(e);
  res.outcome.fill_from(engine.metrics());
  return res;
}

FilteringMatchingResult filtering_weighted_matching(const graph::Graph& g,
                                                    const MrParams& params,
                                                    double layer_base) {
  MRLR_REQUIRE(layer_base > 1.0, "layer base must exceed 1");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  mrc::Engine engine(topo);

  FilteringMatchingResult res;
  if (g.num_edges() == 0) return res;

  double wmax = 0.0, wmin = std::numeric_limits<double>::infinity();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    wmax = std::max(wmax, g.weight(e));
    wmin = std::min(wmin, g.weight(e));
  }
  // Layer k holds weights in (wmax/base^{k+1}, wmax/base^k].
  const auto layers = static_cast<std::uint64_t>(
      std::floor(std::log(wmax / wmin) / std::log(layer_base))) + 1;
  auto layer_of = [&](double w) -> std::uint64_t {
    const auto k = static_cast<std::int64_t>(
        std::floor(std::log(wmax / w) / std::log(layer_base)));
    return static_cast<std::uint64_t>(
        std::clamp<std::int64_t>(k, 0, static_cast<std::int64_t>(layers) - 1));
  };

  std::vector<char> used(g.num_vertices(), 0);
  Rng rng(params.seed);
  for (std::uint64_t k = 0; k < layers; ++k) {
    std::vector<char> alive(g.num_edges(), 0);
    bool any = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const graph::Edge& ed = g.edge(e);
      if (layer_of(g.weight(e)) == k && !used[ed.u] && !used[ed.v]) {
        alive[e] = 1;
        any = true;
      }
    }
    if (!any) continue;
    // Fresh root per layer: filter_rounds restarts its iteration count
    // at 0, and stream() is a pure function of (state, label), so
    // reusing one root would hand every layer the same per-machine
    // streams. fork() advances the parent (host-side, deterministic).
    Rng layer_rng = rng.fork(k);
    filter_rounds(engine, g, alive, used, res.matching, eta, params,
                  res.outcome, layer_rng);
  }
  for (const EdgeId e : res.matching) res.weight += g.weight(e);
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
