#include "mrlr/baselines/filtering_matching.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <span>

#include "mrlr/mrc/broadcast.hpp"
#include "mrlr/util/math.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::baselines {

using core::MrParams;
using core::owner_of;
using graph::EdgeId;
using graph::VertexId;
using mrc::MachineContext;
using mrc::MachineId;
using mrc::Word;

namespace {

/// Process-clean filtering loop. All cross-round state lives in
/// per-machine owner-mutated slots that persistent workers keep
/// resident: `alive_` is owner-strided over edges, `used_by_[m]` is
/// machine m's mirror of the matched-vertex set, refreshed by the
/// matched-vertex broadcast each iteration. The host only consumes
/// counts and sampled edges that reach the central machine as messages.
class FilterLoop {
 public:
  /// `layer_of == nullptr` runs a single unlayered pass over all edges.
  /// Registers the loop's rounds, so construct before the job starts.
  FilterLoop(mrc::Engine& engine, const graph::Graph& g, Rng root,
             std::function<std::uint64_t(double)> layer_of)
      : engine_(engine),
        g_(g),
        machines_(engine.num_machines()),
        footprint_(machines_, 0),
        alive_(g.num_edges(), 0),
        used_by_(machines_, std::vector<char>(g.num_vertices(), 0)),
        root_(root),
        layer_of_(std::move(layer_of)),
        bcast_(engine, "bcast-matched",
               [this](MachineContext& ctx, std::span<const Word> matched) {
                 apply_matched(ctx, matched);
               }) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      footprint_[owner_of(e, machines_)] += 3;
    }
    r_count_ = engine.define_round(
        "count|E|", [this](MachineContext& ctx, std::span<const Word> ps) {
          count_round(ctx, ps);
        });
    r_sample_ = engine.define_round(
        "sample", [this](MachineContext& ctx, std::span<const Word> ps) {
          sample_round(ctx, ps);
        });
  }

  /// One filtering pass over the given layer. Matched vertices
  /// accumulate in `used`; matched edges append to `out`.
  void run_layer(std::uint64_t layer, std::uint64_t eta,
                 const MrParams& params, std::vector<char>& used,
                 std::vector<EdgeId>& out, core::MrOutcome& outcome) {
    for (std::uint64_t iter = 0; iter < params.max_iterations; ++iter) {
      engine_.invoke_round(r_count_, {iter == 0 ? 1u : 0u, layer});
      std::uint64_t alive_total = 0;
      engine_.run_central_round("sum|E|", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words() + 1);
        for (const mrc::MessageView msg : ctx.messages()) {
          for (const Word w : msg.payload) alive_total += w;
        }
      });
      if (alive_total == 0) break;
      ++outcome.iterations;

      const bool ship_all = alive_total <= eta;
      const double p =
          ship_all ? 1.0
                   : std::min(1.0, static_cast<double>(eta) /
                                       static_cast<double>(alive_total));
      engine_.invoke_round(r_sample_, {layer, iter, core::pack_double(p)});

      // Central: maximal matching on the sample (respecting already-used
      // vertices). Messages merge in sender-id order, so the edge order
      // matches the old machine-id-order concatenation on every backend.
      std::vector<VertexId> newly_used;
      engine_.run_central_round("match-sample", [&](MachineContext& ctx) {
        ctx.charge_resident(ctx.inbox_words());
        for (const mrc::MessageView msg : ctx.messages()) {
          for (std::size_t i = 0; i + 2 < msg.payload.size(); i += 3) {
            const auto e = static_cast<EdgeId>(msg.payload[i]);
            const graph::Edge& ed = g_.edge(e);
            if (!used[ed.u] && !used[ed.v]) {
              used[ed.u] = used[ed.v] = 1;
              out.push_back(e);
              newly_used.push_back(ed.u);
              newly_used.push_back(ed.v);
            }
          }
        }
      });

      // Filter: the matched-vertex list (at most n words) goes down the
      // fanout tree; each machine updates its mirror and drops its own
      // incident edges in the broadcast's apply hook.
      bcast_.run(std::vector<Word>(newly_used.begin(), newly_used.end()));
      if (ship_all) break;  // the sample was everything; matching is maximal
    }
  }

 private:
  void count_round(MachineContext& ctx, std::span<const Word> ps) {
    const MachineId id = ctx.id();
    const bool init = ps[0] != 0;
    const std::uint64_t layer = ps[1];
    const std::vector<char>& used = used_by_[id];
    Word cnt = 0;
    for (EdgeId e = static_cast<EdgeId>(id); e < g_.num_edges();
         e = static_cast<EdgeId>(e + machines_)) {
      if (init) {
        const graph::Edge& ed = g_.edge(e);
        const bool in_layer =
            !layer_of_ || layer_of_(g_.weight(e)) == layer;
        alive_[e] = in_layer && !used[ed.u] && !used[ed.v];
      }
      if (alive_[e]) ++cnt;
    }
    ctx.charge_resident(1);
    ctx.send(mrc::kCentral, {cnt});
  }

  void sample_round(MachineContext& ctx, std::span<const Word> ps) {
    const MachineId id = ctx.id();
    const std::uint64_t layer = ps[0];
    const std::uint64_t iter = ps[1];
    const double p = core::unpack_double(ps[2]);
    ctx.charge_resident(footprint_[id]);
    // Streams derive from the immutable root so every backend (and the
    // worker's resident copy) draws the same bits; the layer salt
    // replaces the old fork-per-layer host mutation.
    Rng rng = root_.stream((layer << 40) ^ (iter << 20) ^ id);
    for (EdgeId e = static_cast<EdgeId>(id); e < g_.num_edges();
         e = static_cast<EdgeId>(e + machines_)) {
      if (!alive_[e] || !rng.bernoulli(p)) continue;
      const graph::Edge& ed = g_.edge(e);
      ctx.send(mrc::kCentral, {e, ed.u, ed.v});
    }
  }

  void apply_matched(MachineContext& ctx, std::span<const Word> matched) {
    const MachineId id = ctx.id();
    std::vector<char>& used = used_by_[id];
    for (const Word v : matched) used[static_cast<VertexId>(v)] = 1;
    for (EdgeId e = static_cast<EdgeId>(id); e < g_.num_edges();
         e = static_cast<EdgeId>(e + machines_)) {
      if (!alive_[e]) continue;
      const graph::Edge& ed = g_.edge(e);
      if (used[ed.u] || used[ed.v]) alive_[e] = 0;
    }
  }

  mrc::Engine& engine_;
  const graph::Graph& g_;
  std::uint64_t machines_;
  std::vector<std::uint64_t> footprint_;  // job-immutable, per machine
  std::vector<char> alive_;               // owner-strided: machine e%M owns e
  std::vector<std::vector<char>> used_by_;  // per-machine matched mirror
  Rng root_;                              // immutable; streams only
  std::function<std::uint64_t(double)> layer_of_;
  mrc::JobBroadcast bcast_;
  mrc::RoundId r_count_;
  mrc::RoundId r_sample_;
};

}  // namespace

FilteringMatchingResult filtering_matching(const graph::Graph& g,
                                           const MrParams& params) {
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  FilteringMatchingResult res;
  std::vector<char> used(g.num_vertices(), 0);
  FilterLoop loop(engine, g, Rng(params.seed), nullptr);
  loop.run_layer(0, eta, params, used, res.matching, res.outcome);
  for (const EdgeId e : res.matching) res.weight += g.weight(e);
  res.outcome.fill_from(engine.metrics());
  return res;
}

FilteringMatchingResult filtering_weighted_matching(const graph::Graph& g,
                                                    const MrParams& params,
                                                    double layer_base) {
  MRLR_REQUIRE(layer_base > 1.0, "layer base must exceed 1");
  const std::uint64_t n = std::max<std::uint64_t>(g.num_vertices(), 2);
  const std::uint64_t eta = ipow_real(n, 1.0 + params.mu, 1);

  mrc::Topology topo;
  topo.num_machines = std::max<std::uint64_t>(
      1, ceil_div(std::max<std::uint64_t>(g.num_edges(), 1), eta));
  topo.words_per_machine = static_cast<std::uint64_t>(
                               params.slack * static_cast<double>(eta)) +
                           64;
  topo.fanout = std::max<std::uint64_t>(2, ipow_real(n, params.mu, 2));
  topo.enforce = params.enforce_space;
  topo.num_threads = params.num_threads;
  topo.num_shards = std::max<std::uint64_t>(1, params.num_shards);
  mrc::Engine engine(topo);

  FilteringMatchingResult res;
  if (g.num_edges() == 0) return res;

  double wmax = 0.0, wmin = std::numeric_limits<double>::infinity();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    wmax = std::max(wmax, g.weight(e));
    wmin = std::min(wmin, g.weight(e));
  }
  // Layer k holds weights in (wmax/base^{k+1}, wmax/base^k].
  const auto layers = static_cast<std::uint64_t>(
      std::floor(std::log(wmax / wmin) / std::log(layer_base))) + 1;
  auto layer_of = [wmax, layer_base, layers](double w) -> std::uint64_t {
    const auto k = static_cast<std::int64_t>(
        std::floor(std::log(wmax / w) / std::log(layer_base)));
    return static_cast<std::uint64_t>(
        std::clamp<std::int64_t>(k, 0, static_cast<std::int64_t>(layers) - 1));
  };

  std::vector<char> used(g.num_vertices(), 0);
  // One round registry serves every layer: the layer id travels in the
  // invoke params and salts the RNG stream labels, so no host-side
  // re-seeding happens after the workers spawn.
  FilterLoop loop(engine, g, Rng(params.seed), layer_of);
  for (std::uint64_t k = 0; k < layers; ++k) {
    loop.run_layer(k, eta, params, used, res.matching, res.outcome);
  }
  for (const EdgeId e : res.matching) res.weight += g.weight(e);
  res.outcome.fill_from(engine.metrics());
  return res;
}

}  // namespace mrlr::baselines
