#pragma once
// Randomized composable coresets for matching, after Assadi & Khanna
// (SPAA 2017) — the "2 rounds, O~(n^1.5) space" rows of Figure 1.
//
// Round 1: edges are partitioned randomly across k machines; each
// machine computes a greedy maximum-weight-first matching of its part
// (its *coreset*, <= n/2 edges). Round 2: the union of all coresets
// (<= k*n/2 edges) is shipped to the central machine, which computes a
// greedy matching of the union. Two MapReduce rounds flat; the price is
// the central machine's O(k*n) space — the space/rounds trade-off the
// paper's Figure 1 contrasts with the O(c/mu)-round, O(n^{1+mu})-space
// randomized local ratio.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::baselines {

struct CoresetMatchingResult {
  std::vector<graph::EdgeId> matching;
  double weight = 0.0;
  std::uint64_t coreset_union_size = 0;  ///< edges shipped to central
  core::MrOutcome outcome;
};

/// `machines` = number of coreset parts (0 = derive from params.mu as
/// M = m / n^{1+mu}).
CoresetMatchingResult coreset_matching(const graph::Graph& g,
                                       const core::MrParams& params,
                                       std::uint64_t machines = 0);

}  // namespace mrlr::baselines
