#pragma once
// The filtering technique of Lattanzi, Moseley, Suri and Vassilvitskii
// (SPAA 2011) — the prior-work rows of Figure 1 that our randomized local
// ratio is compared against.
//
// Unweighted maximal matching (2-approximation of maximum matching):
// repeatedly sample edges into the central machine's memory, compute a
// maximal matching of the sample, and *filter* — delete every edge with a
// matched endpoint. O(c/mu) rounds w.h.p.
//
// Weighted matching (the 8-approximation): split edges into geometric
// weight layers; process layers heaviest-first with the unweighted
// routine on the still-unmatched vertices.

#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/graph/graph.hpp"

namespace mrlr::baselines {

struct FilteringMatchingResult {
  std::vector<graph::EdgeId> matching;
  double weight = 0.0;
  core::MrOutcome outcome;
};

/// Unweighted filtering maximal matching (weights ignored).
FilteringMatchingResult filtering_matching(const graph::Graph& g,
                                           const core::MrParams& params);

/// Weighted layered filtering; `layer_base` is the geometric ratio
/// between consecutive weight layers (2 in the original analysis).
FilteringMatchingResult filtering_weighted_matching(
    const graph::Graph& g, const core::MrParams& params,
    double layer_base = 2.0);

}  // namespace mrlr::baselines
