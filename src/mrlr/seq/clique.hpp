#pragma once
// Sequential maximal clique: grow greedily in a vertex order. Used as the
// central-machine finishing step of the paper's Appendix B algorithm and
// as the correctness reference in tests.

#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::seq {

/// Greedy maximal clique scanned in the given order (default 0..n-1):
/// a vertex joins if it is adjacent to every current member.
std::vector<graph::VertexId> greedy_clique(
    const graph::Graph& g, const std::vector<graph::VertexId>& order = {});

}  // namespace mrlr::seq
