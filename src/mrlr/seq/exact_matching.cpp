#include "mrlr/seq/exact_matching.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

double exact_max_matching_weight(const graph::Graph& g) {
  const std::uint64_t n = g.num_vertices();
  MRLR_REQUIRE(n <= 22, "exact matching limited to 22 vertices");
  if (n == 0) return 0.0;
  const std::uint64_t states = 1ull << n;
  // dp[mask] = max matching weight using only vertices in mask.
  std::vector<double> dp(states, 0.0);
  for (std::uint64_t mask = 1; mask < states; ++mask) {
    const unsigned v = static_cast<unsigned>(__builtin_ctzll(mask));
    // Option 1: v unmatched.
    double best = dp[mask & (mask - 1)];
    // Option 2: v matched to a neighbour in mask.
    for (const graph::Incidence& inc : g.neighbours(
             static_cast<graph::VertexId>(v))) {
      const graph::VertexId u = inc.neighbour;
      if (u == v || ((mask >> u) & 1) == 0) continue;
      const std::uint64_t rest = mask & ~(1ull << v) & ~(1ull << u);
      best = std::max(best, g.weight(inc.edge) + dp[rest]);
    }
    dp[mask] = best;
  }
  return dp[states - 1];
}

double exact_max_b_matching_weight(const graph::Graph& g,
                                   const std::vector<std::uint32_t>& b) {
  const std::uint64_t m = g.num_edges();
  MRLR_REQUIRE(m <= 22, "exact b-matching limited to 22 edges");
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  double best = 0.0;
  for (std::uint64_t mask = 0; mask < (1ull << m); ++mask) {
    std::vector<std::uint32_t> load(g.num_vertices(), 0);
    double w = 0.0;
    bool feasible = true;
    for (std::uint64_t e = 0; e < m && feasible; ++e) {
      if (((mask >> e) & 1) == 0) continue;
      const graph::Edge& ed = g.edge(static_cast<graph::EdgeId>(e));
      if (++load[ed.u] > b[ed.u] || ++load[ed.v] > b[ed.v]) {
        feasible = false;
        break;
      }
      w += g.weight(static_cast<graph::EdgeId>(e));
    }
    if (feasible) best = std::max(best, w);
  }
  return best;
}

}  // namespace mrlr::seq
