#include "mrlr/seq/greedy_matching.hpp"

#include <algorithm>
#include <numeric>

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

using graph::EdgeId;

MatchingResult greedy_matching(const graph::Graph& g) {
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
    return a < b;
  });
  return maximal_matching(g, order);
}

MatchingResult maximal_matching(const graph::Graph& g,
                                const std::vector<EdgeId>& order) {
  MatchingResult res;
  std::vector<char> used(g.num_vertices(), 0);
  auto add = [&](EdgeId e) {
    const graph::Edge& ed = g.edge(e);
    if (!used[ed.u] && !used[ed.v]) {
      used[ed.u] = used[ed.v] = 1;
      res.edges.push_back(e);
      res.weight += g.weight(e);
    }
  };
  if (order.empty()) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) add(e);
  } else {
    for (const EdgeId e : order) add(e);
  }
  return res;
}

MatchingResult greedy_b_matching(const graph::Graph& g,
                                 const std::vector<std::uint32_t>& b) {
  MRLR_REQUIRE(b.size() == g.num_vertices(), "b vector size mismatch");
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
    if (g.weight(x) != g.weight(y)) return g.weight(x) > g.weight(y);
    return x < y;
  });
  MatchingResult res;
  std::vector<std::uint32_t> load(g.num_vertices(), 0);
  for (const EdgeId e : order) {
    const graph::Edge& ed = g.edge(e);
    if (load[ed.u] < b[ed.u] && load[ed.v] < b[ed.v]) {
      ++load[ed.u];
      ++load[ed.v];
      res.edges.push_back(e);
      res.weight += g.weight(e);
    }
  }
  return res;
}

}  // namespace mrlr::seq
