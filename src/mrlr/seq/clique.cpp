#include "mrlr/seq/clique.hpp"

namespace mrlr::seq {

using graph::VertexId;

std::vector<VertexId> greedy_clique(const graph::Graph& g,
                                    const std::vector<VertexId>& order) {
  std::vector<VertexId> clique;
  if (g.num_vertices() == 0) return clique;
  // adjacency_count[v] = number of current clique members adjacent to v.
  std::vector<std::uint32_t> adjacent(g.num_vertices(), 0);
  std::vector<char> in(g.num_vertices(), 0);
  auto try_add = [&](VertexId v) {
    if (in[v] || adjacent[v] != clique.size()) return;
    in[v] = 1;
    clique.push_back(v);
    for (const graph::Incidence& inc : g.neighbours(v)) {
      ++adjacent[inc.neighbour];
    }
  };
  if (order.empty()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) try_add(v);
  } else {
    for (const VertexId v : order) try_add(v);
    for (VertexId v = 0; v < g.num_vertices(); ++v) try_add(v);
  }
  return clique;
}

}  // namespace mrlr::seq
