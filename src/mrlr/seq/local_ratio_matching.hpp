#pragma once
// Sequential local ratio for maximum weight matching
// (Paz & Schwartzman; Theorem 5.1 in the paper).
//
// Edges are processed in arbitrary order. Processing edge e = {u, v} with
// positive *modified* weight g = w(e) - phi(u) - phi(v) raises phi(u) and
// phi(v) by g and pushes e on a stack; at the end the stack is unwound,
// adding edges greedily (newest first). The result is a 1/2-approximate
// maximum weight matching for any processing order — again the
// order-freedom the randomized version exploits.
//
// phi(v) is the paper's bookkeeping from Theorem 5.6: the total weight
// reduction applied to edges incident to v, so the modified weight of any
// unstacked edge is w(e) - phi(u) - phi(v) without storing per-edge
// residuals.

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::seq {

struct MatchingResult {
  std::vector<graph::EdgeId> edges;
  double weight = 0.0;
  std::uint64_t stack_size = 0;  ///< stack depth before unwinding
};

class MatchingLocalRatio {
 public:
  explicit MatchingLocalRatio(const graph::Graph& g);

  /// Modified (residual) weight of e.
  double modified_weight(graph::EdgeId e) const;

  /// True if e has positive modified weight and is not on the stack;
  /// such edges are the paper's E_i at any point in time.
  bool edge_alive(graph::EdgeId e) const;

  /// Process e: if alive, apply the weight reduction and stack it.
  /// Returns true if the edge was stacked.
  bool process(graph::EdgeId e);

  double phi(graph::VertexId v) const { return phi_[v]; }

  std::uint64_t stack_size() const { return stack_.size(); }

  /// Unwind the stack greedily into a matching. May be called once.
  MatchingResult unwind();

 private:
  const graph::Graph& g_;
  std::vector<double> phi_;
  std::vector<char> stacked_;
  std::vector<graph::EdgeId> stack_;
  bool unwound_ = false;
};

/// Full sequential algorithm with the given edge order (default: edge id
/// order). Always 1/2-approximate.
MatchingResult local_ratio_matching(
    const graph::Graph& g, const std::vector<graph::EdgeId>& order = {});

}  // namespace mrlr::seq
