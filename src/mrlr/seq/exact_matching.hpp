#pragma once
// Exact maximum-weight matching / b-matching for small instances via
// subset dynamic programming — the OPT oracle for ratio certification in
// tests and the quality bench.

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::seq {

/// Maximum weight of any matching in g. Requires num_vertices <= 22
/// (DP over vertex subsets).
double exact_max_matching_weight(const graph::Graph& g);

/// Maximum weight of any b-matching in g. Requires num_edges <= 22
/// (search over edge subsets with feasibility pruning).
double exact_max_b_matching_weight(const graph::Graph& g,
                                   const std::vector<std::uint32_t>& b);

}  // namespace mrlr::seq
