#include "mrlr/seq/local_ratio_setcover.hpp"

#include <algorithm>
#include <limits>

#include "mrlr/setcover/validate.hpp"
#include "mrlr/util/require.hpp"

namespace mrlr::seq {

using setcover::ElementId;
using setcover::SetId;

SetCoverLocalRatio::SetCoverLocalRatio(const setcover::SetSystem& sys)
    : sys_(sys), residual_(sys.weights()) {}

bool SetCoverLocalRatio::element_active(ElementId j) const {
  const auto owners = sys_.sets_containing(j);
  if (owners.empty()) return false;  // uncoverable element
  // Active iff *all* containing sets have positive residual: once any
  // containing set is in the cover, j is covered.
  return std::all_of(owners.begin(), owners.end(),
                     [&](SetId i) { return residual_[i] > 0.0; });
}

std::vector<SetId> SetCoverLocalRatio::process(ElementId j) {
  std::vector<SetId> zeroed;
  if (!element_active(j)) return zeroed;
  const auto owners = sys_.sets_containing(j);
  double eps = std::numeric_limits<double>::infinity();
  for (const SetId i : owners) eps = std::min(eps, residual_[i]);
  lower_bound_ += eps;
  for (const SetId i : owners) {
    residual_[i] -= eps;
    if (residual_[i] <= 0.0) {
      residual_[i] = 0.0;
      zeroed.push_back(i);
      cover_.push_back(i);
    }
  }
  // At least the argmin set reaches zero, so progress is guaranteed.
  MRLR_REQUIRE(!zeroed.empty(), "local ratio step must zero a set");
  return zeroed;
}

SetCoverResult local_ratio_set_cover(
    const setcover::SetSystem& sys,
    const std::vector<ElementId>& order) {
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");
  SetCoverLocalRatio lr(sys);
  auto run = [&](ElementId j) { (void)lr.process(j); };
  if (order.empty()) {
    for (ElementId j = 0; j < sys.universe_size(); ++j) run(j);
  } else {
    for (const ElementId j : order) run(j);
    // The caller's order must touch every element at least once for the
    // output to be a cover; finish any stragglers deterministically.
    for (ElementId j = 0; j < sys.universe_size(); ++j) run(j);
  }
  SetCoverResult res;
  res.cover = lr.cover();
  res.weight = setcover::cover_weight(sys, res.cover);
  res.lower_bound = lr.lower_bound();
  return res;
}

}  // namespace mrlr::seq
