#pragma once
// Greedy (Delta+1) vertex colouring: first-fit in a vertex order. This is
// the "standard (Delta_i + 1)-vertex colouring algorithm" each central
// machine runs on its group in the paper's Algorithm 5.

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::seq {

/// First-fit colouring in the given order (default 0..n-1). Uses at most
/// max_degree(g) + 1 colours; colours are 0-based and dense.
std::vector<std::uint32_t> greedy_colouring(
    const graph::Graph& g, const std::vector<graph::VertexId>& order = {});

}  // namespace mrlr::seq
