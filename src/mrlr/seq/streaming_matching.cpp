#include "mrlr/seq/streaming_matching.hpp"

#include <algorithm>

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

using graph::EdgeId;

StreamingMatchingResult streaming_matching(
    const graph::Graph& g, double eps,
    const std::vector<EdgeId>& order) {
  MRLR_REQUIRE(eps > 0.0, "epsilon must be positive");
  std::vector<double> phi(g.num_vertices(), 0.0);
  std::vector<EdgeId> stack;
  StreamingMatchingResult res;

  auto process = [&](EdgeId e) {
    const graph::Edge& ed = g.edge(e);
    const double threshold = (1.0 + eps) * (phi[ed.u] + phi[ed.v]);
    if (g.weight(e) <= threshold) return;  // pruned
    const double gain = g.weight(e) - phi[ed.u] - phi[ed.v];
    phi[ed.u] += gain;
    phi[ed.v] += gain;
    stack.push_back(e);
    res.stack_peak = std::max<std::uint64_t>(res.stack_peak, stack.size());
  };

  if (order.empty()) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) process(e);
  } else {
    for (const EdgeId e : order) process(e);
  }

  std::vector<char> used(g.num_vertices(), 0);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const graph::Edge& ed = g.edge(*it);
    if (!used[ed.u] && !used[ed.v]) {
      used[ed.u] = used[ed.v] = 1;
      res.edges.push_back(*it);
      res.weight += g.weight(*it);
    }
  }
  return res;
}

}  // namespace mrlr::seq
