#pragma once
// Sequential local ratio for minimum weight set cover
// (Bar-Yehuda & Even; Theorem 2.1 in the paper).
//
// The method processes *elements* in an arbitrary order. For element j
// with all containing sets of positive residual weight, it subtracts
// eps_j = min_{i : j in S_i} w_i from every set containing j; sets whose
// residual hits zero join the cover. Any processing order yields an
// f-approximation, where f is the maximum element frequency — this
// order-freedom is exactly what the paper's randomized local ratio
// exploits (Section 2.1), so the engine is exposed as a stateful class
// that the MapReduce algorithm can drive in sampled order.
//
// Certificate: OPT >= sum of the eps_j (each element must be covered and
// every set containing j has weight >= eps_j at processing time, by a
// standard local ratio argument), while the returned cover weighs at most
// f * sum eps_j. lower_bound() exposes the certificate so tests can check
// the ratio without knowing OPT.

#include <vector>

#include "mrlr/setcover/set_system.hpp"

namespace mrlr::seq {

class SetCoverLocalRatio {
 public:
  explicit SetCoverLocalRatio(const setcover::SetSystem& sys);

  /// True if element j still has all containing sets at positive residual
  /// weight (the paper's U_r membership test).
  bool element_active(setcover::ElementId j) const;

  /// Process element j: perform the weight reduction if j is active.
  /// Returns the ids of sets whose residual weight reached zero now
  /// (they are appended to cover() as a side effect).
  std::vector<setcover::SetId> process(setcover::ElementId j);

  double residual_weight(setcover::SetId i) const { return residual_[i]; }

  /// Sets with zero residual weight, in the order they were zeroed.
  const std::vector<setcover::SetId>& cover() const { return cover_; }

  /// Sum of performed reductions: a lower bound on OPT.
  double lower_bound() const { return lower_bound_; }

  const setcover::SetSystem& system() const { return sys_; }

 private:
  const setcover::SetSystem& sys_;
  std::vector<double> residual_;
  std::vector<setcover::SetId> cover_;
  double lower_bound_ = 0.0;
};

struct SetCoverResult {
  std::vector<setcover::SetId> cover;
  double weight = 0.0;
  double lower_bound = 0.0;  ///< certified OPT lower bound (0 if none)
};

/// Runs the full sequential algorithm, processing elements in the given
/// order (default 0..m-1). The instance must be coverable.
SetCoverResult local_ratio_set_cover(
    const setcover::SetSystem& sys,
    const std::vector<setcover::ElementId>& order = {});

}  // namespace mrlr::seq
