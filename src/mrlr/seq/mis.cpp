#include "mrlr/seq/mis.hpp"

#include <algorithm>

namespace mrlr::seq {

using graph::VertexId;

std::vector<VertexId> greedy_mis(const graph::Graph& g,
                                 const std::vector<VertexId>& order) {
  std::vector<char> blocked(g.num_vertices(), 0);
  std::vector<VertexId> mis;
  auto take = [&](VertexId v) {
    if (blocked[v]) return;
    mis.push_back(v);
    blocked[v] = 1;
    for (const graph::Incidence& inc : g.neighbours(v)) {
      blocked[inc.neighbour] = 1;
    }
  };
  if (order.empty()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) take(v);
  } else {
    for (const VertexId v : order) take(v);
    for (VertexId v = 0; v < g.num_vertices(); ++v) take(v);
  }
  return mis;
}

LubyResult luby_mis(const graph::Graph& g, Rng& rng) {
  LubyResult res;
  const std::uint64_t n = g.num_vertices();
  // live = still in the residual graph.
  std::vector<char> live(n, 1);
  std::vector<std::uint64_t> mark(n, 0);
  std::uint64_t remaining = n;
  while (remaining > 0) {
    ++res.rounds;
    for (VertexId v = 0; v < n; ++v) {
      if (live[v]) mark[v] = rng();
    }
    // Local minima join the MIS. Ties broken by id (ordered pair compare).
    std::vector<VertexId> winners;
    for (VertexId v = 0; v < n; ++v) {
      if (!live[v]) continue;
      bool is_min = true;
      for (const graph::Incidence& inc : g.neighbours(v)) {
        const VertexId u = inc.neighbour;
        if (!live[u]) continue;
        if (mark[u] < mark[v] || (mark[u] == mark[v] && u < v)) {
          is_min = false;
          break;
        }
      }
      if (is_min) winners.push_back(v);
    }
    for (const VertexId v : winners) {
      if (!live[v]) continue;  // neighbour of an earlier winner this round
      res.independent_set.push_back(v);
      live[v] = 0;
      --remaining;
      for (const graph::Incidence& inc : g.neighbours(v)) {
        if (live[inc.neighbour]) {
          live[inc.neighbour] = 0;
          --remaining;
        }
      }
    }
  }
  std::sort(res.independent_set.begin(), res.independent_set.end());
  return res;
}

}  // namespace mrlr::seq
