#pragma once
// The (2+eps)-approximate semi-streaming matching of Paz & Schwartzman
// (SODA 2017), which inspired the paper's randomized local ratio
// technique (Section 1.2). One pass over the edge stream: an edge with
// w(e) > (1+eps)(phi(u)+phi(v)) is stacked and charges its residual to
// both endpoints; the epsilon-pruning bounds the stack at
// O(n log(1+eps) W) instead of the unbounded plain-local-ratio stack.
//
// Included both as a historically faithful point of comparison (it is
// space-efficient but *not* distributed — the contrast the paper draws)
// and as the eps-ablation companion to Algorithm 7's epsilon-adjusted
// reductions.

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"
#include "mrlr/seq/local_ratio_matching.hpp"

namespace mrlr::seq {

struct StreamingMatchingResult {
  std::vector<graph::EdgeId> edges;
  double weight = 0.0;
  std::uint64_t stack_peak = 0;  ///< max stack size during the pass
};

/// Single pass in the given order (default: edge id order, i.e. an
/// arbitrary stream). (2 + eps)-approximate; eps > 0.
StreamingMatchingResult streaming_matching(
    const graph::Graph& g, double eps,
    const std::vector<graph::EdgeId>& order = {});

}  // namespace mrlr::seq
