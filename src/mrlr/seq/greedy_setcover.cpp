#include "mrlr/seq/greedy_setcover.hpp"

#include <queue>

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

using setcover::ElementId;
using setcover::SetId;

GreedyCoverResult greedy_set_cover(const setcover::SetSystem& sys) {
  MRLR_REQUIRE(sys.coverable(), "instance has an uncoverable element");

  std::vector<char> covered(sys.universe_size(), 0);
  std::uint64_t uncovered = sys.universe_size();
  // live[i] = current count of uncovered elements in S_i. Maintained
  // lazily: heap entries carry the count they were pushed with; stale
  // entries are re-pushed with the refreshed count.
  std::vector<std::uint64_t> live(sys.num_sets());
  struct Entry {
    double ratio;  // live / weight at push time
    SetId set;
    std::uint64_t live_at_push;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.ratio < b.ratio; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (SetId i = 0; i < sys.num_sets(); ++i) {
    live[i] = sys.set(i).size();
    if (live[i] > 0) {
      heap.push({static_cast<double>(live[i]) / sys.weight(i), i, live[i]});
    }
  }

  GreedyCoverResult res;
  std::vector<char> taken(sys.num_sets(), 0);
  while (uncovered > 0) {
    MRLR_REQUIRE(!heap.empty(), "greedy ran out of useful sets");
    const Entry top = heap.top();
    heap.pop();
    if (taken[top.set]) continue;
    // Refresh the live count; if stale, re-push with the true ratio.
    std::uint64_t fresh = 0;
    for (const ElementId j : sys.set(top.set)) {
      if (!covered[j]) ++fresh;
    }
    if (fresh == 0) continue;
    if (fresh != top.live_at_push) {
      heap.push({static_cast<double>(fresh) / sys.weight(top.set), top.set,
                 fresh});
      continue;
    }
    taken[top.set] = 1;
    res.cover.push_back(top.set);
    res.weight += sys.weight(top.set);
    ++res.iterations;
    for (const ElementId j : sys.set(top.set)) {
      if (!covered[j]) {
        covered[j] = 1;
        --uncovered;
      }
    }
  }
  return res;
}

}  // namespace mrlr::seq
