#include "mrlr/seq/colouring.hpp"

#include <limits>

namespace mrlr::seq {

using graph::VertexId;

std::vector<std::uint32_t> greedy_colouring(
    const graph::Graph& g, const std::vector<VertexId>& order) {
  constexpr std::uint32_t kUncoloured = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> colour(g.num_vertices(), kUncoloured);
  // Scratch marking of colours used by neighbours; epoch trick avoids
  // clearing between vertices.
  std::vector<std::uint64_t> seen(g.max_degree() + 2, 0);
  std::uint64_t epoch = 0;

  auto assign = [&](VertexId v) {
    if (colour[v] != kUncoloured) return;
    ++epoch;
    for (const graph::Incidence& inc : g.neighbours(v)) {
      const std::uint32_t c = colour[inc.neighbour];
      if (c != kUncoloured && c < seen.size()) seen[c] = epoch;
    }
    std::uint32_t c = 0;
    while (seen[c] == epoch) ++c;
    colour[v] = c;
  };
  if (order.empty()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) assign(v);
  } else {
    for (const VertexId v : order) assign(v);
    for (VertexId v = 0; v < g.num_vertices(); ++v) assign(v);
  }
  return colour;
}

}  // namespace mrlr::seq
