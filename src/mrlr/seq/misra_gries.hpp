#pragma once
// Misra & Gries' constructive proof of Vizing's theorem: a proper edge
// colouring with at most Delta + 1 colours in O(n*m) time. The paper's
// edge-colouring result (Theorem 6.6, Remark 6.5) colours each random
// group with this algorithm on a central machine.

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"

namespace mrlr::seq {

/// Proper edge colouring of g using colours 0 .. max_degree(g) (i.e. at
/// most Delta+1 distinct colours). Returns one colour per edge id.
std::vector<std::uint32_t> misra_gries_edge_colouring(const graph::Graph& g);

}  // namespace mrlr::seq
