#include "mrlr/seq/misra_gries.hpp"

#include <limits>

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

using graph::EdgeId;
using graph::VertexId;

namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

/// Working state: per-edge colour and, per vertex, the edge occupying
/// each colour slot (kNoEdge when free).
class Colourer {
 public:
  explicit Colourer(const graph::Graph& g)
      : g_(g),
        palette_(g.max_degree() + 1),
        colour_(g.num_edges(), kNone),
        at_(g.num_vertices() * palette_, kNoEdge),
        in_fan_(g.num_vertices(), 0) {}

  std::vector<std::uint32_t> run() {
    for (EdgeId e = 0; e < g_.num_edges(); ++e) colour_edge(e);
    return colour_;
  }

 private:
  static constexpr std::uint32_t kNoEdge =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t& at(VertexId v, std::uint32_t c) {
    return at_[static_cast<std::size_t>(v) * palette_ + c];
  }

  bool is_free(VertexId v, std::uint32_t c) { return at(v, c) == kNoEdge; }

  std::uint32_t free_colour(VertexId v) {
    for (std::uint32_t c = 0; c < palette_; ++c) {
      if (is_free(v, c)) return c;
    }
    MRLR_REQUIRE(false, "no free colour: degree exceeds palette");
    return kNone;
  }

  void set_colour(EdgeId e, std::uint32_t c) {
    const graph::Edge& ed = g_.edge(e);
    if (colour_[e] != kNone) {
      at(ed.u, colour_[e]) = kNoEdge;
      at(ed.v, colour_[e]) = kNoEdge;
    }
    colour_[e] = c;
    if (c != kNone) {
      MRLR_REQUIRE(at(ed.u, c) == kNoEdge && at(ed.v, c) == kNoEdge,
                   "colour slot already occupied");
      at(ed.u, c) = e;
      at(ed.v, c) = e;
    }
  }

  /// Invert the maximal path through `start` whose edges alternate
  /// colours d, c, d, ... (beginning with d). After inversion, d is free
  /// at `start` (its d-edge, if any, became c). The walk cannot cycle:
  /// `start` has no c-edge (c is free there), so it is an endpoint of its
  /// path component in the c/d subgraph.
  void invert_cd_path(VertexId start, std::uint32_t c, std::uint32_t d) {
    VertexId cur = start;
    std::uint32_t follow = d;
    // Collect the path first; recolouring while walking would corrupt the
    // slot lookups used to find the next edge.
    std::vector<EdgeId> path;
    while (path.size() <= g_.num_vertices()) {
      const std::uint32_t e = at(cur, follow);
      if (e == kNoEdge) break;
      path.push_back(e);
      cur = g_.edge(e).other(cur);
      follow = (follow == d) ? c : d;
    }
    // Uncolour the whole path, then re-colour with swapped colours.
    std::vector<std::uint32_t> old(path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      old[i] = colour_[path[i]];
      set_colour(path[i], kNone);
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      set_colour(path[i], old[i] == c ? d : c);
    }
  }

  void colour_edge(EdgeId e0) {
    const VertexId u = g_.edge(e0).u;
    const VertexId v = g_.edge(e0).v;

    // 1. Maximal fan F of u starting at v: fan edges (u, f_i) are
    //    coloured for i >= 1 and colour(u, f_i) is free at f_{i-1}.
    std::vector<VertexId> fan{v};
    std::vector<EdgeId> fan_edge{e0};
    ++fan_epoch_;
    in_fan_[v] = fan_epoch_;
    bool extended = true;
    while (extended) {
      extended = false;
      for (const graph::Incidence& inc : g_.neighbours(u)) {
        const EdgeId e = inc.edge;
        const VertexId w = inc.neighbour;
        if (in_fan_[w] == fan_epoch_ || colour_[e] == kNone) continue;
        if (is_free(fan.back(), colour_[e])) {
          fan.push_back(w);
          fan_edge.push_back(e);
          in_fan_[w] = fan_epoch_;
          extended = true;
        }
      }
    }

    // 2. c free on u, d free on the last fan vertex.
    const std::uint32_t c = free_colour(u);
    const std::uint32_t d = free_colour(fan.back());
    if (c != d) {
      // 3. Invert the cd-path from u so d becomes free at u.
      invert_cd_path(u, c, d);
    }

    // 4. Find the shortest fan prefix f_0..f_j that is still a fan in the
    //    current colouring and has d free at f_j; rotate it and colour
    //    (u, f_j) with d. Misra & Gries prove such j exists.
    std::size_t j = fan.size();
    for (std::size_t i = 0; i < fan.size(); ++i) {
      // Prefix validity: for 1 <= t <= i, colour(u, f_t) must be free at
      // f_{t-1}. Checked incrementally: prefix_valid holds for i-1.
      if (i > 0) {
        const std::uint32_t ce = colour_[fan_edge[i]];
        if (ce == kNone || !is_free(fan[i - 1], ce)) break;
      }
      if (is_free(fan[i], d) && is_free(u, d)) {
        j = i;
        break;
      }
    }
    MRLR_REQUIRE(j < fan.size(), "Misra-Gries: no rotatable fan prefix");

    // Rotate: shift the colour of (u, f_{t+1}) onto (u, f_t) for t < j.
    for (std::size_t t = 0; t < j; ++t) {
      const std::uint32_t ct = colour_[fan_edge[t + 1]];
      set_colour(fan_edge[t + 1], kNone);
      set_colour(fan_edge[t], ct);
    }
    set_colour(fan_edge[j], d);
  }

  const graph::Graph& g_;
  std::uint32_t palette_;
  std::vector<std::uint32_t> colour_;
  std::vector<std::uint32_t> at_;
  std::vector<std::uint64_t> in_fan_;
  std::uint64_t fan_epoch_ = 0;
};

}  // namespace

std::vector<std::uint32_t> misra_gries_edge_colouring(const graph::Graph& g) {
  if (g.num_edges() == 0) return {};
  return Colourer(g).run();
}

}  // namespace mrlr::seq
