#pragma once
// Sequential maximal independent set algorithms: the greedy scan (used as
// the central-machine finishing step by the paper's Algorithm 2/6) and
// Luby's randomized algorithm (the classic PRAM baseline mentioned in
// Section 6, O(log n) rounds when simulated in MapReduce).

#include <cstdint>
#include <vector>

#include "mrlr/graph/graph.hpp"
#include "mrlr/util/rng.hpp"

namespace mrlr::seq {

/// Greedy MIS in the given vertex order (default 0..n-1). Output is
/// always maximal.
std::vector<graph::VertexId> greedy_mis(
    const graph::Graph& g, const std::vector<graph::VertexId>& order = {});

struct LubyResult {
  std::vector<graph::VertexId> independent_set;
  std::uint64_t rounds = 0;  ///< number of Luby phases executed
};

/// Luby's algorithm: each round every live vertex draws a random value;
/// local minima join the set; winners and neighbours leave the graph.
LubyResult luby_mis(const graph::Graph& g, Rng& rng);

}  // namespace mrlr::seq
