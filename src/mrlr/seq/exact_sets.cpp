#include "mrlr/seq/exact_sets.hpp"

#include <algorithm>
#include <vector>

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

namespace {

/// Max independent set over the candidate mask, classic branch and
/// bound: pick any candidate v of maximum residual degree; recurse on
/// "exclude v" and "include v" (dropping N(v)).
std::uint64_t mis_bb(const std::vector<std::uint64_t>& adj,
                     std::uint64_t candidates) {
  if (candidates == 0) return 0;
  // Find the candidate with the largest degree within the candidates.
  int best_v = -1;
  int best_deg = -1;
  std::uint64_t rest = candidates;
  while (rest != 0) {
    const int v = __builtin_ctzll(rest);
    rest &= rest - 1;
    const int deg = __builtin_popcountll(adj[v] & candidates);
    if (deg > best_deg) {
      best_deg = deg;
      best_v = v;
    }
  }
  if (best_deg <= 1) {
    // Candidates form a disjoint union of edges and isolated vertices:
    // take one endpoint per edge plus all isolated vertices.
    std::uint64_t count = 0;
    std::uint64_t left = candidates;
    while (left != 0) {
      const int v = __builtin_ctzll(left);
      left &= left - 1;
      ++count;
      left &= ~adj[v];  // drop v's (at most one) partner
    }
    return count;
  }
  const std::uint64_t without =
      mis_bb(adj, candidates & ~(1ull << best_v));
  const std::uint64_t with =
      1 + mis_bb(adj, candidates & ~(1ull << best_v) & ~adj[best_v]);
  return std::max(without, with);
}

std::vector<std::uint64_t> adjacency_masks(const graph::Graph& g) {
  std::vector<std::uint64_t> adj(g.num_vertices(), 0);
  for (const graph::Edge& e : g.edges()) {
    adj[e.u] |= 1ull << e.v;
    adj[e.v] |= 1ull << e.u;
  }
  return adj;
}

}  // namespace

std::uint64_t exact_max_independent_set_size(const graph::Graph& g) {
  const std::uint64_t n = g.num_vertices();
  MRLR_REQUIRE(n <= 40, "exact MIS limited to 40 vertices");
  if (n == 0) return 0;
  const auto adj = adjacency_masks(g);
  const std::uint64_t all = (n == 64) ? ~0ull : ((1ull << n) - 1);
  return mis_bb(adj, all);
}

std::uint64_t exact_max_clique_size(const graph::Graph& g) {
  const std::uint64_t n = g.num_vertices();
  MRLR_REQUIRE(n <= 40, "exact clique limited to 40 vertices");
  if (n == 0) return 0;
  // Complement adjacency (small n, so materializing it is fine here).
  auto adj = adjacency_masks(g);
  const std::uint64_t all = (1ull << n) - 1;
  for (std::uint64_t v = 0; v < n; ++v) {
    adj[v] = all & ~adj[v] & ~(1ull << v);
  }
  return mis_bb(adj, all);
}

}  // namespace mrlr::seq
