#include "mrlr/seq/local_ratio_matching.hpp"

#include "mrlr/util/require.hpp"

namespace mrlr::seq {

using graph::EdgeId;
using graph::VertexId;

MatchingLocalRatio::MatchingLocalRatio(const graph::Graph& g)
    : g_(g), phi_(g.num_vertices(), 0.0), stacked_(g.num_edges(), 0) {}

double MatchingLocalRatio::modified_weight(EdgeId e) const {
  const graph::Edge& ed = g_.edge(e);
  return g_.weight(e) - phi_[ed.u] - phi_[ed.v];
}

bool MatchingLocalRatio::edge_alive(EdgeId e) const {
  return !stacked_[e] && modified_weight(e) > 0.0;
}

bool MatchingLocalRatio::process(EdgeId e) {
  if (!edge_alive(e)) return false;
  const graph::Edge& ed = g_.edge(e);
  const double gain = modified_weight(e);
  phi_[ed.u] += gain;
  phi_[ed.v] += gain;
  stacked_[e] = 1;
  stack_.push_back(e);
  return true;
}

MatchingResult MatchingLocalRatio::unwind() {
  MRLR_REQUIRE(!unwound_, "unwind() may be called once");
  unwound_ = true;
  MatchingResult res;
  res.stack_size = stack_.size();
  std::vector<char> used(g_.num_vertices(), 0);
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const graph::Edge& ed = g_.edge(*it);
    if (!used[ed.u] && !used[ed.v]) {
      used[ed.u] = used[ed.v] = 1;
      res.edges.push_back(*it);
      res.weight += g_.weight(*it);
    }
  }
  return res;
}

MatchingResult local_ratio_matching(const graph::Graph& g,
                                    const std::vector<EdgeId>& order) {
  MatchingLocalRatio lr(g);
  if (order.empty()) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) (void)lr.process(e);
  } else {
    for (const EdgeId e : order) (void)lr.process(e);
    // Positive-weight edges the order missed must still be processed for
    // the guarantee to hold (no positive edge may remain).
    for (EdgeId e = 0; e < g.num_edges(); ++e) (void)lr.process(e);
  }
  return lr.unwind();
}

}  // namespace mrlr::seq
