#pragma once
// Exact maximum independent set / maximum clique for small instances,
// via branch and bound over adjacency bitmasks. MIS/clique algorithms in
// this library only guarantee *maximality*, not maximum size; these
// oracles let benches and tests report how far from maximum the maximal
// solutions land.

#include <cstdint>

#include "mrlr/graph/graph.hpp"

namespace mrlr::seq {

/// Size of a maximum independent set. Requires num_vertices <= 40
/// (branch and bound; worst case exponential, fast at these sizes).
std::uint64_t exact_max_independent_set_size(const graph::Graph& g);

/// Size of a maximum clique (max independent set of the complement).
/// Requires num_vertices <= 40.
std::uint64_t exact_max_clique_size(const graph::Graph& g);

}  // namespace mrlr::seq
