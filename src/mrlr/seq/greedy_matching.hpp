#pragma once
// Greedy matchings: the classic 1/2-approximate weight-sorted greedy and
// the arbitrary-order maximal matching (used as comparison baselines and
// as the finishing step of several MapReduce algorithms).

#include <vector>

#include "mrlr/graph/graph.hpp"
#include "mrlr/seq/local_ratio_matching.hpp"

namespace mrlr::seq {

/// Sort edges by weight (descending, ties by id) and add greedily.
/// 1/2-approximate for weighted matching.
MatchingResult greedy_matching(const graph::Graph& g);

/// Add edges in the given order (default id order) when both endpoints
/// are free: a maximal matching.
MatchingResult maximal_matching(const graph::Graph& g,
                                const std::vector<graph::EdgeId>& order = {});

/// Greedy b-matching: weight-sorted, add an edge when both endpoints have
/// residual capacity. 1/2-approximate for the b-matching LP relaxation's
/// integral problem (comparison baseline only).
MatchingResult greedy_b_matching(const graph::Graph& g,
                                 const std::vector<std::uint32_t>& b);

}  // namespace mrlr::seq
