#pragma once
// Chvátal's greedy set cover: repeatedly take the set maximizing
// (newly covered elements) / weight. H_Delta-approximate. The eps-greedy
// relaxation (Kumar et al., used by the paper's Algorithm 3) accepts any
// set within a (1+eps) factor of the best ratio and is
// (1+eps)H_Delta-approximate; the sequential implementation here always
// takes the best set (eps = 0) and serves as the quality reference for
// the MapReduce version.

#include <vector>

#include "mrlr/setcover/set_system.hpp"

namespace mrlr::seq {

struct GreedyCoverResult {
  std::vector<setcover::SetId> cover;
  double weight = 0.0;
  std::uint64_t iterations = 0;
};

/// Exact greedy via a lazy-reevaluation priority queue, O(total
/// incidences * log n). The instance must be coverable.
GreedyCoverResult greedy_set_cover(const setcover::SetSystem& sys);

}  // namespace mrlr::seq
