#pragma once
// Payload encodings for the serve-mode frame kinds (kJobSubmit ..
// kServeShutdown in exec/shard_transport.hpp) — the wire vocabulary a
// long-running mrlr_serve daemon shares with its clients.
//
// Framing and handshake are the shard protocol's: every serve
// connection opens with the 24-byte hello/ack (exec/shard_channel.hpp),
// then speaks length-prefixed checksummed frames. Requests carry a
// client-chosen monotonically increasing sequence number; every reply
// echoes the sequence of the request it answers, so a client can never
// mis-attribute a reply. Payloads use the little-endian u64 lane
// discipline of job_spec/job_result; every decoder throws
// exec::TransportError(kBadPayload) on anything malformed — a corrupt
// reply refuses to decode, it never reports a wrong admission or
// result.
//
// Submit request payload: one encoded JobSpec, verbatim (already
// versioned). Stats/health/shutdown requests carry empty payloads.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mrlr::serve {

/// Why a submission was not admitted. The reason is part of the wire
/// contract: clients branch on it (retry later on kOverBudget, fix the
/// spec on kMalformedSpec, give up on kNeverFits).
enum class RejectReason : std::uint64_t {
  kNone = 0,             ///< accepted
  kMalformedSpec = 1,    ///< the submit payload failed JobSpec decoding
  kUnknownAlgorithm = 2, ///< spec names an algorithm this build lacks
  kNeverFits = 3,        ///< projected words exceed the budget even on
                         ///< an idle daemon — resubmission is futile
  kOverBudget = 4,       ///< projected words do not fit next to the
                         ///< currently admitted jobs — retry later
  kShuttingDown = 5,     ///< daemon is draining; no new work
};

std::string_view reject_reason_name(RejectReason r);

/// kJobAdmission payload: the daemon's accept-or-reject decision. The
/// space fields are always filled (accepted or not), so a client can
/// log admission pressure without a second stats round-trip.
struct AdmissionReply {
  bool accepted = false;
  std::uint64_t job_id = 0;  ///< daemon-unique, 0 when rejected
  RejectReason reason = RejectReason::kNone;
  std::string message;  ///< human-readable detail (decode error text, ...)
  std::uint64_t projected_words = 0;  ///< this job's projected footprint
  std::uint64_t budget_words = 0;     ///< configured budget (0 = unlimited)
  std::uint64_t words_in_use = 0;     ///< admitted jobs' projected total

  friend bool operator==(const AdmissionReply&,
                         const AdmissionReply&) = default;
};

/// kJobResult payload: the outcome of one admitted job. `result` holds
/// an encoded JobResult when ok; `error` the execution failure text
/// otherwise. The wait/run spans let clients measure daemon-side
/// latency without trusting their own clocks.
struct ResultReply {
  std::uint64_t job_id = 0;
  bool ok = false;
  std::string error;
  std::uint64_t queue_wait_ns = 0;  ///< admission to executor slot
  std::uint64_t run_ns = 0;         ///< fork to result frame
  std::vector<std::byte> result;    ///< encoded JobResult (ok only)

  friend bool operator==(const ResultReply&, const ResultReply&) = default;
};

/// kServeStats reply payload: monotonic counters plus the live gauges.
struct StatsReply {
  std::uint64_t jobs_submitted = 0;  ///< submit frames seen (any outcome)
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_completed = 0;  ///< result delivered, ok=true
  std::uint64_t jobs_failed = 0;     ///< result delivered, ok=false
  std::uint64_t jobs_cancelled = 0;  ///< client left mid-job; job killed
  std::uint64_t jobs_running = 0;    ///< gauge: forked and not finished
  std::uint64_t jobs_queued = 0;     ///< gauge: admitted, waiting for a slot
  std::uint64_t words_budget = 0;
  std::uint64_t words_in_use = 0;
  std::uint64_t uptime_ms = 0;

  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

/// kServeHealth reply payload: the cheap liveness answer.
struct HealthReply {
  bool shutting_down = false;
  std::uint64_t jobs_running = 0;
  std::uint64_t uptime_ms = 0;

  friend bool operator==(const HealthReply&, const HealthReply&) = default;
};

std::vector<std::byte> encode_admission_reply(const AdmissionReply& r);
AdmissionReply decode_admission_reply(std::span<const std::byte> bytes);

std::vector<std::byte> encode_result_reply(const ResultReply& r);
ResultReply decode_result_reply(std::span<const std::byte> bytes);

std::vector<std::byte> encode_stats_reply(const StatsReply& r);
StatsReply decode_stats_reply(std::span<const std::byte> bytes);

std::vector<std::byte> encode_health_reply(const HealthReply& r);
HealthReply decode_health_reply(std::span<const std::byte> bytes);

}  // namespace mrlr::serve
