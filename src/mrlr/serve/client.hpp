#pragma once
// Client side of the serve protocol: one connection to an mrlr_serve
// daemon, speaking submit / stats / health / shutdown requests. Used by
// `mrlr_cli submit`, the serve bench scenarios, and the protocol tests.
//
// The client owns a per-connection monotonically increasing sequence
// counter; every reply is validated (expect_frame + payload decoding)
// against the request it answers, so a reordered or corrupt reply is a
// typed TransportError, never a silently wrong result.

#include <chrono>
#include <cstdint>

#include "mrlr/exec/shard_channel.hpp"
#include "mrlr/jobs/job_result.hpp"
#include "mrlr/jobs/job_spec.hpp"
#include "mrlr/serve/protocol.hpp"

namespace mrlr::serve {

class ServeClient {
 public:
  /// Connects and performs the hello/ack handshake. Throws the
  /// TransportError taxonomy on refusal or timeout.
  explicit ServeClient(const exec::Endpoint& ep,
                       std::chrono::milliseconds connect_timeout =
                           std::chrono::seconds(10));

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one kJobSubmit and returns the daemon's admission decision.
  /// On acceptance the job is running (or queued) daemon-side; call
  /// wait_result() next. Does not throw on rejection — a typed reject
  /// is a protocol answer, not a transport failure.
  AdmissionReply submit(const jobs::JobSpec& spec);

  /// Blocks until the kJobResult frame for the last accepted submit
  /// arrives and returns it decoded. `decode_result` unpacks the
  /// embedded JobResult of an ok reply.
  ResultReply wait_result();
  static jobs::JobResult decode_result(const ResultReply& reply);

  StatsReply stats();
  HealthReply health();

  /// Asks the daemon to drain and stop; returns once it acknowledges.
  void shutdown();

  /// Drops the connection without protocol goodbye — how the
  /// disconnect-mid-job tests model a vanished client.
  void abandon();

 private:
  exec::TcpChannel ch_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t last_submit_sequence_ = 0;
};

}  // namespace mrlr::serve
