#include "mrlr/serve/admission.hpp"

#include <algorithm>
#include <string>

#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/graph/io_binary.hpp"
#include "mrlr/util/math.hpp"

namespace mrlr::serve {

namespace {

[[noreturn]] void bad_instance(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "admission: " + what);
}

std::uint32_t header_u32(std::span<const std::byte> in, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(in[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t instance_dimension(const jobs::JobSpec& spec) {
  if (spec.kind == jobs::JobSpec::InstanceKind::kGraph) {
    // The .mgb header keeps n at a fixed offset (graph/io_binary.hpp),
    // so admission never parses the edge list; magic and version are
    // still vetted so a garbage instance is refused here, not at run
    // time in a forked job.
    if (spec.instance.size() < 32) {
      bad_instance("graph instance shorter than the .mgb header");
    }
    if (header_u32(spec.instance, 0) != graph::kMgbMagic) {
      bad_instance("graph instance does not start with the MGB1 magic");
    }
    if (header_u32(spec.instance, 4) != graph::kMgbVersion) {
      bad_instance("graph instance has an unsupported .mgb version");
    }
    return exec::read_u64(spec.instance, 8);
  }
  // Set-system block format (job_spec.cpp): the universe is the first
  // u64.
  if (spec.instance.size() < 16) {
    bad_instance("set system instance shorter than its header");
  }
  return exec::read_u64(spec.instance, 0);
}

std::uint64_t projected_machine_words(const jobs::JobSpec& spec) {
  const std::uint64_t n = instance_dimension(spec);
  const core::MrParams& p = spec.params;
  const std::uint64_t eta = std::max<std::uint64_t>(
      1, ipow_real(std::max<std::uint64_t>(n, 2), 1.0 + p.mu));
  const double words =
      (p.slack / 16.0) *
      (24.0 * std::max(1.0, p.sample_boost) * static_cast<double>(eta) +
       2.0 * static_cast<double>(n));
  if (words >= 9.0e18) return ~std::uint64_t{0};  // saturate, never wrap
  return static_cast<std::uint64_t>(words) + 64;
}

}  // namespace mrlr::serve
