#include "mrlr/serve/client.hpp"

#include <unistd.h>

#include <atomic>

#include "mrlr/exec/shard_transport.hpp"

namespace mrlr::serve {

namespace {

/// Connection nonce: pid + a process-wide counter, so two clients in
/// one process (or two processes on one host) never collide in the
/// daemon's handshake ledger.
std::uint64_t next_nonce() {
  static std::atomic<std::uint64_t> counter{0};
  return (static_cast<std::uint64_t>(::getpid()) << 32) |
         (counter.fetch_add(1, std::memory_order_relaxed) & 0xFFFFFFFFu);
}

}  // namespace

ServeClient::ServeClient(const exec::Endpoint& ep,
                         std::chrono::milliseconds connect_timeout)
    : ch_(exec::tcp_connect(ep, connect_timeout)) {
  ch_.set_read_timeout(std::chrono::seconds(10));
  exec::handshake_connect(ch_, /*shard=*/0, next_nonce());
  ch_.set_read_timeout(std::chrono::milliseconds(0));
}

AdmissionReply ServeClient::submit(const jobs::JobSpec& spec) {
  const std::uint64_t seq = next_sequence_++;
  exec::write_frame(ch_, exec::FrameKind::kJobSubmit, 0, seq,
                    jobs::encode_job_spec(spec));
  const exec::Frame reply =
      exec::expect_frame(ch_, exec::FrameKind::kJobAdmission, 0, seq);
  const AdmissionReply admission = decode_admission_reply(reply.payload);
  if (admission.accepted) last_submit_sequence_ = seq;
  return admission;
}

ResultReply ServeClient::wait_result() {
  const exec::Frame frame = exec::expect_frame(
      ch_, exec::FrameKind::kJobResult, 0, last_submit_sequence_);
  return decode_result_reply(frame.payload);
}

jobs::JobResult ServeClient::decode_result(const ResultReply& reply) {
  return jobs::decode_job_result(reply.result);
}

StatsReply ServeClient::stats() {
  const std::uint64_t seq = next_sequence_++;
  exec::write_frame(ch_, exec::FrameKind::kServeStats, 0, seq, {});
  const exec::Frame reply =
      exec::expect_frame(ch_, exec::FrameKind::kServeStats, 0, seq);
  return decode_stats_reply(reply.payload);
}

HealthReply ServeClient::health() {
  const std::uint64_t seq = next_sequence_++;
  exec::write_frame(ch_, exec::FrameKind::kServeHealth, 0, seq, {});
  const exec::Frame reply =
      exec::expect_frame(ch_, exec::FrameKind::kServeHealth, 0, seq);
  return decode_health_reply(reply.payload);
}

void ServeClient::shutdown() {
  const std::uint64_t seq = next_sequence_++;
  exec::write_frame(ch_, exec::FrameKind::kServeShutdown, 0, seq, {});
  (void)exec::expect_frame(ch_, exec::FrameKind::kServeShutdown, 0, seq);
}

void ServeClient::abandon() { ch_.close_now(); }

}  // namespace mrlr::serve
