#pragma once
// Admission control for the serve daemon: projecting one job's
// per-machine space footprint from its spec alone, before anything
// runs.
//
// The projection is the engine's own per-machine capacity formula (the
// Theorem 5.6 space accounting every RLR driver provisions,
// core/rlr_matching.cpp):
//
//   eta       = max(1, round(n^(1 + mu)))
//   projected = floor((slack / 16) *
//               (24 * max(1, sample_boost) * eta + 2 * n)) + 64   words
//
// where n is the instance's vertex count (graphs) or universe size
// (set systems), read from the instance header without materializing
// the instance. The daemon admits a job iff the sum of projected words
// over all admitted-and-unfinished jobs stays within its configured
// budget — the same quantity `max_machine_words` reports after the
// fact, projected before the run instead.

#include <cstdint>

#include "mrlr/jobs/job_spec.hpp"

namespace mrlr::serve {

/// Reads the instance's n (graph vertex count / set-system universe)
/// from the spec's instance header. Throws
/// exec::TransportError(kBadPayload) when the header is malformed.
std::uint64_t instance_dimension(const jobs::JobSpec& spec);

/// The formula above. Never zero.
std::uint64_t projected_machine_words(const jobs::JobSpec& spec);

}  // namespace mrlr::serve
