#pragma once
// The mrlr_serve daemon: a long-running process that accepts job
// submissions over the serve protocol (serve/protocol.hpp), admits
// them against a per-machine space budget (serve/admission.hpp), runs
// each admitted job in its own forked process, and streams the
// JobResult back to the submitting client.
//
// Job lifecycle:
//
//   submit --> admission (typed reject or job id)
//          --> queued    (admitted, waiting for an executor slot;
//                         the projected words are already reserved)
//          --> running   (forked into its own process group; the
//                         connection thread relays the child's result
//                         frame back to the client)
//          --> completed / failed / cancelled
//
// Cancellation: if the client disconnects while its job is queued or
// running, the daemon kills the job's whole process group, reaps it,
// releases its reserved words, and counts it cancelled — a vanished
// client never leaks a running job or its budget reservation.
//
// Concurrency model: one std::thread per connection; jobs are
// processes, so a crashing algorithm takes down its own fork, not the
// daemon. All shared state (budget ledger, counters, executor slots)
// lives behind one mutex; connection threads never hold it across a
// blocking syscall.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mrlr/exec/shard_channel.hpp"
#include "mrlr/serve/protocol.hpp"

namespace mrlr::serve {

struct ServeOptions {
  /// Total projected machine-words budget across admitted-and-
  /// unfinished jobs. 0 = unlimited (no admission rejections on space).
  std::uint64_t words_budget = 0;

  /// Executor slots: admitted jobs beyond this wait in the queue.
  std::uint64_t max_running = 2;

  /// Accept at most this many connections, then stop (0 = serve until
  /// shutdown). Lets tests and smoke scripts bound the daemon's life
  /// without signals.
  std::uint64_t max_connections = 0;

  /// Optional line logger (stderr in the CLI, captured in tests).
  std::function<void(const std::string&)> log;
};

class ServeDaemon {
 public:
  /// Binds the listener (port 0 = kernel-assigned, see port()).
  /// Throws exec::TransportError(kIo) if the OS refuses.
  ServeDaemon(const std::string& host, std::uint16_t port,
              ServeOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  std::uint16_t port() const;

  /// Accept loop: serves connections until request_shutdown() or the
  /// max_connections bound. Joins every connection thread before
  /// returning, so when run() returns no job process survives.
  void run();

  /// Thread-safe: stops the accept loop and refuses new submissions
  /// (running jobs finish; queued jobs still run). Safe to call from a
  /// connection thread (the shutdown frame handler) or another thread.
  void request_shutdown();

  /// Live counter snapshot (what the kServeStats reply carries).
  StatsReply stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mrlr::serve
