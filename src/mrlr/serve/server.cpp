#include "mrlr/serve/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <utility>

#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/jobs/job_spec.hpp"
#include "mrlr/jobs/worker.hpp"
#include "mrlr/obs/telemetry.hpp"
#include "mrlr/serve/admission.hpp"

namespace mrlr::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Non-destructive liveness probe: has the peer closed its end? Peeked
/// bytes stay queued, so a pipelining client is never corrupted.
enum class PeerState { kQuiet, kReadable, kGone };

PeerState peek_peer(int fd) {
  char b;
  const ::ssize_t rc = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
  if (rc == 0) return PeerState::kGone;
  if (rc > 0) return PeerState::kReadable;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return PeerState::kQuiet;
  }
  return PeerState::kGone;
}

/// Post-fork descriptor hygiene for the job child. fork() copies every
/// descriptor the daemon holds: the listener, every other client's
/// connection, other running jobs' result socketpairs, and — when the
/// submitting client lives in the same process, as embedded daemons
/// do — the peer end of this very job's client socket. Any such copy
/// keeps the underlying socket open, so a client close() would not
/// surface as EOF at the daemon until this child exits, defeating
/// disconnect cancellation. Close everything except stdio and the
/// result channel.
void close_all_fds_except(int keep) {
  const auto range_close = [](unsigned lo, unsigned hi) -> bool {
#ifdef SYS_close_range
    return ::syscall(SYS_close_range, lo, hi, 0u) == 0;
#else
    (void)lo;
    (void)hi;
    return false;
#endif
  };
  bool ok = true;
  if (keep > 3) ok = range_close(3, static_cast<unsigned>(keep) - 1);
  ok = range_close(static_cast<unsigned>(keep) + 1, ~0u) && ok;
  if (!ok) {
    // Pre-5.9 kernel (or no wrapper): walk the descriptor table.
    const long open_max = ::sysconf(_SC_OPEN_MAX);
    const int limit = open_max > 0 ? static_cast<int>(open_max) : 1024;
    for (int fd = 3; fd < limit; ++fd) {
      if (fd != keep) ::close(fd);
    }
  }
}

/// poll() one descriptor for readability/hangup; returns true when it
/// has an event, false on timeout. EINTR counts as a timeout.
bool poll_readable(int fd, int timeout_ms) {
  struct pollfd p {};
  p.fd = fd;
  p.events = POLLIN;
  const int rc = ::poll(&p, 1, timeout_ms);
  return rc > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

}  // namespace

struct ServeDaemon::Impl {
  explicit Impl(const std::string& host, std::uint16_t port,
                ServeOptions opts)
      : options(std::move(opts)),
        listener(host, port),
        started(Clock::now()) {}

  ServeOptions options;
  exec::TcpListener listener;
  Clock::time_point started;

  std::atomic<bool> shutting_down{false};

  mutable std::mutex mu;
  std::condition_variable slot_free;
  std::uint64_t next_job_id = 0;
  std::uint64_t words_in_use = 0;
  std::uint64_t running = 0;
  std::uint64_t queued = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;

  void log(const std::string& line) {
    if (options.log) options.log(line);
  }

  std::uint64_t uptime_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              started)
            .count());
  }

  StatsReply stats_snapshot() const {
    std::lock_guard<std::mutex> lk(mu);
    StatsReply s;
    s.jobs_submitted = jobs_submitted;
    s.jobs_accepted = jobs_accepted;
    s.jobs_rejected = jobs_rejected;
    s.jobs_completed = jobs_completed;
    s.jobs_failed = jobs_failed;
    s.jobs_cancelled = jobs_cancelled;
    s.jobs_running = running;
    s.jobs_queued = queued;
    s.words_budget = options.words_budget;
    s.words_in_use = words_in_use;
    s.uptime_ms = uptime_ms();
    return s;
  }

  void release_words(std::uint64_t words) {
    std::lock_guard<std::mutex> lk(mu);
    words_in_use -= words <= words_in_use ? words : words_in_use;
  }

  // ------------------------------------------------- submit handling --

  /// Decides accept-or-reject and reserves the words on accept. Fills
  /// the reply's space fields either way.
  AdmissionReply admit(const jobs::JobSpec& spec) {
    AdmissionReply reply;
    if (!jobs::known_algorithm(spec.algorithm)) {
      reply.reason = RejectReason::kUnknownAlgorithm;
      reply.message = "unknown algorithm '" + spec.algorithm + "'";
      return reply;
    }
    std::uint64_t projected = 0;
    try {
      projected = projected_machine_words(spec);
    } catch (const exec::TransportError& e) {
      reply.reason = RejectReason::kMalformedSpec;
      reply.message = e.what();
      return reply;
    }
    reply.projected_words = projected;

    std::lock_guard<std::mutex> lk(mu);
    reply.budget_words = options.words_budget;
    reply.words_in_use = words_in_use;
    if (shutting_down.load(std::memory_order_relaxed)) {
      reply.reason = RejectReason::kShuttingDown;
      reply.message = "daemon is shutting down";
      return reply;
    }
    if (options.words_budget > 0 && projected > options.words_budget) {
      reply.reason = RejectReason::kNeverFits;
      reply.message = "projected " + std::to_string(projected) +
                      " words/machine exceeds the whole budget of " +
                      std::to_string(options.words_budget);
      return reply;
    }
    if (options.words_budget > 0 &&
        projected > options.words_budget - words_in_use) {
      reply.reason = RejectReason::kOverBudget;
      reply.message = "projected " + std::to_string(projected) +
                      " words/machine does not fit beside " +
                      std::to_string(words_in_use) + " already admitted (" +
                      std::to_string(options.words_budget) + " budget)";
      return reply;
    }
    words_in_use += projected;
    reply.accepted = true;
    reply.job_id = ++next_job_id;
    reply.words_in_use = words_in_use;
    return reply;
  }

  /// Blocks the connection thread until an executor slot frees up (or
  /// the client vanishes — checked between waits so a dead submitter
  /// never squats in the queue). Returns false when cancelled.
  bool wait_for_slot(int client_fd) {
    obs::ScopedSpan span(obs::Phase::kQueueWait);
    std::unique_lock<std::mutex> lk(mu);
    ++queued;
    while (running >= options.max_running) {
      slot_free.wait_for(lk, std::chrono::milliseconds(50));
      if (running >= options.max_running) {
        lk.unlock();
        const bool gone = peek_peer(client_fd) == PeerState::kGone;
        lk.lock();
        if (gone) {
          --queued;
          return false;
        }
      }
    }
    --queued;
    ++running;
    return true;
  }

  void release_slot() {
    std::lock_guard<std::mutex> lk(mu);
    --running;
    slot_free.notify_all();
  }

  /// Forks the job into its own process group and relays its result
  /// frame to the client. Returns false when the connection is done
  /// (client vanished mid-job). Counter updates happen here — exactly
  /// one of completed/failed/cancelled per admitted job.
  bool run_admitted_job(exec::TcpChannel& ch, const jobs::JobSpec& spec,
                        std::uint64_t job_id, std::uint64_t reply_sequence,
                        std::uint64_t queue_wait_ns) {
    obs::ScopedSpan span(obs::Phase::kJobRun);
    const Clock::time_point run_start = Clock::now();
    auto [parent_ch, child_ch] = exec::make_socketpair_channel();

    const ::pid_t pid = ::fork();
    if (pid < 0) {
      throw exec::TransportError(exec::TransportError::Kind::kIo,
                                 "serve: fork failed");
    }
    if (pid == 0) {
      // Job process: own process group (so a cancel kills any helpers
      // the backend forks too), no daemon descriptors.
      ::setpgid(0, 0);
      parent_ch.close_now();
      close_all_fds_except(child_ch.fd());
      ResultReply reply;
      reply.job_id = job_id;
      try {
        const jobs::JobResult result = jobs::run_job(spec);
        reply.ok = true;
        reply.result = jobs::encode_job_result(result);
      } catch (const std::exception& e) {
        reply.ok = false;
        reply.error = e.what();
      }
      try {
        const std::vector<std::byte> payload = encode_result_reply(reply);
        exec::write_frame(child_ch, exec::FrameKind::kJobResult, 0, job_id,
                          payload);
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }

    // Daemon side.
    ::setpgid(pid, pid);  // either side may win this race; both set it
    child_ch.close_now();

    bool client_alive = true;
    bool client_watchable = true;  // stop peeking once it pipelines
    for (;;) {
      struct pollfd fds[2];
      fds[0].fd = parent_ch.fd();
      fds[0].events = POLLIN;
      fds[1].fd = ch.fd();
      fds[1].events = client_watchable ? POLLIN : 0;
      const int rc = ::poll(fds, 2, 200);
      if (rc < 0 && errno != EINTR) break;

      if (client_watchable && rc > 0 &&
          (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const PeerState st = peek_peer(ch.fd());
        if (st == PeerState::kGone) {
          client_alive = false;
          break;
        }
        // Bytes before our result: the client is pipelining. Leave the
        // data queued and stop watching, or poll() would spin.
        client_watchable = false;
      }

      if (rc > 0 && (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        break;  // result frame ready, or the child died — read below
      }
    }

    if (!client_alive) {
      ::kill(-pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      {
        std::lock_guard<std::mutex> lk(mu);
        ++jobs_cancelled;
      }
      obs::count("serve.jobs_cancelled");
      log("job " + std::to_string(job_id) +
          " cancelled: client disconnected");
      return false;
    }

    ResultReply reply;
    try {
      exec::Frame frame = exec::expect_frame(
          parent_ch, exec::FrameKind::kJobResult, 0, job_id);
      reply = decode_result_reply(frame.payload);
    } catch (const exec::TransportError&) {
      reply.job_id = job_id;
      reply.ok = false;
      reply.error = "job process died before reporting a result";
    }
    int status = 0;
    ::waitpid(pid, &status, 0);

    reply.queue_wait_ns = queue_wait_ns;
    reply.run_ns = ns_between(run_start, Clock::now());
    {
      std::lock_guard<std::mutex> lk(mu);
      if (reply.ok) {
        ++jobs_completed;
      } else {
        ++jobs_failed;
      }
    }
    obs::count(reply.ok ? "serve.jobs_completed" : "serve.jobs_failed");
    log("job " + std::to_string(job_id) +
        (reply.ok ? " completed" : " failed: " + reply.error));

    const std::vector<std::byte> payload = encode_result_reply(reply);
    try {
      exec::write_frame(ch, exec::FrameKind::kJobResult, 0, reply_sequence,
                        payload);
    } catch (const exec::TransportError&) {
      return false;  // client vanished between the poll and the write
    }
    return true;
  }

  /// One kJobSubmit frame, start to finish. Returns false when the
  /// connection should close.
  bool handle_submit(exec::TcpChannel& ch, const exec::Frame& frame) {
    {
      std::lock_guard<std::mutex> lk(mu);
      ++jobs_submitted;
    }
    jobs::JobSpec spec;
    AdmissionReply admission;
    bool decoded = false;
    try {
      spec = jobs::decode_job_spec(frame.payload);
      decoded = true;
    } catch (const exec::TransportError& e) {
      admission.reason = RejectReason::kMalformedSpec;
      admission.message = e.what();
    }
    if (decoded) admission = admit(spec);

    if (!admission.accepted) {
      {
        std::lock_guard<std::mutex> lk(mu);
        ++jobs_rejected;
      }
      obs::count("serve.jobs_rejected");
      log("submit rejected (" +
          std::string(reject_reason_name(admission.reason)) +
          "): " + admission.message);
      exec::write_frame(ch, exec::FrameKind::kJobAdmission, 0,
                        frame.sequence, encode_admission_reply(admission));
      return true;
    }

    {
      std::lock_guard<std::mutex> lk(mu);
      ++jobs_accepted;
    }
    obs::count("serve.jobs_accepted");
    log("job " + std::to_string(admission.job_id) + " admitted (" +
        spec.algorithm + ", " + std::to_string(admission.projected_words) +
        " words projected)");
    exec::write_frame(ch, exec::FrameKind::kJobAdmission, 0, frame.sequence,
                      encode_admission_reply(admission));

    const Clock::time_point wait_start = Clock::now();
    if (!wait_for_slot(ch.fd())) {
      release_words(admission.projected_words);
      {
        std::lock_guard<std::mutex> lk(mu);
        ++jobs_cancelled;
      }
      obs::count("serve.jobs_cancelled");
      log("job " + std::to_string(admission.job_id) +
          " cancelled in queue: client disconnected");
      return false;
    }
    const std::uint64_t queue_wait_ns =
        ns_between(wait_start, Clock::now());

    bool keep;
    try {
      keep = run_admitted_job(ch, spec, admission.job_id, frame.sequence,
                              queue_wait_ns);
    } catch (...) {
      release_slot();
      release_words(admission.projected_words);
      throw;
    }
    release_slot();
    release_words(admission.projected_words);
    return keep;
  }

  // --------------------------------------------------- connection loop --

  void serve_connection(exec::TcpChannel ch) {
    try {
      ch.set_read_timeout(std::chrono::seconds(5));
      exec::handshake_accept(
          ch, [](const exec::HandshakeHello&) {
            return exec::HandshakeStatus::kOk;
          });
      ch.set_read_timeout(std::chrono::milliseconds(0));

      for (;;) {
        if (shutting_down.load(std::memory_order_relaxed)) return;
        if (!poll_readable(ch.fd(), 200)) continue;
        if (peek_peer(ch.fd()) == PeerState::kGone) return;

        const exec::Frame frame = exec::read_frame(ch);
        switch (frame.kind) {
          case exec::FrameKind::kJobSubmit:
            if (!handle_submit(ch, frame)) return;
            break;
          case exec::FrameKind::kServeStats:
            exec::write_frame(ch, exec::FrameKind::kServeStats, 0,
                              frame.sequence,
                              encode_stats_reply(stats_snapshot()));
            break;
          case exec::FrameKind::kServeHealth: {
            HealthReply h;
            h.shutting_down =
                shutting_down.load(std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lk(mu);
              h.jobs_running = running;
            }
            h.uptime_ms = uptime_ms();
            exec::write_frame(ch, exec::FrameKind::kServeHealth, 0,
                              frame.sequence, encode_health_reply(h));
            break;
          }
          case exec::FrameKind::kServeShutdown:
            exec::write_frame(ch, exec::FrameKind::kServeShutdown, 0,
                              frame.sequence, {});
            log("shutdown requested by client");
            request_shutdown_impl();
            return;
          default:
            throw exec::TransportError(
                exec::TransportError::Kind::kUnexpected,
                "serve: frame kind " +
                    std::to_string(static_cast<unsigned>(frame.kind)) +
                    " is not a serve request");
        }
      }
    } catch (const std::exception& e) {
      // A misbehaving client costs its own connection, never the
      // daemon.
      log(std::string("connection dropped: ") + e.what());
    }
  }

  void request_shutdown_impl() {
    shutting_down.store(true, std::memory_order_relaxed);
    // shutdown(2), not close(2): closing a descriptor another thread is
    // blocked in accept(2) on does NOT wake that thread on Linux;
    // shutting the listening socket down does (accept fails EINVAL).
    // The descriptor itself is released by the listener's destructor.
    if (listener.fd() >= 0) ::shutdown(listener.fd(), SHUT_RDWR);
    slot_free.notify_all();
  }
};

ServeDaemon::ServeDaemon(const std::string& host, std::uint16_t port,
                         ServeOptions options)
    : impl_(std::make_unique<Impl>(host, port, std::move(options))) {}

ServeDaemon::~ServeDaemon() = default;

std::uint16_t ServeDaemon::port() const { return impl_->listener.port(); }

void ServeDaemon::run() {
  std::vector<std::thread> connections;
  std::uint64_t accepted = 0;
  for (;;) {
    if (impl_->shutting_down.load(std::memory_order_relaxed)) break;
    if (impl_->options.max_connections > 0 &&
        accepted >= impl_->options.max_connections) {
      break;
    }
    try {
      exec::TcpChannel ch = impl_->listener.accept_channel();
      ++accepted;
      connections.emplace_back(
          [impl = impl_.get(), c = std::move(ch)]() mutable {
            impl->serve_connection(std::move(c));
          });
    } catch (const exec::TransportError&) {
      // request_shutdown() closes the listener under us — the accept
      // failure is the wakeup.
      if (impl_->shutting_down.load(std::memory_order_relaxed)) break;
      throw;
    }
  }
  impl_->shutting_down.store(true, std::memory_order_relaxed);
  impl_->slot_free.notify_all();
  for (std::thread& t : connections) t.join();
}

void ServeDaemon::request_shutdown() { impl_->request_shutdown_impl(); }

StatsReply ServeDaemon::stats() const { return impl_->stats_snapshot(); }

}  // namespace mrlr::serve
