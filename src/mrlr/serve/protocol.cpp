#include "mrlr/serve/protocol.hpp"

#include <cstring>

#include "mrlr/exec/shard_transport.hpp"

namespace mrlr::serve {

namespace {

using exec::append_u64;
using exec::read_u64;

constexpr std::uint64_t kProtoVersion = 1;

/// Messages are one-line diagnostics, never bulk data; an adversarial
/// length fails the cap before any allocation.
constexpr std::uint64_t kMaxMessageBytes = 1 << 16;

[[noreturn]] void bad_payload(const std::string& what) {
  throw exec::TransportError(exec::TransportError::Kind::kBadPayload,
                             "serve payload: " + what);
}

void append_string(std::vector<std::byte>& out, std::string_view s) {
  append_u64(out, s.size());
  if (s.empty()) return;
  const auto at = out.size();
  out.resize(at + s.size());
  std::memcpy(out.data() + at, s.data(), s.size());
}

/// Bounds-checked sequential reader (the job_spec.cpp cursor
/// discipline).
struct Reader {
  std::span<const std::byte> bytes;
  std::size_t at = 0;

  void need(std::size_t n, const char* what) const {
    if (bytes.size() - at < n) {
      bad_payload(std::string("truncated inside ") + what);
    }
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    const std::uint64_t v = read_u64(bytes, at);
    at += 8;
    return v;
  }
  std::string string(const char* what) {
    const std::uint64_t len = u64(what);
    if (len > kMaxMessageBytes) {
      bad_payload(std::string(what) + " length " + std::to_string(len) +
                  " exceeds the cap");
    }
    need(len, what);
    std::string s(reinterpret_cast<const char*>(bytes.data() + at), len);
    at += len;
    return s;
  }
  bool flag(const char* what) {
    const std::uint64_t v = u64(what);
    if (v > 1) bad_payload(std::string(what) + " flag must be 0 or 1");
    return v == 1;
  }
  void expect_version(const char* what) {
    const std::uint64_t v = u64("version");
    if (v != kProtoVersion) {
      bad_payload(std::string(what) + " version " + std::to_string(v) +
                  " (this build speaks version " +
                  std::to_string(kProtoVersion) + ")");
    }
  }
  void done(const char* what) const {
    if (at != bytes.size()) {
      bad_payload(std::to_string(bytes.size() - at) +
                  " trailing bytes after the " + what);
    }
  }
};

}  // namespace

std::string_view reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kMalformedSpec: return "malformed-spec";
    case RejectReason::kUnknownAlgorithm: return "unknown-algorithm";
    case RejectReason::kNeverFits: return "never-fits";
    case RejectReason::kOverBudget: return "over-budget";
    case RejectReason::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

std::vector<std::byte> encode_admission_reply(const AdmissionReply& r) {
  std::vector<std::byte> out;
  append_u64(out, kProtoVersion);
  append_u64(out, r.accepted ? 1 : 0);
  append_u64(out, r.job_id);
  append_u64(out, static_cast<std::uint64_t>(r.reason));
  append_string(out, r.message);
  append_u64(out, r.projected_words);
  append_u64(out, r.budget_words);
  append_u64(out, r.words_in_use);
  return out;
}

AdmissionReply decode_admission_reply(std::span<const std::byte> bytes) {
  Reader rd{bytes};
  rd.expect_version("admission reply");
  AdmissionReply r;
  r.accepted = rd.flag("accepted");
  r.job_id = rd.u64("job id");
  const std::uint64_t reason = rd.u64("reject reason");
  if (reason > static_cast<std::uint64_t>(RejectReason::kShuttingDown)) {
    bad_payload("unknown reject reason " + std::to_string(reason));
  }
  r.reason = static_cast<RejectReason>(reason);
  if (r.accepted && r.reason != RejectReason::kNone) {
    bad_payload("accepted reply carries reject reason " +
                std::string(reject_reason_name(r.reason)));
  }
  if (!r.accepted && r.reason == RejectReason::kNone) {
    bad_payload("rejected reply carries no reason");
  }
  r.message = rd.string("message");
  r.projected_words = rd.u64("projected words");
  r.budget_words = rd.u64("budget words");
  r.words_in_use = rd.u64("words in use");
  rd.done("admission reply");
  return r;
}

std::vector<std::byte> encode_result_reply(const ResultReply& r) {
  std::vector<std::byte> out;
  append_u64(out, kProtoVersion);
  append_u64(out, r.job_id);
  append_u64(out, r.ok ? 1 : 0);
  append_string(out, r.error);
  append_u64(out, r.queue_wait_ns);
  append_u64(out, r.run_ns);
  append_u64(out, r.result.size());
  if (!r.result.empty()) {
    const auto at = out.size();
    out.resize(at + r.result.size());
    std::memcpy(out.data() + at, r.result.data(), r.result.size());
  }
  return out;
}

ResultReply decode_result_reply(std::span<const std::byte> bytes) {
  Reader rd{bytes};
  rd.expect_version("result reply");
  ResultReply r;
  r.job_id = rd.u64("job id");
  r.ok = rd.flag("ok");
  r.error = rd.string("error");
  r.queue_wait_ns = rd.u64("queue wait");
  r.run_ns = rd.u64("run time");
  const std::uint64_t len = rd.u64("result bytes");
  rd.need(len, "result bytes");
  r.result.assign(
      rd.bytes.begin() + static_cast<std::ptrdiff_t>(rd.at),
      rd.bytes.begin() + static_cast<std::ptrdiff_t>(rd.at + len));
  rd.at += len;
  if (r.ok && r.result.empty()) {
    bad_payload("ok result reply carries no result bytes");
  }
  if (!r.ok && r.error.empty()) {
    bad_payload("failed result reply carries no error text");
  }
  rd.done("result reply");
  return r;
}

std::vector<std::byte> encode_stats_reply(const StatsReply& r) {
  std::vector<std::byte> out;
  append_u64(out, kProtoVersion);
  append_u64(out, r.jobs_submitted);
  append_u64(out, r.jobs_accepted);
  append_u64(out, r.jobs_rejected);
  append_u64(out, r.jobs_completed);
  append_u64(out, r.jobs_failed);
  append_u64(out, r.jobs_cancelled);
  append_u64(out, r.jobs_running);
  append_u64(out, r.jobs_queued);
  append_u64(out, r.words_budget);
  append_u64(out, r.words_in_use);
  append_u64(out, r.uptime_ms);
  return out;
}

StatsReply decode_stats_reply(std::span<const std::byte> bytes) {
  Reader rd{bytes};
  rd.expect_version("stats reply");
  StatsReply r;
  r.jobs_submitted = rd.u64("stats");
  r.jobs_accepted = rd.u64("stats");
  r.jobs_rejected = rd.u64("stats");
  r.jobs_completed = rd.u64("stats");
  r.jobs_failed = rd.u64("stats");
  r.jobs_cancelled = rd.u64("stats");
  r.jobs_running = rd.u64("stats");
  r.jobs_queued = rd.u64("stats");
  r.words_budget = rd.u64("stats");
  r.words_in_use = rd.u64("stats");
  r.uptime_ms = rd.u64("stats");
  rd.done("stats reply");
  return r;
}

std::vector<std::byte> encode_health_reply(const HealthReply& r) {
  std::vector<std::byte> out;
  append_u64(out, kProtoVersion);
  append_u64(out, r.shutting_down ? 1 : 0);
  append_u64(out, r.jobs_running);
  append_u64(out, r.uptime_ms);
  return out;
}

HealthReply decode_health_reply(std::span<const std::byte> bytes) {
  Reader rd{bytes};
  rd.expect_version("health reply");
  HealthReply r;
  r.shutting_down = rd.flag("shutting down");
  r.jobs_running = rd.u64("jobs running");
  r.uptime_ms = rd.u64("uptime");
  rd.done("health reply");
  return r;
}

}  // namespace mrlr::serve
