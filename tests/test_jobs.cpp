// The jobs layer as an API: the JobResult struct and its wire form
// (round-trip + malformed-payload taxonomy), the registry-backed
// algorithm vocabulary, the legacy fingerprint strings pinned against
// pre-JobResult goldens, and the CLI renderer pinned against captured
// `mrlr_cli run` stdout — so the run_job redesign can never silently
// change what any backend, daemon, or human sees.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mrlr/core/params.hpp"
#include "mrlr/exec/shard_transport.hpp"
#include "mrlr/graph/generators.hpp"
#include "mrlr/graph/stats.hpp"
#include "mrlr/jobs/job_result.hpp"
#include "mrlr/jobs/job_spec.hpp"
#include "mrlr/jobs/report.hpp"
#include "mrlr/jobs/worker.hpp"
#include "mrlr/setcover/generators.hpp"
#include "mrlr/util/rng.hpp"

namespace mrlr {
namespace {

jobs::JobResult sample_result() {
  jobs::JobResult r;
  r.algorithm = "matching";
  r.solution_hash = 0x88ED824E0971557Bull;
  r.solution_size = 143;
  r.valid = true;
  r.outcome.iterations = 2;
  r.outcome.rounds = 16;
  r.outcome.max_machine_words = 6314;
  r.outcome.max_central_inbox = 5196;
  r.outcome.total_communication = 78026;
  r.stats.push_back(
      {"weight", core::pack_double(12042.6), jobs::JobStat::Kind::kPackedDouble});
  r.stats.push_back({"stack", 115, jobs::JobStat::Kind::kCount});
  return r;
}

void expect_bad_payload(std::vector<std::byte> bytes, const char* what) {
  try {
    (void)jobs::decode_job_result(bytes);
    FAIL() << what << ": malformed result decoded";
  } catch (const exec::TransportError& e) {
    EXPECT_EQ(e.kind, exec::TransportError::Kind::kBadPayload) << what;
  }
}

TEST(JobResult, EncodeDecodeRoundTrip) {
  const jobs::JobResult r = sample_result();
  const jobs::JobResult back =
      jobs::decode_job_result(jobs::encode_job_result(r));
  EXPECT_EQ(back, r);
  EXPECT_EQ(jobs::fingerprint(back), jobs::fingerprint(r));
  EXPECT_EQ(jobs::determinism_hash(back), jobs::determinism_hash(r));

  // Accessors see both stat kinds.
  EXPECT_DOUBLE_EQ(back.stat_double("weight"), 12042.6);
  EXPECT_EQ(back.stat_count("stack"), 115u);
  EXPECT_EQ(back.stat("absent"), nullptr);
  EXPECT_EQ(back.stat_count("absent", 7), 7u);
}

TEST(JobResult, MalformedPayloadTaxonomy) {
  const std::vector<std::byte> good =
      jobs::encode_job_result(sample_result());

  {  // wrong version
    std::vector<std::byte> bad = good;
    bad[0] = std::byte{99};
    expect_bad_payload(bad, "version");
  }
  {  // truncations at every prefix length
    for (const std::size_t cut : {std::size_t{0}, std::size_t{7},
                                  std::size_t{20}, good.size() - 1}) {
      expect_bad_payload({good.begin(), good.begin() + cut}, "truncated");
    }
  }
  {  // trailing bytes after a complete result
    std::vector<std::byte> bad = good;
    bad.push_back(std::byte{0});
    expect_bad_payload(bad, "trailing");
  }
  {  // non-boolean validity flag
    jobs::JobResult r = sample_result();
    std::vector<std::byte> bytes = jobs::encode_job_result(r);
    // flag lane: version(8) + len(8)+"matching"(8) + hash(8) + size(8)
    bytes[8 + 16 + 8 + 8] = std::byte{2};
    expect_bad_payload(bytes, "flag");
  }
  {  // unknown stat kind / empty stat name, re-encoded from a struct
    jobs::JobResult r = sample_result();
    r.stats[0].name.clear();
    expect_bad_payload(jobs::encode_job_result(r), "empty stat name");

    r = sample_result();
    r.stats[0].name.assign(5000, 'x');  // over the 1 KiB cap
    expect_bad_payload(jobs::encode_job_result(r), "oversize stat name");

    r = sample_result();
    r.stats[0].kind = static_cast<jobs::JobStat::Kind>(9);
    expect_bad_payload(jobs::encode_job_result(r), "stat kind");
  }
  {  // empty algorithm
    jobs::JobResult r = sample_result();
    r.algorithm.clear();
    expect_bad_payload(jobs::encode_job_result(r), "empty algorithm");
  }
}

TEST(JobsRegistry, VocabularyIsSingleSourceOfTruth) {
  const std::vector<jobs::AlgorithmInfo>& algos = jobs::known_algorithms();
  ASSERT_EQ(algos.size(), 15u);

  const std::vector<std::string> expected = {
      "matching",        "filtering-matching", "filtering-weighted",
      "coreset-matching", "b-matching",        "vertex-cover",
      "set-cover-f",     "set-cover-greedy",   "mis",
      "mis-simple",      "luby-mis",           "clique",
      "colour-vertex",   "luby-colouring",     "colour-edge"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(algos[i].name, expected[i]) << i;
    // find/known agree with the enumeration.
    const jobs::AlgorithmInfo* found = jobs::find_algorithm(expected[i]);
    ASSERT_NE(found, nullptr) << expected[i];
    EXPECT_EQ(found->name, expected[i]);
    EXPECT_TRUE(jobs::known_algorithm(expected[i]));
  }
  EXPECT_FALSE(jobs::known_algorithm("simplex"));
  EXPECT_EQ(jobs::find_algorithm("simplex"), nullptr);

  // Instance-kind and weightedness drive CLI instance construction.
  using Kind = jobs::JobSpec::InstanceKind;
  EXPECT_EQ(jobs::find_algorithm("matching")->instance, Kind::kGraph);
  EXPECT_TRUE(jobs::find_algorithm("matching")->weighted);
  EXPECT_FALSE(jobs::find_algorithm("mis")->weighted);
  EXPECT_EQ(jobs::find_algorithm("set-cover-f")->instance,
            Kind::kSetSystem);
  EXPECT_EQ(jobs::find_algorithm("set-cover-greedy")->instance,
            Kind::kSetSystem);
}

// ------------------------------------------------ fingerprint pins --

/// The exact spec construction of test_tcp_exec's all_driver_specs
/// (n=150, c=0.5 instances, mu=0.2, seed=7) — the goldens below were
/// captured from run_job when it still returned the fingerprint string
/// directly, so these pins prove the JobResult refactor changed no
/// result bits for any of the 15 drivers.
std::vector<jobs::JobSpec> golden_specs() {
  core::MrParams params;
  params.mu = 0.2;
  params.seed = 7;

  Rng wrng(1 ^ 0xABCDEFull);
  graph::Graph gw = graph::gnm_density(150, 0.5, wrng);
  gw = gw.with_weights(
      graph::random_edge_weights(gw, graph::WeightDist::kUniform, wrng));
  Rng urng(2 ^ 0xABCDEFull);
  const graph::Graph gu = graph::gnm_density(150, 0.5, urng);
  Rng sets_rng(0x5E7C07ull);
  const setcover::SetSystem sys = setcover::many_sets(
      220, 40, 10, graph::WeightDist::kUniform, sets_rng);

  std::vector<jobs::JobSpec> specs;
  for (const char* a :
       {"matching", "filtering-matching", "filtering-weighted",
        "coreset-matching"}) {
    specs.push_back(jobs::graph_job(a, gw, params));
  }
  {
    jobs::JobSpec s = jobs::graph_job("b-matching", gw, params);
    s.extras["b"] = {2};
    s.extras["eps"] = {core::pack_double(0.25)};
    specs.push_back(std::move(s));
  }
  {
    jobs::JobSpec s = jobs::graph_job("vertex-cover", gu, params);
    Rng wr(99);
    auto& w = s.extras["w"];
    for (std::size_t v = 0; v < gu.num_vertices(); ++v) {
      w.push_back(core::pack_double(
          1.0 + static_cast<double>(wr() % 1000) / 250.0));
    }
    specs.push_back(std::move(s));
  }
  specs.push_back(jobs::set_system_job("set-cover-f", sys, params));
  {
    jobs::JobSpec s = jobs::set_system_job("set-cover-greedy", sys, params);
    s.extras["eps"] = {core::pack_double(0.3)};
    specs.push_back(std::move(s));
  }
  for (const char* a : {"mis", "mis-simple", "luby-mis", "clique",
                        "colour-vertex", "luby-colouring", "colour-edge"}) {
    specs.push_back(jobs::graph_job(a, gu, params));
  }
  return specs;
}

TEST(JobsRunJob, FingerprintsMatchPreRefactorGoldens) {
  const std::vector<std::string> goldens = {
      "matching sol=88ed824e0971557b weight=40b69dc99f53af1d stack=115 "
      "failed=0 iters=2 rounds=16 words=2846 central=2208 comm=28241 "
      "violations=0",
      "filtering-matching sol=a4aad4baabf281c2 weight=40aa6eed2e67b0e9 "
      "failed=0 iters=2 rounds=14 words=1266 central=1266 comm=2421 "
      "violations=0",
      "filtering-weighted sol=78c8335a59860742 weight=40b4c08b19462c54 "
      "failed=0 iters=3 rounds=31 words=1224 central=1224 comm=2302 "
      "violations=0",
      "coreset-matching sol=4f45dd863abcaab3 weight=40b749491bee6d2f "
      "coreset=314 failed=0 iters=1 rounds=2 words=1128 central=628 "
      "comm=628 violations=0",
      "b-matching sol=eb7533cce14873c8 weight=40c6846694ba976c stack=167 "
      "failed=0 iters=1 rounds=9 words=7650 central=7498 comm=22316 "
      "violations=0",
      "vertex-cover sol=877019e692449859 weight=407ac0624dd2f1a9 "
      "lb=406cc851eb851eba failed=0 iters=2 rounds=16 words=2645 "
      "central=2493 comm=6102 violations=0",
      "set-cover-f sol=724874ba4866890e weight=4014c4c46884c3a8 "
      "lb=4014c4c46884c3a9 failed=0 iters=1 rounds=7 words=1520 "
      "central=1298 comm=1300 violations=0",
      "set-cover-greedy sol=1a4920d5a08d47a6 weight=4014c4c46884c3a8 "
      "drops=1 resamples=0 pre=0 failed=0 iters=3 rounds=26 words=986 "
      "central=738 comm=4064 violations=0",
      "mis sol=bc29f82e3923e49d phases=2 central=4 failed=0 iters=2 "
      "rounds=28 words=826 central=414 comm=1631 violations=0",
      "mis-simple sol=7542f4d0936d3e36 phases=7 central=8 failed=0 "
      "iters=9 rounds=50 words=826 central=473 comm=1946 violations=0",
      "luby-mis sol=fb7ef1fdf4bd3992 phases=4 failed=0 iters=4 rounds=24 "
      "words=3124 central=2247 comm=11986 violations=0",
      "clique sol=561ca4a0697a3e38 central=2 failed=0 iters=9 rounds=36 "
      "words=1532 central=1498 comm=16519 violations=0",
      "colour-vertex sol=7c76bf73c677c2d5 colours=16 groups=2 "
      "split_failed=0 failed=0 iters=0 rounds=3 words=996 central=980 "
      "comm=2270 violations=0",
      "luby-colouring sol=42236a1061cc522b colours=38 phases=3 failed=0 "
      "iters=3 rounds=18 words=3124 central=2247 comm=14184 violations=0",
      "colour-edge sol=9d96158cd4626a5f colours=48 groups=2 "
      "split_failed=0 failed=0 iters=0 rounds=3 words=3678 central=3678 "
      "comm=9189 violations=0",
  };

  const std::vector<jobs::JobSpec> specs = golden_specs();
  ASSERT_EQ(specs.size(), goldens.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const jobs::JobResult r = jobs::run_job(specs[i]);
    EXPECT_EQ(jobs::fingerprint(r), goldens[i]) << specs[i].algorithm;
    EXPECT_TRUE(r.valid) << specs[i].algorithm;
    // The wire round-trip preserves the fingerprint bit for bit.
    EXPECT_EQ(jobs::fingerprint(
                  jobs::decode_job_result(jobs::encode_job_result(r))),
              goldens[i]);
  }
}

// ----------------------------------------------------- render pins --

TEST(JobsReport, RenderMatchesCapturedCliOutput) {
  // The instances `mrlr_cli <algo> --n 300 --c 0.5 --mu 0.2 --seed 3`
  // builds, and the stdout it printed before run() was rerouted through
  // run_job + the renderer. Each entry pins one render branch.
  core::MrParams params;
  params.mu = 0.2;
  params.c = 0.5;
  params.seed = 3;

  Rng grng(3 ^ 0xFEEDFACEull);
  graph::Graph gw = graph::gnm_density(300, 0.5, grng);
  gw = gw.with_weights(
      graph::random_edge_weights(gw, graph::WeightDist::kUniform, grng));
  Rng urng(3 ^ 0xFEEDFACEull);
  const graph::Graph gu = graph::gnm_density(300, 0.5, urng);
  Rng fs_rng(3 ^ 0xFEEDFACEull);
  const setcover::SetSystem sys_f = setcover::bounded_frequency(
      300, 8 * 300, 3, graph::WeightDist::kUniform, fs_rng);
  Rng ms_rng(3 ^ 0xFEEDFACEull);
  const setcover::SetSystem sys_many = setcover::many_sets(
      300, 300 / 8 + 2, 12, graph::WeightDist::kUniform, ms_rng);

  const auto st = graph::compute_stats(gw);
  EXPECT_EQ(jobs::render_instance_header(st.n, st.m, st.density_exponent),
            "instance: n=300 m=5196 c=0.499995");

  struct Pin {
    jobs::JobSpec spec;
    jobs::RenderInfo info;
    std::string solution_line;
    std::string cost_line;
  };
  std::vector<Pin> pins;

  const jobs::RenderInfo plain;
  jobs::RenderInfo delta;
  delta.max_degree = gu.max_degree();

  pins.push_back({jobs::graph_job("matching", gw, params), plain,
                  "matching: 143 edges, weight 12042.6, valid=1",
                  "cost: rounds=16 iterations=2 max_words/machine=6314 "
                  "central_inbox=5196 total_comm=78026 violations=0"});
  pins.push_back({jobs::graph_job("filtering-matching", gw, params), plain,
                  "matching: 145 edges, weight 7047.73, maximal=1",
                  "cost: rounds=14 iterations=2 max_words/machine=2832 "
                  "central_inbox=2832 total_comm=5518 violations=0"});
  pins.push_back({jobs::graph_job("filtering-weighted", gw, params), plain,
                  "matching: 147 edges, weight 10996.3, valid=1",
                  "cost: rounds=41 iterations=5 max_words/machine=2922 "
                  "central_inbox=2922 total_comm=5445 violations=0"});
  pins.push_back(
      {jobs::graph_job("coreset-matching", gw, params), plain,
       "matching: 133 edges, weight 12420.6, coreset union 774 edges, "
       "valid=1",
       "cost: rounds=2 iterations=1 max_words/machine=2856 "
       "central_inbox=1548 total_comm=1548 violations=0"});
  {
    jobs::JobSpec s = jobs::graph_job("b-matching", gw, params);
    s.extras["b"] = {2};
    s.extras["eps"] = {core::pack_double(0.2)};
    jobs::RenderInfo info;
    info.b = 2;
    info.eps = 0.2;
    pins.push_back(
        {std::move(s), info,
         "b-matching (b=2, eps=0.2): 270 edges, weight 24740.3, valid=1",
         "cost: rounds=9 iterations=1 max_words/machine=21386 "
         "central_inbox=21084 total_comm=62845 violations=0"});
  }
  {
    jobs::JobSpec s = jobs::graph_job("vertex-cover", gu, params);
    Rng wr(3 ^ 0xC0FFEEull);
    const auto w = graph::random_vertex_weights(
        gu.num_vertices(), graph::WeightDist::kUniform, wr);
    auto& packed = s.extras["w"];
    for (const double v : w) packed.push_back(core::pack_double(v));
    pins.push_back(
        {std::move(s), plain,
         "vertex cover: 284 vertices, weight 13843.2 (certified OPT >= "
         "7290.84), valid=1",
         "cost: rounds=16 iterations=2 max_words/machine=6017 "
         "central_inbox=5715 total_comm=16057 violations=0"});
  }
  {
    jobs::RenderInfo info;
    info.max_frequency = sys_f.max_frequency();
    pins.push_back(
        {jobs::set_system_job("set-cover-f", sys_f, params), info,
         "set cover (f=3): 293 sets, weight 15018.9 (certified OPT >= "
         "10218.3), valid=1",
         "cost: rounds=14 iterations=2 max_words/machine=7920 "
         "central_inbox=7618 total_comm=8240 violations=0"});
  }
  {
    jobs::JobSpec s = jobs::set_system_job("set-cover-greedy", sys_many,
                                           params);
    s.extras["eps"] = {core::pack_double(0.2)};
    jobs::RenderInfo info;
    info.eps = 0.2;
    pins.push_back(
        {std::move(s), info,
         "set cover (greedy, eps=0.2): 4 sets, weight 5.74644, valid=1",
         "cost: rounds=53 iterations=12 max_words/machine=1189 "
         "central_inbox=1148 total_comm=16345 violations=0"});
  }
  pins.push_back({jobs::graph_job("mis", gu, params), plain,
                  "MIS (Alg 6): 24 vertices, maximal=1",
                  "cost: rounds=32 iterations=2 max_words/machine=1886 "
                  "central_inbox=726 total_comm=3397 violations=0"});
  pins.push_back({jobs::graph_job("mis-simple", gu, params), plain,
                  "MIS (Alg 2): 27 vertices, maximal=1",
                  "cost: rounds=45 iterations=9 max_words/machine=1886 "
                  "central_inbox=768 total_comm=4400 violations=0"});
  pins.push_back({jobs::graph_job("luby-mis", gu, params), plain,
                  "MIS (Luby): 32 vertices, maximal=1",
                  "cost: rounds=30 iterations=5 max_words/machine=7244 "
                  "central_inbox=5121 total_comm=38946 violations=0"});
  pins.push_back({jobs::graph_job("clique", gu, params), plain,
                  "clique: 3 vertices, maximal=1",
                  "cost: rounds=44 iterations=9 max_words/machine=3572 "
                  "central_inbox=3414 total_comm=67115 violations=0"});
  pins.push_back(
      {jobs::graph_job("colour-vertex", gu, params), delta,
       "vertex colouring: 19 colours (Delta=53), proper=1",
       "cost: rounds=3 iterations=0 max_words/machine=2831 "
       "central_inbox=2593 total_comm=6028 violations=0"});
  pins.push_back(
      {jobs::graph_job("luby-colouring", gu, params), delta,
       "vertex colouring (Luby): 54 colours (Delta=53), proper=1",
       "cost: rounds=18 iterations=3 max_words/machine=7244 "
       "central_inbox=5121 total_comm=39192 violations=0"});
  pins.push_back(
      {jobs::graph_job("colour-edge", gu, params), delta,
       "edge colouring: 59 colours (Delta=53), proper=1",
       "cost: rounds=3 iterations=0 max_words/machine=10396 "
       "central_inbox=10396 total_comm=25984 violations=0"});

  ASSERT_EQ(pins.size(), 15u);
  for (const Pin& pin : pins) {
    const jobs::JobResult r = jobs::run_job(pin.spec);
    EXPECT_EQ(jobs::render_solution_line(r, pin.info), pin.solution_line)
        << pin.spec.algorithm;
    EXPECT_EQ(jobs::render_cost_line(r.outcome), pin.cost_line)
        << pin.spec.algorithm;
  }

  // The matching family prints the instance header; nothing else does.
  EXPECT_TRUE(jobs::prints_instance_header("matching"));
  EXPECT_TRUE(jobs::prints_instance_header("coreset-matching"));
  EXPECT_FALSE(jobs::prints_instance_header("mis"));
  EXPECT_FALSE(jobs::prints_instance_header("vertex-cover"));
}

}  // namespace
}  // namespace mrlr
